"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable (``pip install -e .``) on machines without
network access to build-backend wheels (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
