"""Parallel-link scheduling instances ``(M, r)``."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InfeasibleFlowError, ModelError
from repro.latency.base import LatencyFunction
from repro.latency.batch import LatencyBatch
from repro.utils.numeric import DEFAULT_ATOL

__all__ = ["ParallelLinkInstance"]


class ParallelLinkInstance:
    """An s–t system of ``m`` parallel links sharing a total flow ``r > 0``.

    Parameters
    ----------
    latencies:
        One :class:`~repro.latency.LatencyFunction` per link.
    demand:
        Total flow ``r > 0`` to be routed from the source to the sink.
    names:
        Optional human-readable link names (defaults to ``M1 .. Mm`` as in the
        paper's figures).

    The instance is immutable; the OpTop recursion produces new, smaller
    instances via :meth:`sub_instance`, and the induced-equilibrium code
    produces the Followers' view via :meth:`shifted`.
    """

    __slots__ = ("latencies", "demand", "names", "_batch")

    def __init__(self, latencies: Sequence[LatencyFunction], demand: float,
                 *, names: Sequence[str] | None = None) -> None:
        latencies = tuple(latencies)
        if not latencies:
            raise ModelError("a parallel-link instance needs at least one link")
        if demand < 0.0:
            raise ModelError(f"total demand must be >= 0, got {demand!r}")
        for i, lat in enumerate(latencies):
            if not isinstance(lat, LatencyFunction):
                raise ModelError(
                    f"link {i}: expected a LatencyFunction, got {type(lat).__name__}")
        if names is None:
            names = tuple(f"M{i + 1}" for i in range(len(latencies)))
        else:
            names = tuple(str(n) for n in names)
            if len(names) != len(latencies):
                raise ModelError(
                    f"got {len(names)} names for {len(latencies)} links")
        capacity = sum(lat.domain_upper for lat in latencies)
        if demand >= capacity:
            raise ModelError(
                f"demand {demand!r} exceeds the total link capacity {capacity!r}")
        self.latencies = latencies
        self.demand = float(demand)
        self.names = names
        self._batch = None

    def latency_batch(self) -> LatencyBatch:
        """The vectorized family-grouped view of the link latencies (cached).

        Built lazily on first use; the instance is immutable, so the batch
        stays valid for its whole lifetime.
        """
        if self._batch is None:
            self._batch = LatencyBatch(self.latencies)
        return self._batch

    # The batch cache is a derived view; drop it when pickling (process-pool
    # fan-out ships instances to workers, which rebuild it on demand).
    def __getstate__(self):
        return (self.latencies, self.demand, self.names)

    def __setstate__(self, state) -> None:
        self.latencies, self.demand, self.names = state
        self._batch = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_links(self) -> int:
        """Number of parallel links ``m``."""
        return len(self.latencies)

    @property
    def has_constant_links(self) -> bool:
        """``True`` when at least one link has a constant latency."""
        return any(lat.is_constant for lat in self.latencies)

    def __len__(self) -> int:
        return self.num_links

    def __repr__(self) -> str:
        return (f"ParallelLinkInstance(num_links={self.num_links}, "
                f"demand={self.demand!r})")

    # ------------------------------------------------------------------ #
    # Flow functionals
    # ------------------------------------------------------------------ #
    def validate_flow(self, flows: Iterable[float], *, demand: float | None = None,
                      atol: float = 1e-6) -> np.ndarray:
        """Check that ``flows`` is a feasible assignment and return it as an array.

        Feasibility means: one value per link, all non-negative (up to
        ``atol``) and summing to ``demand`` (default: the instance demand).
        Raises :class:`InfeasibleFlowError` otherwise.  Tiny negative values
        within tolerance are clipped to zero.
        """
        arr = np.asarray(list(flows) if not isinstance(flows, np.ndarray) else flows,
                         dtype=float)
        if arr.shape != (self.num_links,):
            raise InfeasibleFlowError(
                f"expected {self.num_links} link flows, got shape {arr.shape}")
        if np.any(arr < -atol):
            raise InfeasibleFlowError(
                f"negative link flow: {arr.min()!r}")
        target = self.demand if demand is None else float(demand)
        total = float(arr.sum())
        if abs(total - target) > atol * max(1.0, target):
            raise InfeasibleFlowError(
                f"link flows sum to {total!r}, expected {target!r}")
        return np.clip(arr, 0.0, None)

    def latencies_at(self, flows: np.ndarray) -> np.ndarray:
        """Per-link latencies ``l_i(x_i)``."""
        return self.latency_batch().values(np.asarray(flows, dtype=float))

    def marginal_costs_at(self, flows: np.ndarray) -> np.ndarray:
        """Per-link marginal costs ``l_i(x_i) + x_i l_i'(x_i)``."""
        return self.latency_batch().marginals(np.asarray(flows, dtype=float))

    def cost(self, flows: np.ndarray) -> float:
        """Total cost ``C(X) = sum_i x_i l_i(x_i)``."""
        return self.latency_batch().total_cost(np.asarray(flows, dtype=float))

    def beckmann(self, flows: np.ndarray) -> float:
        """Beckmann potential ``sum_i int_0^{x_i} l_i(t) dt``."""
        return self.latency_batch().beckmann(np.asarray(flows, dtype=float))

    # ------------------------------------------------------------------ #
    # Derived instances
    # ------------------------------------------------------------------ #
    def with_demand(self, demand: float) -> "ParallelLinkInstance":
        """A copy of this instance with a different total flow.

        The links are unchanged, so the copy *shares* the cached
        :class:`LatencyBatch` (and with it the sorted-breakpoint level
        profiles): elastic-demand bisections and demand sweeps re-solve
        without re-grouping the families per trial demand.
        """
        clone = ParallelLinkInstance(self.latencies, demand, names=self.names)
        clone._batch = self._batch
        return clone

    def sub_instance(self, link_indices: Sequence[int],
                     demand: float) -> "ParallelLinkInstance":
        """The restriction of the system to ``link_indices`` with flow ``demand``.

        Used by OpTop when it discards optimally frozen links and recurses on
        the remaining subsystem.  When this instance already built its
        :class:`LatencyBatch`, the restriction derives the sub-batch by
        slicing the frozen family arrays (:meth:`LatencyBatch.subset`)
        instead of re-running the canonicaliser on every recursion round.
        """
        indices = list(link_indices)
        if not indices:
            raise ModelError("sub_instance needs at least one link")
        sub = ParallelLinkInstance(
            [self.latencies[i] for i in indices], demand,
            names=[self.names[i] for i in indices])
        if self._batch is not None:
            sub._batch = self._batch.subset(indices)
        return sub

    def shifted(self, strategy_flows: np.ndarray) -> "ParallelLinkInstance":
        """The Followers' view of the system under a Stackelberg pre-load.

        Every latency becomes ``l_i(x + s_i)`` and the demand drops by the
        controlled amount ``sum_i s_i``.
        """
        strategy = np.asarray(strategy_flows, dtype=float)
        if strategy.shape != (self.num_links,):
            raise ModelError(
                f"expected {self.num_links} strategy flows, got shape {strategy.shape}")
        if np.any(strategy < -DEFAULT_ATOL):
            raise ModelError("Stackelberg strategy flows must be non-negative")
        strategy = np.clip(strategy, 0.0, None)
        remaining = self.demand - float(strategy.sum())
        if remaining < -1e-9 * max(1.0, self.demand):
            raise ModelError(
                f"strategy routes {strategy.sum()!r} > total demand {self.demand!r}")
        remaining = max(0.0, remaining)
        shifted_lats = [lat.shifted(float(s))
                        for lat, s in zip(self.latencies, strategy)]
        return ParallelLinkInstance(shifted_lats, remaining, names=self.names)
