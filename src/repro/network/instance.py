"""Routing instances on directed networks (single and multi commodity)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.exceptions import InfeasibleFlowError, ModelError
from repro.network.graph import Network

__all__ = ["Commodity", "NetworkInstance"]

Node = Hashable


@dataclass(frozen=True)
class Commodity:
    """A source/destination pair ``(s_i, t_i)`` with demand ``r_i > 0``."""

    source: Node
    sink: Node
    demand: float

    def __post_init__(self) -> None:
        if self.source == self.sink:
            raise ModelError(
                f"commodity source and sink must differ, both are {self.source!r}")
        if self.demand <= 0.0:
            raise ModelError(f"commodity demand must be > 0, got {self.demand!r}")


class NetworkInstance:
    """A routing instance ``(G, r)``: a network plus one or more commodities.

    The single-commodity (s–t) instances of Corollary 2.3 use exactly one
    commodity; Theorem 2.1's k-commodity instances use several.  All flow
    vectors are edge-indexed NumPy arrays following the network's canonical
    edge ordering.
    """

    def __init__(self, network: Network, commodities: Sequence[Commodity]) -> None:
        commodities = tuple(commodities)
        if not commodities:
            raise ModelError("a network instance needs at least one commodity")
        for com in commodities:
            if not network.has_node(com.source):
                raise ModelError(f"source node {com.source!r} is not in the network")
            if not network.has_node(com.sink):
                raise ModelError(f"sink node {com.sink!r} is not in the network")
        self.network = network
        self.commodities = commodities

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single_commodity(cls, network: Network, source: Node, sink: Node,
                         demand: float) -> "NetworkInstance":
        """Convenience constructor for an s–t instance."""
        return cls(network, [Commodity(source, sink, demand)])

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_commodities(self) -> int:
        return len(self.commodities)

    @property
    def is_single_commodity(self) -> bool:
        return self.num_commodities == 1

    @property
    def total_demand(self) -> float:
        """Total flow ``r = sum_i r_i``."""
        return float(sum(c.demand for c in self.commodities))

    @property
    def source(self) -> Node:
        """Source node (single-commodity instances only)."""
        self._require_single()
        return self.commodities[0].source

    @property
    def sink(self) -> Node:
        """Sink node (single-commodity instances only)."""
        self._require_single()
        return self.commodities[0].sink

    def _require_single(self) -> None:
        if not self.is_single_commodity:
            raise ModelError(
                "this operation is only defined for single-commodity instances")

    def __repr__(self) -> str:
        return (f"NetworkInstance(num_nodes={self.network.num_nodes}, "
                f"num_edges={self.network.num_edges}, "
                f"num_commodities={self.num_commodities}, "
                f"total_demand={self.total_demand!r})")

    # ------------------------------------------------------------------ #
    # Functionals (delegate to the network)
    # ------------------------------------------------------------------ #
    def cost(self, edge_flows: np.ndarray) -> float:
        """Total cost ``C(f) = sum_e f_e l_e(f_e)``."""
        return self.network.cost(edge_flows)

    def beckmann(self, edge_flows: np.ndarray) -> float:
        """Beckmann potential of the edge flows."""
        return self.network.beckmann(edge_flows)

    def latencies_at(self, edge_flows: np.ndarray) -> np.ndarray:
        return self.network.latencies_at(edge_flows)

    def marginal_costs_at(self, edge_flows: np.ndarray) -> np.ndarray:
        return self.network.marginal_costs_at(edge_flows)

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    def check_flow_conservation(self, edge_flows: np.ndarray,
                                commodity_flows: Sequence[np.ndarray] | None = None,
                                *, atol: float = 1e-5) -> None:
        """Verify flow conservation of an aggregated edge-flow vector.

        When ``commodity_flows`` (one edge-flow array per commodity) is given,
        each commodity is checked individually and their sum is checked against
        ``edge_flows``; otherwise only the aggregate is checked, which for
        multi-commodity instances requires the per-node net divergence to match
        the summed demands of commodities sourced/sunk there.
        """
        flows = self.network.validate_edge_flows(edge_flows)
        scale = max(1.0, self.total_demand)
        if commodity_flows is not None:
            if len(commodity_flows) != self.num_commodities:
                raise InfeasibleFlowError(
                    f"expected {self.num_commodities} commodity flow vectors, "
                    f"got {len(commodity_flows)}")
            total = np.zeros(self.network.num_edges)
            for com, com_flows in zip(self.commodities, commodity_flows):
                self._check_single_conservation(com, com_flows, atol=atol)
                total += np.asarray(com_flows, dtype=float)
            if np.max(np.abs(total - flows)) > atol * scale:
                raise InfeasibleFlowError(
                    "commodity flows do not sum to the aggregate edge flows")
            return

        divergence = {node: 0.0 for node in self.network.nodes}
        for i, edge in enumerate(self.network.edges):
            divergence[edge.tail] += flows[i]
            divergence[edge.head] -= flows[i]
        expected = {node: 0.0 for node in self.network.nodes}
        for com in self.commodities:
            expected[com.source] += com.demand
            expected[com.sink] -= com.demand
        for node in self.network.nodes:
            if abs(divergence[node] - expected[node]) > atol * scale:
                raise InfeasibleFlowError(
                    f"flow conservation violated at node {node!r}: "
                    f"divergence {divergence[node]!r}, expected {expected[node]!r}")

    def _check_single_conservation(self, commodity: Commodity,
                                   edge_flows: np.ndarray, *, atol: float) -> None:
        flows = self.network.validate_edge_flows(edge_flows)
        scale = max(1.0, commodity.demand)
        for node in self.network.nodes:
            out_flow = sum(flows[i] for i in self.network.out_edges(node))
            in_flow = sum(flows[i] for i in self.network.in_edges(node))
            net = out_flow - in_flow
            if node == commodity.source:
                target = commodity.demand
            elif node == commodity.sink:
                target = -commodity.demand
            else:
                target = 0.0
            if abs(net - target) > atol * scale:
                raise InfeasibleFlowError(
                    f"commodity ({commodity.source!r}->{commodity.sink!r}): "
                    f"conservation violated at node {node!r}")

    # ------------------------------------------------------------------ #
    # Derived instances
    # ------------------------------------------------------------------ #
    def with_demands(self, demands: Sequence[float]) -> "NetworkInstance":
        """A copy with per-commodity demands replaced by ``demands``.

        Commodities whose new demand is zero (or negative within rounding) are
        dropped; at least one commodity must remain.
        """
        if len(demands) != self.num_commodities:
            raise ModelError(
                f"expected {self.num_commodities} demands, got {len(demands)}")
        new_commodities = []
        for com, demand in zip(self.commodities, demands):
            if demand > 1e-12:
                new_commodities.append(Commodity(com.source, com.sink, float(demand)))
        if not new_commodities:
            raise ModelError("all commodity demands would be zero")
        return NetworkInstance(self.network, new_commodities)

    def shifted(self, strategy_flows: np.ndarray,
                remaining_demands: Sequence[float]) -> "NetworkInstance":
        """The Followers' instance under a Stackelberg edge pre-load.

        ``strategy_flows`` is the Leader's edge-flow vector; every latency is
        shifted accordingly and the commodity demands are replaced by the
        uncontrolled ``remaining_demands``.
        """
        shifted_network = self.network.shifted(strategy_flows)
        if len(remaining_demands) != self.num_commodities:
            raise ModelError(
                f"expected {self.num_commodities} remaining demands, "
                f"got {len(remaining_demands)}")
        new_commodities = []
        for com, demand in zip(self.commodities, remaining_demands):
            if demand > 1e-12:
                new_commodities.append(Commodity(com.source, com.sink, float(demand)))
        if not new_commodities:
            # All flow is controlled by the Leader; keep a vanishing commodity so
            # downstream code can still compute (trivial) equilibria.
            com = self.commodities[0]
            new_commodities = [Commodity(com.source, com.sink, 1e-12)]
        return NetworkInstance(shifted_network, new_commodities)
