"""Network and instance models.

Two families of models cover everything the paper studies:

* :class:`ParallelLinkInstance` — ``m`` parallel links between a source and a
  sink sharing a total flow ``r`` (the (M, r) *scheduling instances* of
  Sections 2–4 and 6–7).
* :class:`Network` + :class:`NetworkInstance` — an arbitrary directed graph
  with latency-endowed edges and one or more source/destination commodities
  (the s–t and k-commodity instances of Theorem 2.1 and Corollary 2.3).

Both expose the cost functionals the algorithms need (total cost, Beckmann
potential, per-link/edge latencies and marginal costs) plus feasibility
validation helpers.
"""

from repro.network.parallel import ParallelLinkInstance
from repro.network.graph import Edge, Network
from repro.network.instance import Commodity, NetworkInstance
from repro.network.builders import (
    network_from_edge_list,
    parallel_links_from_coefficients,
    parallel_network_as_graph,
)

__all__ = [
    "ParallelLinkInstance",
    "Edge",
    "Network",
    "Commodity",
    "NetworkInstance",
    "network_from_edge_list",
    "parallel_links_from_coefficients",
    "parallel_network_as_graph",
]
