"""Directed networks with latency-endowed edges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import ModelError
from repro.latency.base import LatencyFunction
from repro.latency.batch import LatencyBatch

__all__ = ["Edge", "Network"]

Node = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed edge with its latency function.

    ``key`` distinguishes parallel edges between the same pair of nodes (the
    paper's parallel-link systems embed into the network model as ``m``
    parallel s–t edges).
    """

    tail: Node
    head: Node
    latency: LatencyFunction
    key: int = 0

    def __post_init__(self) -> None:
        if self.tail == self.head:
            raise ModelError(f"self loops are not allowed (node {self.tail!r})")
        if not isinstance(self.latency, LatencyFunction):
            raise ModelError(
                f"edge ({self.tail!r}, {self.head!r}): expected a LatencyFunction, "
                f"got {type(self.latency).__name__}")

    @property
    def endpoints(self) -> Tuple[Node, Node]:
        return (self.tail, self.head)


class Network:
    """A directed multigraph whose edges carry latency functions.

    Edges are stored in a fixed order so that flows can be represented as
    dense NumPy vectors indexed by edge id; this is what the Frank–Wolfe
    solver, the Stackelberg strategies and the benchmarks operate on.
    """

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._edges: List[Edge] = []
        self._out: Dict[Node, List[int]] = {}
        self._in: Dict[Node, List[int]] = {}
        self._nodes: List[Node] = []
        #: Derived views (latency batch, CSR adjacency) built lazily and
        #: invalidated whenever the graph is mutated.
        self._derived: Dict[str, Any] = {}
        if edges is not None:
            for edge in edges:
                self.add_edge(edge.tail, edge.head, edge.latency)

    # The derived caches are rebuildable; drop them when pickling (instances
    # travel to process-pool workers, which recreate the views on demand).
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_derived"] = {}
        return state

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> None:
        """Register ``node`` (no-op if already present)."""
        if node not in self._out:
            self._out[node] = []
            self._in[node] = []
            self._nodes.append(node)
            self._derived.clear()

    def add_edge(self, tail: Node, head: Node, latency: LatencyFunction) -> int:
        """Add a directed edge and return its index.

        Parallel edges between the same node pair are allowed; each call adds
        a new edge with a fresh key.
        """
        self.add_node(tail)
        self.add_node(head)
        key = sum(1 for e in self._edges if e.tail == tail and e.head == head)
        edge = Edge(tail, head, latency, key=key)
        index = len(self._edges)
        self._edges.append(edge)
        self._out[tail].append(index)
        self._in[head].append(index)
        self._derived.clear()
        return index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges in insertion order (the canonical edge indexing)."""
        return tuple(self._edges)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes in first-seen order."""
        return tuple(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def edge(self, index: int) -> Edge:
        """The edge with the given index."""
        return self._edges[index]

    def out_edges(self, node: Node) -> Tuple[int, ...]:
        """Indices of edges leaving ``node``."""
        return tuple(self._out.get(node, ()))

    def in_edges(self, node: Node) -> Tuple[int, ...]:
        """Indices of edges entering ``node``."""
        return tuple(self._in.get(node, ()))

    def has_node(self, node: Node) -> bool:
        return node in self._out

    def __repr__(self) -> str:
        return f"Network(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Derived vectorized views (cached; invalidated on mutation)
    # ------------------------------------------------------------------ #
    def latency_batch(self) -> LatencyBatch:
        """The vectorized family-grouped view of the edge latencies (cached)."""
        batch = self._derived.get("batch")
        if batch is None:
            batch = LatencyBatch(tuple(e.latency for e in self._edges))
            self._derived["batch"] = batch
        return batch

    def csr_structure(self) -> Dict[str, Any]:
        """Cached CSR-ready adjacency arrays in node-index space.

        Returns a dict with:

        * ``node_index`` — map from node to dense index (insertion order);
        * ``tail_idx`` / ``head_idx`` — per-edge endpoint indices;
        * ``pair_id`` — per-edge id of its ``(tail, head)`` node pair (so
          parallel edges share an id and can be reduced to the cheapest
          representative before a shortest-path run);
        * ``pair_tail`` / ``pair_head`` — per-pair endpoint indices;
        * ``pair_lookup`` — ``(tail_idx, head_idx) -> pair id``;
        * ``has_parallel`` — whether any node pair carries multiple edges.

        The structure depends only on the topology, never on costs, so one
        cache serves every shortest-path call on this network.
        """
        structure = self._derived.get("csr")
        if structure is None:
            node_index = {node: i for i, node in enumerate(self._nodes)}
            tail_idx = np.array([node_index[e.tail] for e in self._edges],
                                dtype=np.int64)
            head_idx = np.array([node_index[e.head] for e in self._edges],
                                dtype=np.int64)
            if len(self._edges):
                keys = tail_idx * len(self._nodes) + head_idx
                unique_keys, pair_id = np.unique(keys, return_inverse=True)
                pair_tail = unique_keys // len(self._nodes)
                pair_head = unique_keys % len(self._nodes)
            else:
                pair_id = np.zeros(0, dtype=np.int64)
                pair_tail = pair_head = np.zeros(0, dtype=np.int64)
            structure = {
                "node_index": node_index,
                "tail_idx": tail_idx,
                "head_idx": head_idx,
                "pair_id": pair_id,
                "pair_tail": pair_tail,
                "pair_head": pair_head,
                "pair_lookup": {(int(t), int(h)): int(p)
                                for p, (t, h) in enumerate(zip(pair_tail,
                                                               pair_head))},
                "has_parallel": len(pair_tail) != len(self._edges),
            }
            self._derived["csr"] = structure
        return structure

    # ------------------------------------------------------------------ #
    # Flow functionals
    # ------------------------------------------------------------------ #
    def validate_edge_flows(self, edge_flows: Sequence[float]) -> np.ndarray:
        """Return ``edge_flows`` as a clipped non-negative array of the right length."""
        arr = np.asarray(edge_flows, dtype=float)
        if arr.shape != (self.num_edges,):
            raise ModelError(
                f"expected {self.num_edges} edge flows, got shape {arr.shape}")
        if np.any(arr < -1e-7):
            raise ModelError(f"negative edge flow: {arr.min()!r}")
        return np.clip(arr, 0.0, None)

    def latencies_at(self, edge_flows: np.ndarray) -> np.ndarray:
        """Per-edge latencies ``l_e(f_e)``."""
        return self.latency_batch().values(np.asarray(edge_flows, dtype=float))

    def marginal_costs_at(self, edge_flows: np.ndarray) -> np.ndarray:
        """Per-edge marginal costs ``l_e(f_e) + f_e l_e'(f_e)``."""
        return self.latency_batch().marginals(np.asarray(edge_flows, dtype=float))

    def cost(self, edge_flows: np.ndarray) -> float:
        """Total cost ``C(f) = sum_e f_e l_e(f_e)``."""
        return self.latency_batch().total_cost(np.asarray(edge_flows, dtype=float))

    def beckmann(self, edge_flows: np.ndarray) -> float:
        """Beckmann potential ``sum_e int_0^{f_e} l_e(t) dt``."""
        return self.latency_batch().beckmann(np.asarray(edge_flows, dtype=float))

    def path_latency(self, path_edges: Sequence[int], edge_flows: np.ndarray) -> float:
        """Latency of a path (list of edge indices) under ``edge_flows``."""
        flows = np.asarray(edge_flows, dtype=float)
        return float(sum(float(self._edges[i].latency.value(flows[i]))
                         for i in path_edges))

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def shifted(self, strategy_flows: np.ndarray) -> "Network":
        """The Followers' network: every latency shifted by the Leader's edge flow."""
        strategy = self.validate_edge_flows(strategy_flows)
        shifted_net = Network()
        for node in self._nodes:
            shifted_net.add_node(node)
        for edge, s in zip(self._edges, strategy):
            shifted_net.add_edge(edge.tail, edge.head, edge.latency.shifted(float(s)))
        return shifted_net

    def to_networkx(self, edge_flows: np.ndarray | None = None,
                    capacities: np.ndarray | None = None) -> nx.MultiDiGraph:
        """Export to a :class:`networkx.MultiDiGraph`.

        Edge attributes: ``index`` (canonical edge id), optionally ``flow`` and
        ``capacity``.  Used by the max-flow free-flow computation and by the
        examples for visual inspection.
        """
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self._nodes)
        for i, edge in enumerate(self._edges):
            attrs = {"index": i, "key": edge.key}
            if edge_flows is not None:
                attrs["flow"] = float(edge_flows[i])
            if capacities is not None:
                attrs["capacity"] = float(capacities[i])
            graph.add_edge(edge.tail, edge.head, **attrs)
        return graph
