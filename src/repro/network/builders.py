"""Convenience constructors for networks and instances."""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Tuple

from repro.latency.base import LatencyFunction
from repro.latency.linear import LinearLatency
from repro.network.graph import Network
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance

__all__ = [
    "parallel_links_from_coefficients",
    "network_from_edge_list",
    "parallel_network_as_graph",
]

Node = Hashable


def parallel_links_from_coefficients(coefficients: Sequence[Tuple[float, float]],
                                     demand: float) -> ParallelLinkInstance:
    """Build a parallel-link instance from affine latency coefficients.

    ``coefficients`` is a sequence of ``(slope, intercept)`` pairs; link ``i``
    gets latency ``slope_i * x + intercept_i``.
    """
    latencies = [LinearLatency(a, b) for a, b in coefficients]
    return ParallelLinkInstance(latencies, demand)


def network_from_edge_list(edges: Iterable[Tuple[Node, Node, LatencyFunction]]) -> Network:
    """Build a :class:`Network` from ``(tail, head, latency)`` triples."""
    network = Network()
    for tail, head, latency in edges:
        network.add_edge(tail, head, latency)
    return network


def parallel_network_as_graph(instance: ParallelLinkInstance,
                              source: Node = "s", sink: Node = "t") -> NetworkInstance:
    """Embed a parallel-link instance into the general network model.

    Each link becomes a parallel s–t edge with the same latency; the result is
    a single-commodity :class:`NetworkInstance` with the same demand.  Used by
    the integration tests to check that MOP and OpTop agree on parallel links.
    """
    network = Network()
    for latency in instance.latencies:
        network.add_edge(source, sink, latency)
    return NetworkInstance.single_commodity(network, source, sink, instance.demand)
