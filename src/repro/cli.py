"""Command-line interface.

Three subcommands cover the typical workflows, all running through the
unified :mod:`repro.api` solver-session layer:

``repro analyze``
    Load an instance from a JSON file (see :mod:`repro.serialization`) or pick
    a named canonical instance, and print the Nash equilibrium, the optimum,
    the price of anarchy, the Price of Optimum and the optimal Leader
    strategy.  ``--strategy`` selects any registered strategy (default: the
    Price-of-Optimum algorithm); ``--json`` dumps the raw
    :class:`~repro.api.report.SolveReport`.

``repro sweep``
    Sweep the Leader's share alpha on a parallel-link instance and print the
    cost ratios of the LLF and SCALE baselines against the theoretical bounds.

``repro experiments``
    Re-run the paper-reproduction experiments (E1–E12) and print their tables
    — the same output the benchmark harness produces.

Invoke with ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import experiments as experiments_module
from repro.analysis.sweep import alpha_sweep
from repro.api import SolveConfig, SolveReport, available_strategies, solve
from repro.api.dispatch import PARALLEL, resolve_instance_kind
from repro.exceptions import ReproError
from repro.instances import (
    braess_paradox,
    figure_4_example,
    pigou,
    roughgarden_example,
)
from repro.metrics import general_latency_bound, linear_latency_bound
from repro.serialization import load_instance
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]

#: Canonical instances addressable by name from the command line.
NAMED_INSTANCES: Dict[str, Callable[[], object]] = {
    "pigou": pigou,
    "figure4": figure_4_example,
    "braess": braess_paradox,
    "roughgarden": roughgarden_example,
}

_EXPERIMENTS: Dict[str, Callable] = {
    "E1": experiments_module.experiment_pigou,
    "E2": experiments_module.experiment_figure4_optop,
    "E3": experiments_module.experiment_roughgarden_mop,
    "E4": experiments_module.experiment_optop_random_families,
    "E5": experiments_module.experiment_mop_networks,
    "E6": experiments_module.experiment_linear_optimal,
    "E7": experiments_module.experiment_bound_sweep,
    "E8": experiments_module.experiment_mm1_beta,
    "E9": experiments_module.experiment_monotonicity,
    "E10": experiments_module.experiment_frozen_links,
    "E11": experiments_module.experiment_scaling,
    "E12": experiments_module.experiment_thresholds,
    "E13": experiments_module.experiment_weak_strong,
    "E14": experiments_module.experiment_beta_vs_demand,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stackelberg routing and the Price of Optimum "
                    "(Kaporis & Spirakis, SPAA 2006)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser(
        "analyze", help="compute Nash, optimum, PoA and the Price of Optimum")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--instance", choices=sorted(NAMED_INSTANCES),
                        help="a canonical instance from the paper")
    source.add_argument("--file", help="JSON instance file (see repro.serialization)")
    analyze.add_argument("--strategy", choices=available_strategies(),
                         default="optop",
                         help="registered strategy to run (default: optop)")
    analyze.add_argument("--alpha", type=float, default=None,
                         help="Leader budget for the budgeted strategies "
                              "(llf/scale/brute_force)")
    analyze.add_argument("--json", action="store_true",
                         help="print the SolveReport as JSON instead of tables")

    sweep = subparsers.add_parser(
        "sweep", help="sweep the Leader share alpha on a parallel-link instance")
    sweep_source = sweep.add_mutually_exclusive_group(required=True)
    sweep_source.add_argument("--instance", choices=sorted(NAMED_INSTANCES))
    sweep_source.add_argument("--file")
    sweep.add_argument("--alphas", type=float, nargs="+",
                       default=[0.1, 0.25, 0.5, 0.75, 1.0],
                       help="values of alpha to evaluate")

    experiments = subparsers.add_parser(
        "experiments", help="re-run the paper-reproduction experiments (E1-E12)")
    experiments.add_argument("--only", nargs="+", choices=sorted(_EXPERIMENTS),
                             help="restrict to specific experiment ids")
    return parser


def _load(args: argparse.Namespace):
    if getattr(args, "instance", None):
        return NAMED_INSTANCES[args.instance]()
    return load_instance(args.file)


def _print_parallel_report(instance, report: SolveReport) -> None:
    rows = []
    for i in range(instance.num_links):
        rows.append((instance.names[i],
                     report.nash_flows[i],
                     report.optimum_flows[i],
                     report.leader_flows[i],
                     report.induced_flows[i]))
    print(format_table(("link", "nash flow", "optimum flow", "leader flow",
                        "induced flow"), rows,
                       title="Parallel-link instance analysis"))
    print(f"C(N) = {report.nash_cost:.6f}  C(O) = {report.optimum_cost:.6f}  "
          f"price of anarchy = {report.price_of_anarchy:.6f}")
    if report.beta is not None:
        print(f"price of optimum beta = {report.beta:.6f}  "
              f"induced cost = {report.induced_cost:.6f}")
    else:
        print(f"strategy {report.strategy} (alpha = {report.alpha:.6f})  "
              f"induced cost = {report.induced_cost:.6f}  "
              f"ratio = {report.cost_ratio:.6f}")


def _print_network_report(instance, report: SolveReport) -> None:
    rows = []
    for i, edge in enumerate(instance.network.edges):
        rows.append((f"{edge.tail}->{edge.head}",
                     report.nash_flows[i],
                     report.optimum_flows[i],
                     report.leader_flows[i]))
    print(format_table(("edge", "nash flow", "optimum flow", "leader flow"), rows,
                       title="Network instance analysis"))
    print(f"C(N) = {report.nash_cost:.6f}  C(O) = {report.optimum_cost:.6f}  "
          f"price of anarchy = {report.price_of_anarchy:.6f}")
    if report.beta is not None:
        print(f"price of optimum beta = {report.beta:.6f}  "
              f"induced cost = {report.induced_cost:.6f}")
    else:
        print(f"strategy {report.strategy} (alpha = {report.alpha:.6f})  "
              f"induced cost = {report.induced_cost:.6f}  "
              f"ratio = {report.cost_ratio:.6f}")


def _command_analyze(args: argparse.Namespace) -> int:
    instance = _load(args)
    config = SolveConfig() if args.alpha is None else SolveConfig(alpha=args.alpha)
    report = solve(instance, args.strategy, config=config)
    if args.json:
        print(report.to_json(indent=2))
        return 0
    if report.instance_kind == PARALLEL:
        _print_parallel_report(instance, report)
    else:
        _print_network_report(instance, report)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    instance = _load(args)
    if resolve_instance_kind(instance) != PARALLEL:
        print("error: the sweep command needs a parallel-link instance",
              file=sys.stderr)
        return 2
    beta = solve(instance, "optop").beta
    rows = []
    for row in alpha_sweep(instance, args.alphas):
        rows.append((row.alpha, row.ratios["llf"], row.ratios["scale"],
                     general_latency_bound(row.alpha),
                     linear_latency_bound(row.alpha),
                     "yes" if row.alpha >= beta else ""))
    print(format_table(("alpha", "LLF ratio", "SCALE ratio", "1/alpha",
                        "4/(3+alpha)", "alpha >= beta"), rows,
                       title=f"Alpha sweep (price of optimum beta = {beta:.6f})"))
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    ids: Sequence[str] = args.only or sorted(_EXPERIMENTS,
                                             key=lambda e: int(e[1:]))
    failures: List[str] = []
    for experiment_id in ids:
        record = _EXPERIMENTS[experiment_id]()
        print(record.to_table())
        print()
        if not record.all_claims_hold:
            failures.append(experiment_id)
    if failures:
        print(f"experiments with failing claims: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _command_analyze,
        "sweep": _command_sweep,
        "experiments": _command_experiments,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
