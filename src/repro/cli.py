"""Command-line interface.

Three subcommands cover the typical workflows, all running through the
unified :mod:`repro.api` solver-session layer:

``repro analyze``
    Load an instance from a JSON file (see :mod:`repro.serialization`) or pick
    a named canonical instance, and print the Nash equilibrium, the optimum,
    the price of anarchy, the Price of Optimum and the optimal Leader
    strategy.  ``--strategy`` selects any registered strategy (default: the
    Price-of-Optimum algorithm); ``--json`` dumps the raw
    :class:`~repro.api.report.SolveReport`.

``repro sweep``
    Sweep the Leader's share alpha on a parallel-link instance and print the
    cost ratios of the LLF and SCALE baselines against the theoretical bounds.

``repro experiments``
    Re-run the paper-reproduction experiments (E1–E14) and print their tables
    — the same output the benchmark harness produces.

``repro study``
    The declarative study pipeline: ``repro study list`` shows the available
    experiment plans, named studies and instance generators; ``repro study
    run <name>`` executes one (``--store DIR`` makes the run resumable
    through the content-addressed artifact store); ``repro study resume
    <name> --store DIR`` re-runs against an existing store and reports how
    much was served from artifacts.

``repro solve``
    One solve through the unified API — like ``analyze`` but scenario-aware:
    ``--elastic`` switches to the elastic-demand fixed point of
    :mod:`repro.scenarios` (``--intercept``/``--slope``/``--curve`` describe
    the inverse-demand curve) and reports the realised rate, the market
    price and the consumer surplus next to the usual solve report.

``repro trace``
    Time-varying demand: ``repro trace list`` shows the registered demand
    processes; ``repro trace run`` replays a demand trace (diurnal by
    default) step by step through a :class:`repro.serve.SolveService`,
    printing per-step reports and the warm-start accounting.  With
    ``--store DIR`` the per-step artifacts land in the content-addressed
    store, so a second replay resumes with **zero** solver calls.

``repro bench``
    Adversarial benchmark suites with certified optimality gaps: ``repro
    bench suite list`` shows the built-in suites; ``repro bench suite run
    --suite small`` expands the suite through the study pipeline and prints
    a per-strategy gap table certified against the MILP lower bound of the
    ``exact`` strategy (``--store DIR`` makes the run resumable, ``--csv``/
    ``--json``/``--baseline-out`` export the results); ``repro bench suite
    verify --baseline FILE`` re-runs the suite and exits non-zero if any
    instance digest drifted or any certified gap regressed beyond the
    pinned value plus the suite tolerance.

``repro serve``
    The serving layer: ``repro serve bench`` drives a seed-deterministic
    synthetic request stream through a :class:`repro.serve.SolveService`
    (micro-batching, request coalescing, tiered cache) and prints per-pass
    throughput and the full service statistics.  ``--store DIR`` adds the
    on-disk artifact store as the tier-2 cache, shared with ``repro study``;
    ``--trace PROCESS`` drives diurnal traffic instead of the hot-key mix.

``repro chaos``
    Deterministic fault injection: ``repro chaos list`` shows the built-in
    fault plans; ``repro chaos run --plan smoke`` replays a pinned workload
    through a supervised worker cluster with the plan's faults armed
    (worker SIGKILLs, corrupted artifacts, dropped connections, ...) and
    exits non-zero unless the degradation contract held — every request
    resolved to a correct report or a typed error, the merged statistics
    still partition exactly, and recovery (respawns, quarantine) engaged.

``repro obs``
    Observability (:mod:`repro.obs`) against a running gateway or worker
    (e.g. ``repro serve cluster --obs``): ``repro obs metrics`` scrapes
    and prints ``/metrics`` (Prometheus text, or ``--json``); ``repro obs
    trace --last N`` prints the newest spans of the ``/trace`` ring;
    ``repro obs top`` ranks span names (split by strategy where
    annotated) by cumulative recorded time.

Invoke with ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.studies import (
    EXPERIMENTS,
    build_experiment,
    experiment_ids,
    experiment_title,
)
from repro.analysis.sweep import alpha_sweep
from repro.api import SolveConfig, SolveReport, available_strategies, solve
from repro.api.dispatch import PARALLEL, resolve_instance_kind
from repro.exceptions import ReproError
from repro.instances import (
    braess_paradox,
    figure_4_example,
    pigou,
    roughgarden_example,
)
from repro.metrics import general_latency_bound, linear_latency_bound
from repro.serialization import load_instance
from repro.study import (
    ArtifactStore,
    available_generators,
    get_generator,
    get_named_study,
    named_studies,
    run_study,
)
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]

#: Canonical instances addressable by name from the command line.
NAMED_INSTANCES: Dict[str, Callable[[], object]] = {
    "pigou": pigou,
    "figure4": figure_4_example,
    "braess": braess_paradox,
    "roughgarden": roughgarden_example,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stackelberg routing and the Price of Optimum "
                    "(Kaporis & Spirakis, SPAA 2006)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser(
        "analyze", help="compute Nash, optimum, PoA and the Price of Optimum")
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument("--instance", choices=sorted(NAMED_INSTANCES),
                        help="a canonical instance from the paper")
    source.add_argument("--file", help="JSON instance file (see repro.serialization)")
    analyze.add_argument("--strategy", choices=available_strategies(),
                         default="optop",
                         help="registered strategy to run (default: optop)")
    analyze.add_argument("--alpha", type=float, default=None,
                         help="Leader budget for the budgeted strategies "
                              "(llf/scale/brute_force)")
    analyze.add_argument("--json", action="store_true",
                         help="print the SolveReport as JSON instead of tables")

    solve_cmd = subparsers.add_parser(
        "solve", help="one solve through the unified API (scenario-aware)")
    solve_source = solve_cmd.add_mutually_exclusive_group(required=True)
    solve_source.add_argument("--instance", choices=sorted(NAMED_INSTANCES),
                              help="a canonical instance from the paper")
    solve_source.add_argument("--file",
                              help="JSON instance file (see "
                                   "repro.serialization)")
    solve_cmd.add_argument("--strategy", choices=available_strategies(),
                           default="optop",
                           help="registered strategy to run (default: optop)")
    solve_cmd.add_argument("--alpha", type=float, default=None,
                           help="Leader budget for the budgeted strategies")
    solve_cmd.add_argument("--elastic", action="store_true",
                           help="solve the elastic-demand fixed point "
                                "instead of the instance's static demand")
    solve_cmd.add_argument("--curve", choices=("linear", "exponential"),
                           default="linear",
                           help="inverse-demand curve family (with "
                                "--elastic; default: linear)")
    solve_cmd.add_argument("--intercept", type=float, default=2.0,
                           help="demand-curve intercept D(0) (default: 2.0)")
    solve_cmd.add_argument("--slope", type=float, default=1.0,
                           help="slope of the linear curve (default: 1.0)")
    solve_cmd.add_argument("--decay", type=float, default=1.0,
                           help="decay of the exponential curve "
                                "(default: 1.0)")
    solve_cmd.add_argument("--store", default=None,
                           help="artifact-store directory (elastic solves "
                                "resume through it)")
    solve_cmd.add_argument("--json", action="store_true",
                           help="print the report as JSON")

    trace = subparsers.add_parser(
        "trace", help="time-varying demand: replay traces through the "
                      "serving layer")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_list = trace_sub.add_parser(
        "list", help="list the registered demand-trace processes")
    del trace_list  # no options
    trace_run = trace_sub.add_parser(
        "run", help="replay a demand trace step by step")
    trace_source = trace_run.add_mutually_exclusive_group(required=True)
    trace_source.add_argument("--instance", choices=sorted(NAMED_INSTANCES),
                              help="a canonical instance from the paper")
    trace_source.add_argument("--file",
                              help="JSON instance file (see "
                                   "repro.serialization)")
    trace_run.add_argument("--process", default="diurnal",
                           help="registered trace process (default: diurnal; "
                                "see 'repro trace list')")
    trace_run.add_argument("--steps", type=int, default=50,
                           help="number of trace steps (default: 50)")
    trace_run.add_argument("--base", type=float, default=2.0,
                           help="base demand level (default: 2.0)")
    trace_run.add_argument("--amplitude", type=float, default=1.0,
                           help="diurnal/random-walk amplitude "
                                "(default: 1.0)")
    trace_run.add_argument("--levels", type=float, nargs="+", default=None,
                           help="explicit levels (piecewise/literal "
                                "processes)")
    trace_run.add_argument("--csv", default=None,
                           help="load the trace levels from a CSV file "
                                "(overrides --process)")
    trace_run.add_argument("--seed", type=int, default=0,
                           help="seed for seeded processes (default: 0)")
    trace_run.add_argument("--strategy", choices=available_strategies(),
                           default="optop")
    trace_run.add_argument("--store", default=None,
                           help="artifact-store directory; a second replay "
                                "against it resumes with zero solver calls")
    trace_run.add_argument("--json", action="store_true",
                           help="print the TraceReport as JSON")
    trace_run.add_argument("--quiet", action="store_true",
                           help="only print the replay summary line")

    sweep = subparsers.add_parser(
        "sweep", help="sweep the Leader share alpha on a parallel-link instance")
    sweep_source = sweep.add_mutually_exclusive_group(required=True)
    sweep_source.add_argument("--instance", choices=sorted(NAMED_INSTANCES))
    sweep_source.add_argument("--file")
    sweep.add_argument("--alphas", type=float, nargs="+",
                       default=[0.1, 0.25, 0.5, 0.75, 1.0],
                       help="values of alpha to evaluate")

    experiments = subparsers.add_parser(
        "experiments", help="re-run the paper-reproduction experiments (E1-E14)")
    experiments.add_argument("--only", nargs="+",
                             choices=sorted(e for e in EXPERIMENTS
                                            if e.startswith("E")),
                             help="restrict to specific experiment ids")
    experiments.add_argument("--store", default=None,
                             help="artifact-store directory (makes the run "
                                  "resumable)")

    study = subparsers.add_parser(
        "study", help="declarative study pipeline: list, run, resume")
    study_sub = study.add_subparsers(dest="study_command", required=True)

    study_list = study_sub.add_parser(
        "list", help="list experiment plans, named studies and generators")
    study_list.add_argument("--generators", action="store_true",
                            help="also list the instance-generator registry")

    def add_run_arguments(sub: argparse.ArgumentParser, *,
                          store_required: bool) -> None:
        sub.add_argument("name",
                         help="an experiment id (E1-E14, A1-A3) or a named "
                              "study (see 'repro study list')")
        sub.add_argument("--store", required=store_required, default=None,
                         help="artifact-store directory"
                              + ("" if store_required
                                 else " (makes the run resumable)"))
        sub.add_argument("--workers", type=int, default=0,
                         help="process-pool width for cache misses "
                              "(0 = sequential)")
        sub.add_argument("--json", action="store_true",
                         help="print the study/record as JSON")
        sub.add_argument("--csv", default=None,
                         help="also export the study cells as CSV to this "
                              "path")

    study_run = study_sub.add_parser(
        "run", help="run one experiment plan or named study")
    add_run_arguments(study_run, store_required=False)

    study_resume = study_sub.add_parser(
        "resume", help="re-run against an existing artifact store")
    add_run_arguments(study_resume, store_required=True)

    bench = subparsers.add_parser(
        "bench", help="adversarial benchmark suites with certified gaps")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_suite = bench_sub.add_parser(
        "suite", help="list, run or verify a benchmark suite")
    bench_suite_sub = bench_suite.add_subparsers(dest="suite_command",
                                                 required=True)
    bench_suite_list = bench_suite_sub.add_parser(
        "list", help="list the built-in benchmark suites")
    del bench_suite_list  # no options

    def add_suite_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--suite", default="small",
                         help="built-in suite name (default: small; see "
                              "'repro bench suite list')")
        sub.add_argument("--store", default=None,
                         help="artifact-store directory; a second run "
                              "against it resumes with zero solver calls")
        sub.add_argument("--workers", type=int, default=0,
                         help="process-pool width for cache misses "
                              "(0 = sequential)")

    bench_suite_run = bench_suite_sub.add_parser(
        "run", help="run a suite and print the certified gap table")
    add_suite_arguments(bench_suite_run)
    bench_suite_run.add_argument("--json", action="store_true",
                                 help="print the SuiteReport as JSON")
    bench_suite_run.add_argument("--csv", default=None,
                                 help="also export the gap table as CSV to "
                                      "this path")
    bench_suite_run.add_argument("--baseline-out", default=None,
                                 help="write the run's gaps/digests as a "
                                      "verify baseline to this path")

    bench_suite_verify = bench_suite_sub.add_parser(
        "verify", help="run a suite and gate it against a pinned baseline")
    add_suite_arguments(bench_suite_verify)
    bench_suite_verify.add_argument(
        "--baseline", default=".github/suite-gap-baseline.json",
        help="pinned baseline JSON (default: "
             ".github/suite-gap-baseline.json)")

    serve = subparsers.add_parser(
        "serve", help="serving layer: benchmark the SolveService")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    serve_bench = serve_sub.add_parser(
        "bench", help="drive a synthetic request stream through SolveService")
    serve_bench.add_argument("--requests", type=int, default=5000,
                             help="requests per pass (default: 5000)")
    serve_bench.add_argument("--distinct", type=int, default=200,
                             help="distinct instances in the stream "
                                  "(default: 200)")
    serve_bench.add_argument("--num-links", type=int, default=4,
                             help="links per synthetic instance (default: 4)")
    serve_bench.add_argument("--passes", type=int, default=2,
                             help="passes over the stream (default: 2; the "
                                  "second pass measures the warm cache)")
    serve_bench.add_argument("--strategy", choices=available_strategies(),
                             default="optop")
    serve_bench.add_argument("--seed", type=int, default=0,
                             help="workload seed (stream is deterministic)")
    serve_bench.add_argument("--max-batch", type=int, default=64,
                             help="micro-batch size cap (default: 64)")
    serve_bench.add_argument("--max-wait-ms", type=float, default=2.0,
                             help="micro-batch fill window in ms "
                                  "(default: 2.0)")
    serve_bench.add_argument("--max-queue", type=int, default=0,
                             help="request queue bound, 0 = unbounded "
                                  "(default: 0)")
    serve_bench.add_argument("--workers", type=int, default=0,
                             help="process-pool width per batch "
                                  "(0 = in-process)")
    serve_bench.add_argument("--store", default=None,
                             help="artifact-store directory used as the "
                                  "tier-2 cache")
    serve_bench.add_argument("--json", action="store_true",
                             help="print the benchmark record as JSON")
    serve_bench.add_argument("--trace", default=None,
                             help="demand-trace process driving time-varying "
                                  "traffic (e.g. diurnal) instead of the "
                                  "fixed hot-key mix")
    serve_bench.add_argument("--trace-steps", type=int, default=24,
                             help="steps of the demand trace (default: 24)")
    serve_bench.add_argument("--cluster", type=int, default=0, metavar="N",
                             help="run the stream through a cluster of N "
                                  "worker processes instead of one "
                                  "in-process service (default: 0 = off)")
    serve_bench.add_argument("--max-inflight", type=int, default=2,
                             help="per-worker in-flight bound of the "
                                  "gateway (cluster mode; default: 2)")

    serve_cluster = serve_sub.add_parser(
        "cluster",
        help="run a sharded solve cluster: N workers behind an HTTP gateway")
    serve_cluster.add_argument("--workers", type=int, default=2,
                               help="worker processes to spawn (default: 2)")
    serve_cluster.add_argument("--host", default="127.0.0.1",
                               help="bind address (default: 127.0.0.1)")
    serve_cluster.add_argument("--port", type=int, default=8080,
                               help="gateway HTTP port (0 = ephemeral; "
                                    "default: 8080)")
    serve_cluster.add_argument("--store", default=None,
                               help="shared artifact-store directory (a "
                                    "private temporary one when omitted)")
    serve_cluster.add_argument("--max-batch", type=int, default=64,
                               help="per-worker micro-batch size cap "
                                    "(default: 64)")
    serve_cluster.add_argument("--max-wait-ms", type=float, default=2.0,
                               help="per-worker micro-batch fill window in "
                                    "ms (default: 2.0)")
    serve_cluster.add_argument("--max-queue", type=int, default=10_000,
                               help="per-worker request queue bound "
                                    "(default: 10000)")
    serve_cluster.add_argument("--max-inflight", type=int, default=8,
                               help="per-worker in-flight bound of the "
                                    "gateway (default: 8)")
    serve_cluster.add_argument("--duration", type=float, default=None,
                               help="serve for this many seconds, then "
                                    "drain and exit (default: until Ctrl-C)")
    serve_cluster.add_argument("--obs", action="store_true",
                               help="enable observability: trace ids across "
                                    "gateway and workers, /metrics and "
                                    "/trace endpoints")

    chaos = subparsers.add_parser(
        "chaos", help="deterministic fault injection against a live cluster")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_list = chaos_sub.add_parser(
        "list", help="list the built-in fault plans")
    del chaos_list  # no options
    chaos_run = chaos_sub.add_parser(
        "run", help="replay a pinned workload under a fault plan and "
                    "check the degradation contract")
    chaos_run.add_argument("--plan", default="smoke",
                           help="built-in plan name or plan-JSON file "
                                "(default: smoke; see 'repro chaos list')")
    chaos_run.add_argument("--steps", type=int, default=50,
                           help="requests in the trace (default: 50)")
    chaos_run.add_argument("--workers", type=int, default=2,
                           help="worker processes (default: 2)")
    chaos_run.add_argument("--distinct", type=int, default=16,
                           help="distinct instances in the trace "
                                "(default: 16)")
    chaos_run.add_argument("--seed", type=int, default=0,
                           help="workload seed (default: 0); the fault "
                                "plan carries its own seed")
    chaos_run.add_argument("--strategy", choices=available_strategies(),
                           default="optop")
    chaos_run.add_argument("--deadline-ms", type=float, default=None,
                           help="attach this end-to-end deadline to every "
                                "request (exercises the 504 path)")
    chaos_run.add_argument("--store", default=None,
                           help="shared artifact-store directory (a "
                                "private temporary one when omitted)")
    chaos_run.add_argument("--max-respawns", type=int, default=3,
                           help="supervisor restart budget per worker "
                                "(default: 3)")
    chaos_run.add_argument("--expect-respawn", action="store_true",
                           help="additionally fail unless >= 1 worker was "
                                "respawned and >= 1 artifact quarantined "
                                "(for plans that script those faults)")
    chaos_run.add_argument("--json", action="store_true",
                           help="print the ChaosReport as JSON")

    obs = subparsers.add_parser(
        "obs", help="observability: scrape metrics and traces from a "
                    "running gateway or worker")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def add_obs_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--url", default="http://127.0.0.1:8080",
                         help="base URL of a gateway or worker "
                              "(default: http://127.0.0.1:8080)")

    obs_metrics = obs_sub.add_parser(
        "metrics", help="scrape and print /metrics")
    add_obs_url(obs_metrics)
    obs_metrics.add_argument("--json", action="store_true",
                             help="fetch the JSON snapshot instead of the "
                                  "Prometheus text exposition")

    obs_trace = obs_sub.add_parser(
        "trace", help="print the newest spans of the /trace ring")
    add_obs_url(obs_trace)
    obs_trace.add_argument("--last", type=int, default=None,
                           help="only the newest N spans")
    obs_trace.add_argument("--json", action="store_true",
                           help="print the raw Chrome trace_event JSON "
                                "(chrome://tracing / Perfetto compatible)")

    obs_top = obs_sub.add_parser(
        "top", help="rank span names by cumulative recorded time")
    add_obs_url(obs_top)
    obs_top.add_argument("--last", type=int, default=None,
                         help="restrict to the newest N spans")
    obs_top.add_argument("--limit", type=int, default=10,
                         help="rows to print (default: 10)")
    return parser


def _load(args: argparse.Namespace):
    if getattr(args, "instance", None):
        return NAMED_INSTANCES[args.instance]()
    return load_instance(args.file)


def _print_parallel_report(instance, report: SolveReport) -> None:
    rows = []
    for i in range(instance.num_links):
        rows.append((instance.names[i],
                     report.nash_flows[i],
                     report.optimum_flows[i],
                     report.leader_flows[i],
                     report.induced_flows[i]))
    print(format_table(("link", "nash flow", "optimum flow", "leader flow",
                        "induced flow"), rows,
                       title="Parallel-link instance analysis"))
    print(f"C(N) = {report.nash_cost:.6f}  C(O) = {report.optimum_cost:.6f}  "
          f"price of anarchy = {report.price_of_anarchy:.6f}")
    if report.beta is not None:
        print(f"price of optimum beta = {report.beta:.6f}  "
              f"induced cost = {report.induced_cost:.6f}")
    else:
        print(f"strategy {report.strategy} (alpha = {report.alpha:.6f})  "
              f"induced cost = {report.induced_cost:.6f}  "
              f"ratio = {report.cost_ratio:.6f}")


def _print_network_report(instance, report: SolveReport) -> None:
    rows = []
    for i, edge in enumerate(instance.network.edges):
        rows.append((f"{edge.tail}->{edge.head}",
                     report.nash_flows[i],
                     report.optimum_flows[i],
                     report.leader_flows[i]))
    print(format_table(("edge", "nash flow", "optimum flow", "leader flow"), rows,
                       title="Network instance analysis"))
    print(f"C(N) = {report.nash_cost:.6f}  C(O) = {report.optimum_cost:.6f}  "
          f"price of anarchy = {report.price_of_anarchy:.6f}")
    if report.beta is not None:
        print(f"price of optimum beta = {report.beta:.6f}  "
              f"induced cost = {report.induced_cost:.6f}")
    else:
        print(f"strategy {report.strategy} (alpha = {report.alpha:.6f})  "
              f"induced cost = {report.induced_cost:.6f}  "
              f"ratio = {report.cost_ratio:.6f}")


def _command_analyze(args: argparse.Namespace) -> int:
    instance = _load(args)
    config = SolveConfig() if args.alpha is None else SolveConfig(alpha=args.alpha)
    report = solve(instance, args.strategy, config=config)
    if args.json:
        print(report.to_json(indent=2))
        return 0
    if report.instance_kind == PARALLEL:
        _print_parallel_report(instance, report)
    else:
        _print_network_report(instance, report)
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    instance = _load(args)
    config = SolveConfig() if args.alpha is None else SolveConfig(alpha=args.alpha)
    if not args.elastic:
        report = solve(instance, args.strategy, config=config)
        if args.json:
            print(report.to_json(indent=2))
        elif report.instance_kind == PARALLEL:
            _print_parallel_report(instance, report)
        else:
            _print_network_report(instance, report)
        return 0
    from repro.scenarios import (
        ExponentialDemandCurve,
        LinearDemandCurve,
        solve_elastic,
    )

    if args.curve == "linear":
        curve = LinearDemandCurve(intercept=args.intercept, slope=args.slope)
    else:
        curve = ExponentialDemandCurve(intercept=args.intercept,
                                       decay=args.decay)
    elastic = solve_elastic(instance, curve, args.strategy, config=config,
                            store=_open_store(args))
    if args.json:
        print(elastic.to_json(indent=2))
        return 0
    if elastic.report.instance_kind == PARALLEL:
        _print_parallel_report(instance, elastic.report)
    else:
        _print_network_report(instance, elastic.report)
    print(f"elastic demand {curve!r}: realised rate = "
          f"{elastic.realised_rate:.6f}  market price = "
          f"{elastic.price:.6f}  consumer surplus = "
          f"{elastic.consumer_surplus:.6f}  "
          f"({elastic.iterations} bisection steps)")
    return 0


def _build_trace(args: argparse.Namespace):
    from repro.scenarios import DemandTrace

    if args.csv is not None:
        return DemandTrace.from_csv(args.csv)
    params: Dict[str, object] = {}
    if args.process in ("diurnal", "random_walk"):
        params = {"num_steps": args.steps, "base": args.base}
        if args.process == "diurnal":
            params["amplitude"] = args.amplitude
        else:
            params["step_scale"] = args.amplitude
    elif args.process == "constant":
        params = {"level": args.base, "num_steps": args.steps}
    elif args.process in ("piecewise", "literal"):
        if not args.levels:
            raise ReproError(
                f"the {args.process!r} process needs --levels")
        params = {"levels": list(args.levels)}
    return DemandTrace.from_process(args.process, params, seed=args.seed)


def _command_trace_list(args: argparse.Namespace) -> int:
    from repro.scenarios import TRACE_PROCESSES, available_trace_processes

    rows = []
    for name in available_trace_processes():
        entry = TRACE_PROCESSES.get(name)
        params = ", ".join(sorted(
            entry.schema.get("properties", {}))) or "-"
        rows.append((name, "yes" if entry.seeded else "no", params,
                     entry.description))
    print(format_table(("process", "seeded", "params", "description"), rows,
                       title="Demand-trace processes"))
    return 0


def _command_trace_run(args: argparse.Namespace) -> int:
    from repro.scenarios import replay_trace

    instance = _load(args)
    trace = _build_trace(args)
    report = replay_trace(instance, trace, args.strategy,
                          store=_open_store(args))
    if args.json:
        print(report.to_json(indent=2))
        return 0
    if not args.quiet:
        print(report.to_table())
        print()
    print(report.summary())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    instance = _load(args)
    if resolve_instance_kind(instance) != PARALLEL:
        print("error: the sweep command needs a parallel-link instance",
              file=sys.stderr)
        return 2
    beta = solve(instance, "optop").beta
    rows = []
    for row in alpha_sweep(instance, args.alphas):
        rows.append((row.alpha, row.ratios["llf"], row.ratios["scale"],
                     general_latency_bound(row.alpha),
                     linear_latency_bound(row.alpha),
                     "yes" if row.alpha >= beta else ""))
    print(format_table(("alpha", "LLF ratio", "SCALE ratio", "1/alpha",
                        "4/(3+alpha)", "alpha >= beta"), rows,
                       title=f"Alpha sweep (price of optimum beta = {beta:.6f})"))
    return 0


def _open_store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    store_dir = getattr(args, "store", None)
    return None if store_dir is None else ArtifactStore(store_dir)


def _command_experiments(args: argparse.Namespace) -> int:
    ids: Sequence[str] = args.only or [e for e in experiment_ids()
                                       if e.startswith("E")]
    store = _open_store(args)
    failures: List[str] = []
    for experiment_id in ids:
        record = build_experiment(experiment_id).run(store=store)
        print(record.to_table())
        print()
        if not record.all_claims_hold:
            failures.append(experiment_id)
    if failures:
        print(f"experiments with failing claims: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def _command_study_list(args: argparse.Namespace) -> int:
    rows = [(eid, "experiment", experiment_title(eid))
            for eid in experiment_ids()]
    for name in named_studies():
        spec = get_named_study(name)
        rows.append((name, f"study ({spec.num_cells} cells)",
                     spec.description))
    print(format_table(("name", "kind", "description"), rows,
                       title="Available studies"))
    if args.generators:
        gen_rows = []
        for name in available_generators():
            entry = get_generator(name)
            params = ", ".join(sorted(
                entry.schema.get("properties", {}))) or "-"
            gen_rows.append((name, "yes" if entry.seeded else "no", params,
                             entry.description))
        print()
        print(format_table(("generator", "seeded", "params", "description"),
                           gen_rows, title="Instance generators"))
    return 0


def _print_resume_summary(label: str, counters) -> None:
    print(f"{label}: {len(counters)} cells | store hits "
          f"{counters.store_hits}, cache hits {counters.cache_hits}, "
          f"solver calls {counters.solver_calls}"
          + (" (fully resumed)" if counters.fully_resumed else ""))


def _command_study_run(args: argparse.Namespace) -> int:
    name = args.name
    store = _open_store(args)
    if name in EXPERIMENTS:
        from repro.api import cache_stats

        plan = build_experiment(name)
        cache_before = cache_stats()
        store_before = store.stats() if store is not None else None
        study = run_study(plan.spec, store=store, max_workers=args.workers)
        record = plan.summarize(study, store)
        # Fold the summariser's dependent solves (brute-force spot checks,
        # follow-up cells) into the printed accounting, so "solver calls"
        # covers everything the experiment executed.
        cache_after = cache_stats()
        study.cache_hits = cache_after["hits"] - cache_before["hits"]
        study.cache_misses = cache_after["misses"] - cache_before["misses"]
        if store is not None and store_before is not None:
            store_now = store.stats()
            study.store_hits = store_now["hits"] - store_before["hits"]
            study.store_misses = (store_now["misses"]
                                  - store_before["misses"])
        if args.csv is not None:
            study.to_csv(args.csv)
        if args.json:
            import json as _json
            payload = study.to_dict()
            payload["record"] = record.to_dict()
            print(_json.dumps(payload, sort_keys=True, indent=2, default=str))
        else:
            print(record.to_table())
            print()
            _print_resume_summary(name, study)
        return 0 if record.all_claims_hold else 1

    spec = get_named_study(name)
    study = run_study(spec, store=store, max_workers=args.workers)
    if args.csv is not None:
        study.to_csv(args.csv)
    if args.json:
        print(study.to_json(indent=2))
    else:
        print(study.to_table())
        print()
        _print_resume_summary(name, study)
    return 0


def _command_bench_suite_list(args: argparse.Namespace) -> int:
    from repro.bench import available_suites, get_suite

    rows = []
    for name in available_suites():
        spec = get_suite(name)
        rows.append((name, f"v{spec.version}", str(spec.num_instances),
                     str(spec.num_cells), ", ".join(spec.strategies),
                     spec.description))
    print(format_table(
        ("suite", "version", "instances", "cells", "strategies",
         "description"),
        rows, title="Available benchmark suites"))
    return 0


def _run_suite_from_args(args: argparse.Namespace):
    from repro.bench import get_suite, run_suite

    spec = get_suite(args.suite)
    store = _open_store(args)
    report = run_suite(spec, store=store, max_workers=args.workers)
    return spec, report


def _command_bench_suite_run(args: argparse.Namespace) -> int:
    from repro.bench import baseline_payload

    spec, report = _run_suite_from_args(args)
    if args.csv is not None:
        report.to_csv(args.csv)
    if args.baseline_out is not None:
        import json as _json
        from pathlib import Path

        path = Path(args.baseline_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(baseline_payload(report), sort_keys=True,
                                    indent=2) + "\n")
        print(f"baseline written to {path}", file=sys.stderr)
    if args.json:
        print(report.to_json())
    else:
        print(report.to_table())
        print()
        print(f"{spec.name} v{spec.version}: {len(report.rows)} rows | "
              f"store hits {report.store_hits}, solver calls "
              f"{report.solver_calls}"
              + (" (fully resumed)" if report.fully_resumed else ""))
    return 0


def _command_bench_suite_verify(args: argparse.Namespace) -> int:
    from repro.bench import verify_suite

    spec, report = _run_suite_from_args(args)
    violations = verify_suite(report, args.baseline)
    if violations:
        for violation in violations:
            print(f"violation: {violation}", file=sys.stderr)
        print(f"{spec.name} v{spec.version}: {len(violations)} violation(s) "
              f"against {args.baseline}", file=sys.stderr)
        return 1
    print(f"{spec.name} v{spec.version}: {len(report.rows)} rows verified "
          f"against {args.baseline}")
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import run_bench

    if args.cluster > 0:
        return _serve_bench_cluster(args)
    store = _open_store(args)
    trace = None
    if args.trace is not None:
        from repro.scenarios import DemandTrace

        trace = DemandTrace.from_process(
            args.trace, {"num_steps": args.trace_steps}, seed=args.seed)
    result = run_bench(
        num_requests=args.requests, num_distinct=args.distinct,
        num_links=args.num_links, seed=args.seed, passes=args.passes,
        strategy=args.strategy, store=store, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        max_workers=args.workers, trace=trace)
    consistent = all(p.stats.consistent for p in result.passes)
    if args.json:
        import json as _json
        print(_json.dumps(result.to_dict(), sort_keys=True, indent=2))
        return 0 if consistent else 1
    rows = []
    for record in result.passes:
        stats = record.stats
        rows.append((record.index + 1, record.requests,
                     f"{record.seconds:.3f}",
                     f"{record.requests_per_second:.0f}",
                     f"{record.tier1_hit_rate:.1f}%",
                     f"{record.tier2_hit_rate:.1f}%",
                     stats.coalesced, stats.enqueued, stats.batches,
                     "yes" if stats.consistent else "NO"))
    print(format_table(
        ("pass", "requests", "seconds", "req/s", "tier-1 hits",
         "tier-2 hits", "coalesced", "solved", "batches", "consistent"),
        rows, title="SolveService synthetic benchmark"))
    final = result.final_stats
    hit_rate = (100.0 * final.hits / final.requests
                if final.requests else 0.0)
    print(f"totals: {final.requests} requests | {final.hits} cache hits "
          f"({hit_rate:.1f}%), {final.coalesced} coalesced, "
          f"{final.enqueued} solver requests in {final.batches} batches | "
          f"rejected {final.rejected}, batch failures "
          f"{final.batch_failures}, queue peak {final.queue_peak}")
    print(f"resilience: {final.timeouts} deadline expiries, "
          f"{final.shutdown_timeouts} shutdown timeouts, "
          f"{final.pool_restarts} pool restarts, "
          f"{final.worker_restarts} dispatcher restarts")
    return 0 if consistent else 1


def _serve_bench_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import run_cluster_bench

    if args.trace is not None:
        print("error: --trace is not supported with --cluster",
              file=sys.stderr)
        return 2
    result = run_cluster_bench(
        num_requests=args.requests, num_distinct=args.distinct,
        num_links=args.num_links, seed=args.seed, passes=args.passes,
        strategy=args.strategy, n_workers=args.cluster,
        store_dir=args.store, max_inflight=args.max_inflight,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue)
    if args.json:
        import json as _json
        print(_json.dumps(result.to_dict(), sort_keys=True, indent=2))
        return 0 if result.consistent else 1
    rows = []
    for record in result.passes:
        rows.append((record.index + 1, record.requests,
                     f"{record.seconds:.3f}",
                     f"{record.requests_per_second:.0f}",
                     f"{record.hit_rate:.1f}%", record.solver_calls,
                     "yes" if record.merged.consistent else "NO"))
    print(format_table(
        ("pass", "requests", "seconds", "req/s", "hit rate",
         "solver calls", "consistent"),
        rows,
        title=f"Cluster benchmark ({result.n_workers} workers)"))
    last = result.passes[-1]
    shares = ", ".join(f"{node}={count}"
                       for node, count in sorted(last.forwarded.items()))
    gateway = result.gateway
    print(f"gateway: {gateway.get('requests', 0)} requests, "
          f"{gateway.get('reroutes', 0)} reroutes, "
          f"{gateway.get('overload_retries', 0)} overload retries | "
          f"last-pass shard shares: {shares}")
    resilience = result.resilience
    print(f"resilience: {resilience.get('gateway_timeouts', 0)} deadline "
          f"expiries, {resilience.get('breaker_opens', 0)} breaker opens, "
          f"{resilience.get('worker_respawns', 0)} respawns, "
          f"{resilience.get('quarantined', 0)} quarantined artifacts")
    return 0 if result.consistent else 1


def _command_serve_cluster(args: argparse.Namespace) -> int:
    import time as _time

    from repro.cluster import start_cluster

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    cluster = start_cluster(
        n_workers=args.workers, store_dir=args.store, host=args.host,
        max_inflight=args.max_inflight, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        http=True, http_port=args.port, obs=args.obs)
    try:
        routes = "POST /solve, GET /stats, GET /metrics, GET /trace, " \
                 "GET /health, POST /drain"
        print(f"gateway listening on http://{args.host}:{cluster.http_port}"
              f" ({routes})", flush=True)
        for index, worker in enumerate(cluster.workers):
            print(f"worker[{index}] pid={worker.process.pid} "
                  f"http://{worker.host}:{worker.port} "
                  f"store={cluster.store_dir}", flush=True)
        if args.duration is not None:
            _time.sleep(args.duration)
        else:
            print("serving until Ctrl-C", flush=True)
            while True:
                _time.sleep(3600.0)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        cluster.shutdown()
    return 0


def _command_chaos_list(args: argparse.Namespace) -> int:
    from repro.faults import named_plans

    rows = []
    for name, plan in sorted(named_plans().items()):
        rows.append((name, f"0x{plan.seed:X}", len(plan),
                     ", ".join(plan.kinds())))
    print(format_table(("plan", "seed", "specs", "fault kinds"), rows,
                       title="Built-in fault plans"))
    return 0


def _command_chaos_run(args: argparse.Namespace) -> int:
    from repro.faults import run_chaos

    report = run_chaos(
        args.plan, steps=args.steps, n_workers=args.workers,
        num_distinct=args.distinct, seed=args.seed,
        strategy=args.strategy, deadline_ms=args.deadline_ms,
        store_dir=args.store, max_respawns=args.max_respawns)
    failures: List[str] = list(report.violations)
    if not report.passed and not failures:
        failures.append(
            f"only {report.ok + report.failed} of {report.steps} "
            f"requests resolved")
    if args.expect_respawn:
        if report.respawns < 1:
            failures.append("expected >= 1 supervised worker respawn; "
                            "got none")
        if report.quarantined < 1:
            failures.append("expected >= 1 quarantined artifact; got none")
    if args.json:
        import json as _json
        payload = report.to_dict()
        payload["failures"] = failures
        print(_json.dumps(payload, sort_keys=True, indent=2))
        return 0 if not failures else 1
    print(report.summary())
    if failures and report.passed:
        print("chaos expectations not met: " + "; ".join(failures),
              file=sys.stderr)
    return 0 if not failures else 1


def _obs_fetch(base_url: str, path: str) -> str:
    from urllib.error import URLError
    from urllib.request import urlopen

    url = base_url.rstrip("/") + path
    try:
        with urlopen(url, timeout=30.0) as response:  # noqa: S310 - user URL
            return response.read().decode("utf-8")
    except (URLError, ConnectionError, OSError) as exc:
        raise ReproError(f"cannot reach {url}: {exc}") from exc


def _command_obs_metrics(args: argparse.Namespace) -> int:
    if args.json:
        import json as _json
        payload = _json.loads(_obs_fetch(args.url, "/metrics?format=json"))
        print(_json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(_obs_fetch(args.url, "/metrics"), end="")
    return 0


def _obs_fetch_trace(args: argparse.Namespace) -> List[Dict[str, object]]:
    import json as _json

    path = "/trace" if args.last is None else f"/trace?last={args.last}"
    return _json.loads(_obs_fetch(args.url, path)).get("traceEvents", [])


def _command_obs_trace(args: argparse.Namespace) -> int:
    events = _obs_fetch_trace(args)
    if args.json:
        import json as _json
        print(_json.dumps({"traceEvents": events}, sort_keys=True, indent=2))
        return 0
    rows = []
    for event in events:
        event_args = dict(event.get("args") or {})
        trace_id = str(event_args.pop("trace_id", ""))
        event_args.pop("parent_id", None)
        notes = ", ".join(f"{key}={value}" for key, value
                          in sorted(event_args.items()))
        rows.append((trace_id, event.get("name", ""), event.get("pid", ""),
                     f"{float(event.get('dur', 0.0)) / 1e3:.3f}", notes))
    print(format_table(
        ("trace", "span", "service", "ms", "annotations"), rows,
        title=f"Trace ring of {args.url} ({len(rows)} spans)"))
    return 0


def _command_obs_top(args: argparse.Namespace) -> int:
    totals: Dict[str, List[float]] = {}
    for event in _obs_fetch_trace(args):
        name = str(event.get("name", ""))
        strategy = (event.get("args") or {}).get("strategy")
        key = f"{name}[{strategy}]" if strategy else name
        entry = totals.setdefault(key, [0.0, 0.0])
        entry[0] += float(event.get("dur", 0.0)) / 1e6
        entry[1] += 1
    ranked = sorted(totals.items(), key=lambda item: -item[1][0])
    rows = [(key, int(count), f"{seconds * 1e3:.3f}",
             f"{seconds / count * 1e3:.3f}")
            for key, (seconds, count) in ranked[:max(0, args.limit)]]
    print(format_table(
        ("span", "count", "total ms", "mean ms"), rows,
        title=f"Hottest spans of {args.url} by cumulative time"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        handler = {"bench": _command_serve_bench,
                   "cluster": _command_serve_cluster}[args.serve_command]
    elif args.command == "bench":
        handler = {"list": _command_bench_suite_list,
                   "run": _command_bench_suite_run,
                   "verify": _command_bench_suite_verify}[args.suite_command]
    elif args.command == "chaos":
        handler = {"list": _command_chaos_list,
                   "run": _command_chaos_run}[args.chaos_command]
    elif args.command == "obs":
        handler = {"metrics": _command_obs_metrics,
                   "trace": _command_obs_trace,
                   "top": _command_obs_top}[args.obs_command]
    elif args.command == "trace":
        trace_handlers = {
            "list": _command_trace_list,
            "run": _command_trace_run,
        }
        handler = trace_handlers[args.trace_command]
    elif args.command == "study":
        study_handlers = {
            "list": _command_study_list,
            "run": _command_study_run,
            "resume": _command_study_run,
        }
        handler = study_handlers[args.study_command]
    else:
        handlers = {
            "analyze": _command_analyze,
            "solve": _command_solve,
            "sweep": _command_sweep,
            "experiments": _command_experiments,
        }
        handler = handlers[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
