"""JSON (de)serialisation of latencies and instances.

The command-line interface and downstream users need a way to describe
instances in plain files.  The format is deliberately simple:

.. code-block:: json

    {
      "type": "parallel",
      "demand": 1.0,
      "links": [
        {"type": "linear", "slope": 1.0, "intercept": 0.0},
        {"type": "constant", "value": 1.0}
      ]
    }

    {
      "type": "network",
      "edges": [
        {"tail": "s", "head": "v", "latency": {"type": "linear", "slope": 1.0}},
        {"tail": "v", "head": "t", "latency": {"type": "constant", "value": 1.0}}
      ],
      "commodities": [{"source": "s", "sink": "t", "demand": 1.0}]
    }

Every canonical instance of :mod:`repro.instances` round-trips through this
format (see the tests), so files produced by :func:`instance_to_dict` can be
re-loaded with :func:`instance_from_dict`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import ModelError
from repro.latency import (
    BPRLatency,
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
)
from repro.network import Commodity, Network, NetworkInstance, ParallelLinkInstance

__all__ = [
    "latency_to_dict",
    "latency_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "canonical_instance_json",
    "instance_digest",
    "save_instance",
    "load_instance",
]

AnyInstance = Union[ParallelLinkInstance, NetworkInstance]


# --------------------------------------------------------------------------- #
# Latency functions
# --------------------------------------------------------------------------- #
def latency_to_dict(latency: LatencyFunction) -> Dict[str, Any]:
    """Serialise a latency function to a plain dictionary."""
    if isinstance(latency, LinearLatency):
        return {"type": "linear", "slope": latency.slope,
                "intercept": latency.intercept}
    if isinstance(latency, ConstantLatency):
        return {"type": "constant", "value": latency.constant}
    if isinstance(latency, MonomialLatency):
        return {"type": "monomial", "coefficient": latency.coefficient,
                "degree": latency.degree, "constant": latency.constant}
    if isinstance(latency, PolynomialLatency):
        return {"type": "polynomial", "coefficients": list(latency.coefficients)}
    if isinstance(latency, BPRLatency):
        return {"type": "bpr", "free_flow_time": latency.free_flow_time,
                "capacity": latency.capacity, "alpha": latency.alpha,
                "beta": latency.beta}
    if isinstance(latency, MM1Latency):
        return {"type": "mm1", "capacity": latency.capacity}
    raise ModelError(
        f"cannot serialise latency of type {type(latency).__name__}")


def latency_from_dict(data: Dict[str, Any]) -> LatencyFunction:
    """Deserialise a latency function from a dictionary."""
    if not isinstance(data, dict) or "type" not in data:
        raise ModelError(f"invalid latency specification: {data!r}")
    kind = data["type"]
    if kind == "linear":
        return LinearLatency(float(data.get("slope", 0.0)),
                             float(data.get("intercept", 0.0)))
    if kind == "constant":
        return ConstantLatency(float(data["value"]))
    if kind == "monomial":
        return MonomialLatency(float(data["coefficient"]), float(data["degree"]),
                               float(data.get("constant", 0.0)))
    if kind == "polynomial":
        return PolynomialLatency([float(c) for c in data["coefficients"]])
    if kind == "bpr":
        return BPRLatency(float(data["free_flow_time"]), float(data["capacity"]),
                          float(data.get("alpha", 0.15)),
                          float(data.get("beta", 4.0)))
    if kind == "mm1":
        return MM1Latency(float(data["capacity"]))
    raise ModelError(f"unknown latency type {kind!r}")


# --------------------------------------------------------------------------- #
# Instances
# --------------------------------------------------------------------------- #
def instance_to_dict(instance: AnyInstance) -> Dict[str, Any]:
    """Serialise a parallel-link or network instance to a dictionary.

    Dispatch is structural (via
    :func:`repro.api.dispatch.resolve_instance_kind`), so subclasses and
    duck-typed wrappers of the two instance families serialise as well.
    """
    from repro.api.dispatch import resolve_instance_kind

    try:
        kind = resolve_instance_kind(instance)
    except ModelError:
        raise ModelError(
            f"cannot serialise instance of type {type(instance).__name__}")
    if kind == "parallel":
        return {
            "type": "parallel",
            "demand": instance.demand,
            "names": list(instance.names),
            "links": [latency_to_dict(lat) for lat in instance.latencies],
        }
    return {
        "type": "network",
        "edges": [
            {"tail": edge.tail, "head": edge.head,
             "latency": latency_to_dict(edge.latency)}
            for edge in instance.network.edges
        ],
        "commodities": [
            {"source": com.source, "sink": com.sink, "demand": com.demand}
            for com in instance.commodities
        ],
    }


def _node_name(name: Any) -> Any:
    """Hashable node name: JSON arrays come back as lists, rebuild tuples.

    Tuple node names (e.g. the ``(row, col)`` nodes of grid networks)
    serialise to JSON arrays; converting them back keeps the canonical JSON
    — and therefore :func:`instance_digest` — stable across a round trip.
    """
    if isinstance(name, list):
        return tuple(_node_name(item) for item in name)
    return name


def instance_from_dict(data: Dict[str, Any]) -> AnyInstance:
    """Deserialise an instance description produced by :func:`instance_to_dict`."""
    if not isinstance(data, dict) or "type" not in data:
        raise ModelError(f"invalid instance specification: {data!r}")
    kind = data["type"]
    if kind == "parallel":
        links = [latency_from_dict(spec) for spec in data.get("links", [])]
        names = data.get("names")
        return ParallelLinkInstance(links, float(data["demand"]), names=names)
    if kind == "network":
        network = Network()
        for edge_spec in data.get("edges", []):
            network.add_edge(_node_name(edge_spec["tail"]),
                             _node_name(edge_spec["head"]),
                             latency_from_dict(edge_spec["latency"]))
        commodities = [Commodity(_node_name(spec["source"]),
                                 _node_name(spec["sink"]),
                                 float(spec["demand"]))
                       for spec in data.get("commodities", [])]
        return NetworkInstance(network, commodities)
    raise ModelError(f"unknown instance type {kind!r}")


def canonical_instance_json(instance: AnyInstance) -> str:
    """Deterministic JSON rendering of an instance (sorted keys, no spaces).

    Two structurally equal instances produce byte-identical strings, which is
    what makes :func:`instance_digest` usable as a cache key.
    """
    return json.dumps(instance_to_dict(instance), sort_keys=True,
                      separators=(",", ":"))


def instance_digest(instance: AnyInstance) -> str:
    """SHA-256 hex digest of the canonical instance JSON.

    Used by :mod:`repro.api` to key its result cache; raises
    :class:`~repro.exceptions.ModelError` for instances that cannot be
    serialised (those are simply not cacheable).
    """
    return hashlib.sha256(
        canonical_instance_json(instance).encode("utf-8")).hexdigest()


def save_instance(instance: AnyInstance, path: Union[str, Path]) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2) + "\n",
                          encoding="utf-8")


def load_instance(path: Union[str, Path]) -> AnyInstance:
    """Read an instance from a JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON in {path}: {exc}") from exc
    return instance_from_dict(data)
