"""Numeric utilities shared across the library.

The helpers here are intentionally small and dependency-free (NumPy only):
robust scalar root finding (:func:`bisect_root`), scalar minimisation of
unimodal functions (:func:`golden_section_minimize`), tolerance-aware float
comparisons, and simple ASCII table rendering used by the experiment harness.
"""

from repro.utils.numeric import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    close,
    leq,
    geq,
    positive_part,
    relative_gap,
)
from repro.utils.rootfind import bisect_root, expand_upper_bracket
from repro.utils.optimize import golden_section_minimize, grid_refine_minimize
from repro.utils.tables import format_table
from repro.utils.vectorized import (
    expand_upper_brackets,
    piecewise_linear_level,
    vectorized_bisect,
)

__all__ = [
    "DEFAULT_ATOL",
    "DEFAULT_RTOL",
    "close",
    "leq",
    "geq",
    "positive_part",
    "relative_gap",
    "bisect_root",
    "expand_upper_bracket",
    "golden_section_minimize",
    "grid_refine_minimize",
    "format_table",
    "piecewise_linear_level",
    "vectorized_bisect",
    "expand_upper_brackets",
]
