"""Tolerance-aware scalar comparisons used throughout the library.

Equilibrium computations are numerical, so every comparison of flows, costs
and latencies must be made up to a tolerance.  Centralising the defaults here
keeps the algorithms (OpTop, MOP, frozen-link predicates) consistent with the
solvers that produce their inputs.
"""

from __future__ import annotations

import math

import numpy as np

#: Default absolute tolerance for flow / latency comparisons.
DEFAULT_ATOL: float = 1e-9

#: Default relative tolerance for cost comparisons.
DEFAULT_RTOL: float = 1e-7


def close(a: float, b: float, *, atol: float = DEFAULT_ATOL,
          rtol: float = DEFAULT_RTOL) -> bool:
    """Return ``True`` when ``a`` and ``b`` are equal up to tolerances.

    Combines absolute and relative criteria, mirroring :func:`math.isclose`
    but with library-wide defaults.
    """
    return math.isclose(a, b, rel_tol=rtol, abs_tol=atol)


def leq(a: float, b: float, *, atol: float = DEFAULT_ATOL) -> bool:
    """Tolerant ``a <= b``."""
    return a <= b + atol


def geq(a: float, b: float, *, atol: float = DEFAULT_ATOL) -> bool:
    """Tolerant ``a >= b``."""
    return a >= b - atol


def positive_part(x: np.ndarray | float) -> np.ndarray | float:
    """Element-wise ``max(x, 0)`` that works for scalars and arrays."""
    if np.isscalar(x):
        return x if x > 0.0 else 0.0
    return np.maximum(np.asarray(x, dtype=float), 0.0)


def relative_gap(value: float, reference: float, *, floor: float = 1e-30) -> float:
    """Relative difference ``|value - reference| / max(|reference|, floor)``.

    Used to express convergence gaps and paper-vs-measured deviations in a
    scale-free way.
    """
    denom = max(abs(reference), floor)
    return abs(value - reference) / denom
