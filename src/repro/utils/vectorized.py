"""Array-level numeric kernels backing the vectorized solver layer.

These helpers are the NumPy counterparts of :mod:`repro.utils.rootfind`: the
same monotone-root problems, solved for *every component of an array at once*
instead of one scalar at a time.  They carry the vectorized water-filling
solver (:func:`repro.equilibrium.parallel.water_fill`) and the batched latency
inverses of :class:`repro.latency.batch.LatencyBatch`.

* :func:`piecewise_linear_level` / :func:`piecewise_linear_levels` — the exact
  O(m log m) sorted-breakpoint solve for the common level of an all-linear
  water-filling problem (no bisection at all), for one demand or a batch of
  demands over the same links;
* :func:`sorted_breakpoint_level` / :func:`sorted_breakpoint_levels` — the
  generic sorted-breakpoint *level engine*: the same segment-location idea for
  any monotone "total filled flow at level L" function built from closed-form
  family inverses, finished with a few safeguarded Newton steps inside the
  active segment instead of 40+ full-array bisection passes;
* :func:`vectorized_bisect` — guarded bisection on arrays of brackets, one
  array op per step for all components simultaneously;
* :func:`expand_upper_brackets` — geometric bracket expansion, masked so that
  already-bracketed components stop evaluating.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.exceptions import ConvergenceError, ModelError

__all__ = [
    "piecewise_linear_level",
    "piecewise_linear_levels",
    "sorted_breakpoint_level",
    "sorted_breakpoint_levels",
    "vectorized_bisect",
    "expand_upper_brackets",
]


def _linear_prefix(weights: np.ndarray, breakpoints: np.ndarray):
    """Sorted breakpoints with the prefix sums of the affine level closed form."""
    weights = np.asarray(weights, dtype=float)
    breakpoints = np.asarray(breakpoints, dtype=float)
    if weights.shape != breakpoints.shape or weights.ndim != 1 or weights.size == 0:
        raise ModelError(
            "piecewise_linear_level needs matching 1-d weights/breakpoints")
    if np.any(weights <= 0.0):
        raise ModelError("piecewise_linear_level weights must be > 0")
    order = np.argsort(breakpoints, kind="stable")
    b = breakpoints[order]
    w = weights[order]
    cum_w = np.cumsum(w)
    cum_wb = np.cumsum(w * b)
    # Total filled flow evaluated at each breakpoint (0 at the smallest one).
    # Note filled_at_breaks[j] uses the prefix sums *including* link j, whose
    # own contribution at its breakpoint is zero, so the formula is exact.
    filled_at_breaks = cum_w * b - cum_wb
    return cum_w, cum_wb, filled_at_breaks


def piecewise_linear_level(weights: np.ndarray, breakpoints: np.ndarray,
                           demand: float) -> float:
    """Exact level ``L`` with ``sum_i w_i * max(0, L - b_i) = demand``.

    This is the closed form of water filling over links whose level functions
    are affine: link ``i`` absorbs ``w_i * (L - b_i)`` once the common level
    ``L`` exceeds its breakpoint ``b_i`` (for a latency ``a x + b`` the weight
    is ``1/a`` when equalising latencies and ``1/(2a)`` when equalising
    marginal costs).  Sorting the breakpoints makes the total filled flow a
    piecewise-linear increasing function of ``L``; a prefix-sum scan plus one
    ``searchsorted`` finds the segment containing ``demand`` exactly — no
    bisection, no per-link Python calls.

    ``weights`` must be positive and ``demand`` non-negative.
    """
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    cum_w, cum_wb, filled_at_breaks = _linear_prefix(weights, breakpoints)
    k = int(np.searchsorted(filled_at_breaks, demand, side="right")) - 1
    k = max(k, 0)
    return float((demand + cum_wb[k]) / cum_w[k])


def piecewise_linear_levels(weights: np.ndarray, breakpoints: np.ndarray,
                            demands: np.ndarray) -> np.ndarray:
    """Vectorized :func:`piecewise_linear_level` over a batch of demands.

    Solves ``sum_i w_i * max(0, L_j - b_i) = demand_j`` for every entry of
    ``demands`` at once: the sort and prefix sums are shared across the batch,
    so ``K`` demands over ``m`` links cost O(m log m + K log m) total instead
    of ``K`` independent O(m log m) solves.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1:
        raise ModelError("piecewise_linear_levels needs a 1-d demand array")
    if np.any(demands < 0.0):
        raise ModelError("demands must be >= 0")
    cum_w, cum_wb, filled_at_breaks = _linear_prefix(weights, breakpoints)
    k = np.searchsorted(filled_at_breaks, demands, side="right") - 1
    np.maximum(k, 0, out=k)
    return (demands + cum_wb[k]) / cum_w[k]


def _validated_breakpoints(breakpoints: np.ndarray) -> np.ndarray:
    bp = np.unique(np.asarray(breakpoints, dtype=float))
    if bp.size == 0:
        raise ModelError("the breakpoint engine needs at least one breakpoint")
    if not np.all(np.isfinite(bp)):
        raise ModelError("activation breakpoints must be finite")
    return bp


def sorted_breakpoint_level(breakpoints: np.ndarray, demand: float,
                            flow_grid: Callable[[np.ndarray], np.ndarray], *,
                            grid_flows: Optional[np.ndarray] = None,
                            extra: Optional[Callable[[float], float]] = None,
                            dflow: Optional[Callable[[float], float]] = None,
                            flow_dflow: Optional[
                                Callable[[float], Tuple[float, float]]] = None,
                            tol: float = 1e-12, max_expansions: int = 200,
                            max_iter: int = 200) -> float:
    """The level ``L`` with ``flow_grid(L) + extra(L) = demand``.

    The generic sorted-breakpoint water-filling engine.  ``breakpoints`` are
    the free-flow activation levels of the links (duplicates are fine — they
    are deduplicated here); ``flow_grid(levels)`` maps an array of candidate
    levels to the total closed-form filled flow at each of them, and must be
    non-decreasing.  ``extra`` optionally adds the (scalar, typically
    bisected) contribution of links without a closed-form inverse; ``dflow``
    optionally supplies ``d(total flow)/dL`` at a scalar level, enabling
    safeguarded Newton finishing inside the active segment.  ``flow_dflow``,
    when given, replaces both per-iteration calls with one fused evaluation
    returning ``(total flow including extra, total dflow)`` — the cheapest
    option when the caller can share intermediates between the two.

    The solve is: evaluate the total flow at every breakpoint once (one
    vectorized call), locate the segment containing ``demand`` with a single
    ``searchsorted`` (or an index bisection when ``extra`` makes grid values
    non-precomputable), then run safeguarded Newton — each step either a
    Newton update (when it stays inside the bracket) or a bisection fallback —
    until the bracket width drops below ``tol * scale``, the same stopping
    rule as :func:`repro.utils.rootfind.bisect_root`.

    The breakpoint grid is demand-independent, so repeated solves over the
    same links should precompute ``grid_flows = flow_grid(unique_breakpoints)``
    once and pass it in — then ``breakpoints`` must already be sorted and
    unique, and the per-solve cost drops to one ``searchsorted`` plus a few
    O(m) Newton evaluations.

    Raises :class:`ConvergenceError` when no finite level absorbs ``demand``
    (e.g. M/M/1 links saturating below it) or when the flow evaluates to NaN.
    """
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    if grid_flows is None:
        bp = _validated_breakpoints(breakpoints)
        grid = np.asarray(flow_grid(bp), dtype=float)
    else:
        bp = np.asarray(breakpoints, dtype=float)
        grid = np.asarray(grid_flows, dtype=float)
        if bp.shape != grid.shape or bp.ndim != 1 or bp.size == 0:
            raise ModelError(
                "grid_flows must match the sorted unique breakpoints")

    def total(level: float) -> float:
        value = float(np.asarray(flow_grid(np.array([level])))[0])
        if extra is not None:
            value += float(extra(level))
        return value
    # Locate the active segment: the largest k with total(bp[k]) <= demand.
    if extra is None:
        k = max(int(np.searchsorted(grid, demand, side="right")) - 1, 0)
        g_lo = float(grid[k]) - demand
    else:
        lo_i, hi_i = 0, int(bp.size) - 1
        if total(float(bp[lo_i])) > demand:
            k = 0
        elif hi_i == lo_i or total(float(bp[hi_i])) <= demand:
            k = hi_i
        else:
            while hi_i - lo_i > 1:
                mid = (lo_i + hi_i) // 2
                if total(float(bp[mid])) <= demand:
                    lo_i = mid
                else:
                    hi_i = mid
            k = lo_i
        g_lo = total(float(bp[k])) - demand
    lo = float(bp[k])
    if g_lo >= 0.0:
        # Only possible through rounding at the smallest breakpoint: the
        # filled flow there is already (numerically) the demand.
        return lo

    g_hi = None
    if k + 1 < bp.size:
        hi = float(bp[k + 1])
        if extra is None:
            g_hi = float(grid[k + 1]) - demand
    else:
        # Above the top breakpoint: geometric expansion, exactly like the
        # scalar expand_upper_bracket used by the bisection path.
        hi = lo + max(1.0, abs(lo))
        for _ in range(max_expansions):
            g_hi = total(hi) - demand
            if g_hi >= 0.0:
                break
            hi = lo + (hi - lo) * 2.0
        else:
            raise ConvergenceError(
                f"could not bracket the water-filling level after "
                f"{max_expansions} expansions", iterations=max_expansions)

    scale = max(1.0, abs(lo), abs(hi))
    # Secant start: both endpoint gaps are already known (from the cached
    # grid or the expansion), so the first iterate is free and usually lands
    # very close to the root.
    x = 0.5 * (lo + hi)
    if g_hi is not None and math.isfinite(g_hi) and g_hi > g_lo:
        secant = lo - g_lo * (hi - lo) / (g_hi - g_lo)
        if lo < secant < hi:
            x = secant
    for _ in range(max_iter):
        if flow_dflow is not None:
            flow, d = flow_dflow(x)
            g = float(flow) - demand
            d = float(d)
        else:
            g = total(x) - demand
            d = float(dflow(x)) if dflow is not None else math.nan
        if math.isnan(g):
            raise ConvergenceError(
                "water-filling flow evaluated to NaN during the level solve")
        if g == 0.0:
            return x
        if g < 0.0:
            lo = x
        else:
            hi = x
        if hi - lo <= tol * scale:
            return 0.5 * (lo + hi)
        step = None
        if math.isfinite(d) and d > 0.0:
            step = -g / d
        if step is not None and lo < x + step < hi:
            x = x + step
            if abs(step) <= 0.5 * tol * scale:
                return x
        else:
            x = 0.5 * (lo + hi)
    return 0.5 * (lo + hi)


def sorted_breakpoint_levels(breakpoints: np.ndarray, demands: np.ndarray,
                             flow_grid: Callable[[np.ndarray], np.ndarray],
                             dflow_grid: Callable[[np.ndarray], np.ndarray], *,
                             grid_flows: Optional[np.ndarray] = None,
                             flow_dflow_grid: Optional[Callable[
                                 [np.ndarray],
                                 Tuple[np.ndarray, np.ndarray]]] = None,
                             tol: float = 1e-12, max_expansions: int = 200,
                             max_iter: int = 200) -> np.ndarray:
    """Batched :func:`sorted_breakpoint_level` over many demands at once.

    Solves ``flow_grid(L_j) = demand_j`` for every entry of ``demands`` over
    one shared breakpoint grid: the grid flows are evaluated once, one
    ``searchsorted`` locates every active segment, and all the safeguarded
    Newton iterations run vectorized across the batch (only rows that have
    not converged are re-evaluated).  Requires closed forms throughout —
    callers with numeric (``extra``) links fall back to the scalar engine.
    As with :func:`sorted_breakpoint_level`, pass a precomputed
    ``grid_flows`` (with sorted unique ``breakpoints``) to skip the grid
    evaluation on repeated solves, and ``flow_dflow_grid`` — one fused call
    returning ``(flows, dflows)`` — to halve the per-iteration family
    sweeps.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1:
        raise ModelError("sorted_breakpoint_levels needs a 1-d demand array")
    if np.any(demands < 0.0):
        raise ModelError("demands must be >= 0")
    if grid_flows is None:
        bp = _validated_breakpoints(breakpoints)
        grid = None
    else:
        bp = np.asarray(breakpoints, dtype=float)
        grid = np.asarray(grid_flows, dtype=float)
        if bp.shape != grid.shape or bp.ndim != 1 or bp.size == 0:
            raise ModelError(
                "grid_flows must match the sorted unique breakpoints")
    if demands.size == 0:
        return np.empty(0, dtype=float)
    if grid is None:
        grid = np.asarray(flow_grid(bp), dtype=float)
    k = np.searchsorted(grid, demands, side="right") - 1
    np.maximum(k, 0, out=k)
    lo = bp[k].astype(float)
    hi = np.empty_like(lo)
    inner = k + 1 < bp.size
    hi[inner] = bp[np.minimum(k[inner] + 1, bp.size - 1)]
    top = ~inner
    if np.any(top):
        hi[top] = expand_upper_brackets(
            lambda h: np.asarray(flow_grid(h), dtype=float) - demands[top],
            lo[top], initial=1.0, max_expansions=max_expansions)

    scale = np.maximum(1.0, np.maximum(np.abs(lo), np.abs(hi)))
    x = 0.5 * (lo + hi)
    if np.any(inner):
        # Secant start from the two grid endpoints of each active segment.
        g_lo = grid[k] - demands
        g_hi = grid[np.minimum(k + 1, bp.size - 1)] - demands
        with np.errstate(divide="ignore", invalid="ignore"):
            secant = lo - g_lo * (hi - lo) / (g_hi - g_lo)
        use = inner & (g_hi > g_lo) & (secant > lo) & (secant < hi)
        x = np.where(use, secant, x)
    active = np.ones(demands.size, dtype=bool)
    for _ in range(max_iter):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        if flow_dflow_grid is not None:
            flows, d = flow_dflow_grid(x[idx])
            g = np.asarray(flows, dtype=float) - demands[idx]
            d = np.asarray(d, dtype=float)
        else:
            g = np.asarray(flow_grid(x[idx]), dtype=float) - demands[idx]
            d = None
        if np.any(np.isnan(g)):
            raise ConvergenceError(
                "water-filling flow evaluated to NaN during the level solve")
        below = g < 0.0
        lo_i = np.where(below, x[idx], lo[idx])
        hi_i = np.where(below, hi[idx], x[idx])
        lo[idx] = lo_i
        hi[idx] = hi_i
        exact = g == 0.0
        done = exact | (hi_i - lo_i <= tol * scale[idx])
        if d is None:
            d = np.asarray(dflow_grid(x[idx]), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            step = np.where(d > 0.0, -g / d, np.nan)
        nxt = x[idx] + step
        ok = np.isfinite(nxt) & (nxt > lo_i) & (nxt < hi_i)
        small = ok & (np.abs(step) <= 0.5 * tol * scale[idx]) & ~done
        new_x = np.where(ok, nxt, 0.5 * (lo_i + hi_i))
        new_x = np.where(exact, x[idx], new_x)
        x[idx] = new_x
        active[idx] = ~(done | small)
    return x


def vectorized_bisect(func: Callable[[np.ndarray], np.ndarray],
                      lo: np.ndarray, hi: np.ndarray, *,
                      tol: float = 1e-12, max_iter: int = 200) -> np.ndarray:
    """Elementwise root of ``func(x) = 0`` for componentwise non-decreasing ``func``.

    The arrays ``lo``/``hi`` bracket a root in every component
    (``func(lo) <= 0 <= func(hi)`` up to a small slack, as in
    :func:`repro.utils.rootfind.bisect_root`).  Each bisection step evaluates
    ``func`` once on the full midpoint array, so the per-step cost is one
    vectorized call instead of ``m`` scalar ones.

    NaN midpoint values raise :class:`ConvergenceError` immediately: NaN
    compares false against everything, so treating it like an ordinary
    value would silently move ``hi`` down and collapse the bracket onto an
    invalid point (e.g. an M/M/1 latency probed at or beyond capacity).
    ``+inf``, by contrast, is a legitimate "above the root" signal (an
    overflowing polynomial evaluated at a huge trial load) and keeps its
    ordinary comparison semantics.
    """
    lo = np.array(lo, dtype=float, copy=True)
    hi = np.array(hi, dtype=float, copy=True)
    if lo.shape != hi.shape:
        raise ModelError("vectorized_bisect needs matching bracket shapes")
    if lo.size == 0:
        return lo
    scale = np.maximum(np.maximum(np.abs(lo), np.abs(hi)), 1.0)
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        vals = np.asarray(func(mid))
        if np.any(np.isnan(vals)):
            raise ConvergenceError(
                "vectorized_bisect: func(mid) produced NaN; the bracket "
                "would silently collapse onto an invalid domain point")
        below = vals < 0.0
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
        if np.all(hi - lo <= tol * scale):
            break
    return 0.5 * (lo + hi)


def expand_upper_brackets(func: Callable[[np.ndarray], np.ndarray],
                          lo: np.ndarray, *, initial: float = 1.0,
                          factor: float = 2.0,
                          max_expansions: int = 200) -> np.ndarray:
    """Per-component ``hi > lo`` with ``func(hi) >= 0`` by geometric expansion.

    The vectorized analogue of :func:`repro.utils.rootfind.expand_upper_bracket`:
    components that already satisfy ``func(hi) >= 0`` are frozen while the
    rest keep doubling.  Frozen components are *not* re-evaluated — each
    iteration probes them at their known-good ``lo`` instead of their frozen
    ``hi``, so a component already bracketed near its domain boundary (an
    M/M/1 row frozen at its capacity) costs no wasted work and can never
    raise a spurious domain error on behalf of the rows still expanding.
    Raises :class:`ConvergenceError` when some component fails to bracket
    after ``max_expansions`` doublings.
    """
    lo = np.asarray(lo, dtype=float)
    hi = lo + initial
    if lo.size == 0:
        return hi
    pending = np.ones(lo.shape, dtype=bool)
    for _ in range(max_expansions):
        probe = np.where(pending, hi, lo)
        pending &= np.asarray(func(probe)) < 0.0
        if not np.any(pending):
            return hi
        hi = np.where(pending, lo + (hi - lo) * factor, hi)
    raise ConvergenceError(
        f"could not bracket every root after {max_expansions} expansions",
        iterations=max_expansions,
    )
