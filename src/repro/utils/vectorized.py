"""Array-level numeric kernels backing the vectorized solver layer.

These helpers are the NumPy counterparts of :mod:`repro.utils.rootfind`: the
same monotone-root problems, solved for *every component of an array at once*
instead of one scalar at a time.  They carry the vectorized water-filling
solver (:func:`repro.equilibrium.parallel.water_fill`) and the batched latency
inverses of :class:`repro.latency.batch.LatencyBatch`.

* :func:`piecewise_linear_level` — the exact O(m log m) sorted-breakpoint
  solve for the common level of an all-linear water-filling problem (no
  bisection at all);
* :func:`vectorized_bisect` — guarded bisection on arrays of brackets, one
  array op per step for all components simultaneously;
* :func:`expand_upper_brackets` — geometric bracket expansion, masked so that
  already-bracketed components stop evaluating.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConvergenceError, ModelError

__all__ = [
    "piecewise_linear_level",
    "vectorized_bisect",
    "expand_upper_brackets",
]


def piecewise_linear_level(weights: np.ndarray, breakpoints: np.ndarray,
                           demand: float) -> float:
    """Exact level ``L`` with ``sum_i w_i * max(0, L - b_i) = demand``.

    This is the closed form of water filling over links whose level functions
    are affine: link ``i`` absorbs ``w_i * (L - b_i)`` once the common level
    ``L`` exceeds its breakpoint ``b_i`` (for a latency ``a x + b`` the weight
    is ``1/a`` when equalising latencies and ``1/(2a)`` when equalising
    marginal costs).  Sorting the breakpoints makes the total filled flow a
    piecewise-linear increasing function of ``L``; a prefix-sum scan plus one
    ``searchsorted`` finds the segment containing ``demand`` exactly — no
    bisection, no per-link Python calls.

    ``weights`` must be positive and ``demand`` non-negative.
    """
    weights = np.asarray(weights, dtype=float)
    breakpoints = np.asarray(breakpoints, dtype=float)
    if weights.shape != breakpoints.shape or weights.ndim != 1 or weights.size == 0:
        raise ModelError(
            "piecewise_linear_level needs matching 1-d weights/breakpoints")
    if np.any(weights <= 0.0):
        raise ModelError("piecewise_linear_level weights must be > 0")
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    order = np.argsort(breakpoints, kind="stable")
    b = breakpoints[order]
    w = weights[order]
    cum_w = np.cumsum(w)
    cum_wb = np.cumsum(w * b)
    # Total filled flow evaluated at each breakpoint (0 at the smallest one).
    filled_at_breaks = cum_w * b - cum_wb
    # Note filled_at_breaks[j] uses the prefix sums *including* link j, whose
    # own contribution at its breakpoint is zero, so the formula is exact.
    k = int(np.searchsorted(filled_at_breaks, demand, side="right")) - 1
    k = max(k, 0)
    return float((demand + cum_wb[k]) / cum_w[k])


def vectorized_bisect(func: Callable[[np.ndarray], np.ndarray],
                      lo: np.ndarray, hi: np.ndarray, *,
                      tol: float = 1e-12, max_iter: int = 200) -> np.ndarray:
    """Elementwise root of ``func(x) = 0`` for componentwise non-decreasing ``func``.

    The arrays ``lo``/``hi`` bracket a root in every component
    (``func(lo) <= 0 <= func(hi)`` up to a small slack, as in
    :func:`repro.utils.rootfind.bisect_root`).  Each bisection step evaluates
    ``func`` once on the full midpoint array, so the per-step cost is one
    vectorized call instead of ``m`` scalar ones.
    """
    lo = np.array(lo, dtype=float, copy=True)
    hi = np.array(hi, dtype=float, copy=True)
    if lo.shape != hi.shape:
        raise ModelError("vectorized_bisect needs matching bracket shapes")
    if lo.size == 0:
        return lo
    scale = np.maximum(np.maximum(np.abs(lo), np.abs(hi)), 1.0)
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        below = np.asarray(func(mid)) < 0.0
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
        if np.all(hi - lo <= tol * scale):
            break
    return 0.5 * (lo + hi)


def expand_upper_brackets(func: Callable[[np.ndarray], np.ndarray],
                          lo: np.ndarray, *, initial: float = 1.0,
                          factor: float = 2.0,
                          max_expansions: int = 200) -> np.ndarray:
    """Per-component ``hi > lo`` with ``func(hi) >= 0`` by geometric expansion.

    The vectorized analogue of :func:`repro.utils.rootfind.expand_upper_bracket`:
    components that already satisfy ``func(hi) >= 0`` are frozen while the
    rest keep doubling.  Raises :class:`ConvergenceError` when some component
    fails to bracket after ``max_expansions`` doublings.
    """
    lo = np.asarray(lo, dtype=float)
    hi = lo + initial
    if lo.size == 0:
        return hi
    for _ in range(max_expansions):
        pending = np.asarray(func(hi)) < 0.0
        if not np.any(pending):
            return hi
        hi = np.where(pending, lo + (hi - lo) * factor, hi)
    raise ConvergenceError(
        f"could not bracket every root after {max_expansions} expansions",
        iterations=max_expansions,
    )
