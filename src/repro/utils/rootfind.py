"""Robust scalar root finding.

The equilibrium solvers repeatedly need the unique root of a monotone
function (e.g. "total water-filled flow at common latency L minus demand").
:func:`bisect_root` implements guarded bisection that tolerates flat regions
and returns the left-most root of non-decreasing functions, which is the
behaviour the water-filling solvers rely on when constant latencies produce
plateaus.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConvergenceError

__all__ = ["bisect_root", "expand_upper_bracket"]


def expand_upper_bracket(func: Callable[[float], float], lo: float,
                         *, initial: float = 1.0, factor: float = 2.0,
                         max_expansions: int = 200) -> float:
    """Find ``hi > lo`` with ``func(hi) >= 0`` by geometric expansion.

    ``func`` must be non-decreasing.  Raises :class:`ConvergenceError` when no
    sign change is found after ``max_expansions`` doublings.
    """
    hi = lo + initial
    for _ in range(max_expansions):
        if func(hi) >= 0.0:
            return hi
        hi = lo + (hi - lo) * factor
    raise ConvergenceError(
        f"could not bracket a root above {lo!r} after {max_expansions} expansions",
        iterations=max_expansions,
    )


def bisect_root(func: Callable[[float], float], lo: float, hi: float,
                *, tol: float = 1e-12, max_iter: int = 200) -> float:
    """Return ``x`` in ``[lo, hi]`` with ``func(x) ~= 0`` for non-decreasing ``func``.

    Assumes ``func(lo) <= 0 <= func(hi)`` (verified with a small slack).  The
    iteration stops when the bracket width drops below ``tol`` times the scale
    of the bracket, or after ``max_iter`` halvings (which for a 200-iteration
    budget is far below double precision resolution, so it never raises in
    practice).
    """
    flo = func(lo)
    fhi = func(hi)
    if flo > 0.0 and flo < 1e-9:
        return lo
    if flo > 0.0:
        raise ConvergenceError(
            f"bisect_root: func(lo)={flo!r} > 0; root is not bracketed below {lo!r}")
    if fhi < 0.0 and fhi > -1e-9:
        return hi
    if fhi < 0.0:
        raise ConvergenceError(
            f"bisect_root: func(hi)={fhi!r} < 0; root is not bracketed above {hi!r}")

    scale = max(abs(lo), abs(hi), 1.0)
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = func(mid)
        if fmid < 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * scale:
            break
    return 0.5 * (lo + hi)
