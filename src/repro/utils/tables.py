"""Minimal ASCII table rendering for the experiment harness.

The benchmark modules print the same rows the paper's worked examples report
(flows, costs, β values).  Keeping the formatting here avoids pulling in any
plotting or tabulation dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, float_fmt: str = ".6g", title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are formatted with ``float_fmt``; every other cell is ``str()``-ed.
    Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_fmt_cell(cell, float_fmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cells[i].ljust(widths[i]) if i < len(cells) else " " * widths[i]
                  for i in range(len(widths))]
        return "| " + " | ".join(padded) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(render_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(render_row(row))
    lines.append(sep)
    return "\n".join(lines)
