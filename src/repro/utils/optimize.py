"""Scalar minimisation helpers.

Two strategies are provided:

* :func:`golden_section_minimize` — classic golden-section search for unimodal
  objectives (used by the Frank–Wolfe line search, where the restriction of a
  convex objective to a segment is convex, hence unimodal).
* :func:`grid_refine_minimize` — a dense-grid scan followed by golden-section
  refinement around the best bracket.  Used by the Theorem 2.4 solver, whose
  one-dimensional objective is piecewise smooth but not guaranteed unimodal.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

__all__ = ["golden_section_minimize", "grid_refine_minimize"]

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/phi
_INV_PHI2 = (3.0 - math.sqrt(5.0)) / 2.0  # 1/phi^2


def golden_section_minimize(func: Callable[[float], float], lo: float, hi: float,
                            *, tol: float = 1e-10,
                            max_iter: int = 200) -> Tuple[float, float]:
    """Minimise a unimodal ``func`` on ``[lo, hi]``.

    Returns ``(x_min, f(x_min))``.  The search shrinks the bracket by the
    golden ratio each iteration, so ``max_iter=200`` is far more than enough
    for double precision; the loop normally exits on the width criterion.
    """
    if hi < lo:
        lo, hi = hi, lo
    width = hi - lo
    if width <= tol:
        x = 0.5 * (lo + hi)
        return x, func(x)

    x1 = lo + _INV_PHI2 * width
    x2 = lo + _INV_PHI * width
    f1 = func(x1)
    f2 = func(x2)
    for _ in range(max_iter):
        if f1 <= f2:
            hi = x2
            x2, f2 = x1, f1
            width = hi - lo
            x1 = lo + _INV_PHI2 * width
            f1 = func(x1)
        else:
            lo = x1
            x1, f1 = x2, f2
            width = hi - lo
            x2 = lo + _INV_PHI * width
            f2 = func(x2)
        if width <= tol:
            break
    if f1 <= f2:
        return x1, f1
    return x2, f2


def grid_refine_minimize(func: Callable[[float], float], lo: float, hi: float,
                         *, grid_points: int = 129,
                         tol: float = 1e-10) -> Tuple[float, float]:
    """Minimise ``func`` on ``[lo, hi]`` without assuming unimodality.

    A uniform grid of ``grid_points`` evaluations locates the best cell, which
    is then refined with golden-section search (valid locally because the
    objectives we pass are piecewise smooth with finitely many kinks).
    Returns ``(x_min, f(x_min))``.
    """
    if hi <= lo:
        x = lo
        return x, func(x)
    xs = np.linspace(lo, hi, max(3, grid_points))
    vals = np.array([func(float(x)) for x in xs])
    best = int(np.argmin(vals))
    left = xs[max(0, best - 1)]
    right = xs[min(len(xs) - 1, best + 1)]
    x_ref, f_ref = golden_section_minimize(func, float(left), float(right), tol=tol)
    if f_ref <= vals[best]:
        return x_ref, f_ref
    return float(xs[best]), float(vals[best])
