"""Maximum flow with real-valued capacities (Edmonds–Karp).

MOP computes the *free flow* — the amount of the optimum that can travel
entirely inside the shortest-path subgraph — as a max-flow problem whose edge
capacities are the optimum edge flows.  Capacities are small floats, so a
plain BFS augmenting-path implementation with a tolerance threshold is both
simple and fast enough for the instance sizes of the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.network.graph import Network

__all__ = ["max_flow"]

Node = Hashable


def max_flow(network: Network, source: Node, sink: Node,
             capacities: Sequence[float],
             *, allowed_edges: Set[int] | None = None,
             atol: float = 1e-12) -> Tuple[float, np.ndarray]:
    """Maximum ``source -> sink`` flow respecting per-edge ``capacities``.

    ``allowed_edges`` optionally restricts the usable edges (edges outside the
    set behave as if they had zero capacity).  Returns ``(value, edge_flows)``.
    Augmenting paths with bottleneck below ``atol`` are ignored, which bounds
    the number of augmentations by ``num_edges * max_capacity / atol`` in the
    worst case but in practice terminates after at most ``num_edges``
    augmentations for the flows we pass in (they decompose into few paths).
    """
    caps = np.asarray(capacities, dtype=float)
    if caps.shape != (network.num_edges,):
        raise ModelError(
            f"expected {network.num_edges} capacities, got shape {caps.shape}")
    if not network.has_node(source) or not network.has_node(sink):
        raise ModelError("source or sink node missing from the network")
    caps = np.clip(caps, 0.0, None)
    if allowed_edges is not None:
        mask = np.zeros(network.num_edges, dtype=bool)
        for idx in allowed_edges:
            mask[idx] = True
        caps = np.where(mask, caps, 0.0)

    flow = np.zeros(network.num_edges, dtype=float)
    total = 0.0
    max_iterations = 4 * network.num_edges + 16
    for _ in range(max_iterations):
        # BFS over the residual graph.  Residual arcs: forward edges with
        # remaining capacity and backward edges with positive flow.
        parent: Dict[Node, Optional[Tuple[int, bool]]] = {source: None}
        queue = deque([source])
        while queue and sink not in parent:
            node = queue.popleft()
            for idx in network.out_edges(node):
                head = network.edge(idx).head
                if head not in parent and caps[idx] - flow[idx] > atol:
                    parent[head] = (idx, True)
                    queue.append(head)
            for idx in network.in_edges(node):
                tail = network.edge(idx).tail
                if tail not in parent and flow[idx] > atol:
                    parent[tail] = (idx, False)
                    queue.append(tail)
        if sink not in parent:
            break
        # Recover the augmenting path and its bottleneck.
        bottleneck = float("inf")
        node = sink
        path: List[Tuple[int, bool]] = []
        while node != source:
            idx, forward = parent[node]  # type: ignore[misc]
            path.append((idx, forward))
            if forward:
                bottleneck = min(bottleneck, caps[idx] - flow[idx])
                node = network.edge(idx).tail
            else:
                bottleneck = min(bottleneck, flow[idx])
                node = network.edge(idx).head
        if bottleneck <= atol:
            break
        for idx, forward in path:
            if forward:
                flow[idx] += bottleneck
            else:
                flow[idx] -= bottleneck
        total += bottleneck
    return float(total), flow
