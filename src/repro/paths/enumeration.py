"""Explicit path enumeration for small networks.

Enumerating all simple s–t paths is exponential in general, so these helpers
are meant for the small canonical instances (Pigou, Braess, grids up to a few
dozen nodes) where the tests and brute-force baselines need a path-based view
of a flow.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

from repro.exceptions import ModelError
from repro.network.graph import Network

__all__ = ["all_simple_paths", "path_nodes"]

Node = Hashable


def all_simple_paths(network: Network, source: Node, sink: Node,
                     *, max_length: int | None = None,
                     max_paths: int = 100_000) -> List[Tuple[int, ...]]:
    """All simple ``source -> sink`` paths as tuples of edge indices.

    ``max_length`` bounds the number of edges per path; ``max_paths`` guards
    against accidental exponential blow-ups (a :class:`ModelError` is raised
    when exceeded, signalling that the instance is too large for explicit
    enumeration).
    """
    if not network.has_node(source):
        raise ModelError(f"source node {source!r} is not in the network")
    if not network.has_node(sink):
        raise ModelError(f"sink node {sink!r} is not in the network")
    limit = max_length if max_length is not None else network.num_nodes
    paths: List[Tuple[int, ...]] = []
    stack: List[int] = []
    visited = {source}

    def dfs(node: Node) -> None:
        if len(paths) > max_paths:
            raise ModelError(
                f"more than {max_paths} simple paths; instance too large to enumerate")
        if node == sink:
            paths.append(tuple(stack))
            return
        if len(stack) >= limit:
            return
        for idx in network.out_edges(node):
            head = network.edge(idx).head
            if head in visited:
                continue
            visited.add(head)
            stack.append(idx)
            dfs(head)
            stack.pop()
            visited.remove(head)

    dfs(source)
    return paths


def path_nodes(network: Network, path_edges: Sequence[int]) -> Tuple[Node, ...]:
    """The node sequence visited by a path given as edge indices."""
    if not path_edges:
        return ()
    nodes = [network.edge(path_edges[0]).tail]
    for idx in path_edges:
        edge = network.edge(idx)
        if edge.tail != nodes[-1]:
            raise ModelError(
                f"edge {idx} (tail {edge.tail!r}) does not continue the path "
                f"ending at {nodes[-1]!r}")
        nodes.append(edge.head)
    return tuple(nodes)
