"""Dijkstra shortest paths over edge-indexed cost vectors.

The implementation follows the paper's footnote 5: shortest paths are computed
with respect to *fixed* edge costs (typically the latencies ``l_e(o_e)``
induced by the optimum flow), and the union of all edges lying on some
shortest s–t path forms the subgraph the free Followers are allowed to use.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.network.graph import Network

__all__ = [
    "shortest_distances",
    "shortest_path_edges",
    "shortest_path_edge_set",
]

Node = Hashable


def _validate_costs(network: Network, edge_costs: Sequence[float]) -> np.ndarray:
    costs = np.asarray(edge_costs, dtype=float)
    if costs.shape != (network.num_edges,):
        raise ModelError(
            f"expected {network.num_edges} edge costs, got shape {costs.shape}")
    if np.any(costs < -1e-12):
        raise ModelError("Dijkstra requires non-negative edge costs")
    return np.clip(costs, 0.0, None)


def shortest_distances(network: Network, source: Node,
                       edge_costs: Sequence[float],
                       *, reverse: bool = False) -> Tuple[Dict[Node, float],
                                                          Dict[Node, Optional[int]]]:
    """Single-source shortest distances with non-negative edge costs.

    Returns ``(dist, pred_edge)`` where ``dist[v]`` is the cost of the
    cheapest path from ``source`` to ``v`` (``inf`` when unreachable) and
    ``pred_edge[v]`` is the index of the final edge of one such path.

    With ``reverse=True`` the edges are traversed backwards, yielding
    distances *to* ``source`` — used to classify edges by
    ``dist_s(tail) + cost(e) + dist_t(head) == dist_s(t)``.
    """
    costs = _validate_costs(network, edge_costs)
    dist: Dict[Node, float] = {node: math.inf for node in network.nodes}
    pred: Dict[Node, Optional[int]] = {node: None for node in network.nodes}
    if source not in dist:
        raise ModelError(f"source node {source!r} is not in the network")
    dist[source] = 0.0
    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    visited: Set[Node] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        edge_indices = network.in_edges(node) if reverse else network.out_edges(node)
        for idx in edge_indices:
            edge = network.edge(idx)
            neighbor = edge.tail if reverse else edge.head
            candidate = d + costs[idx]
            if candidate < dist[neighbor] - 1e-15:
                dist[neighbor] = candidate
                pred[neighbor] = idx
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return dist, pred


def shortest_path_edges(network: Network, source: Node, sink: Node,
                        edge_costs: Sequence[float]) -> List[int]:
    """Edge indices of one shortest ``source -> sink`` path.

    Raises :class:`ModelError` when the sink is unreachable.
    """
    dist, pred = shortest_distances(network, source, edge_costs)
    if math.isinf(dist.get(sink, math.inf)):
        raise ModelError(f"node {sink!r} is unreachable from {source!r}")
    path: List[int] = []
    node = sink
    while node != source:
        idx = pred[node]
        if idx is None:
            raise ModelError(f"no predecessor recorded for node {node!r}")
        path.append(idx)
        node = network.edge(idx).tail
    path.reverse()
    return path


def shortest_path_edge_set(network: Network, source: Node, sink: Node,
                           edge_costs: Sequence[float],
                           *, atol: float = 1e-9) -> Set[int]:
    """Indices of all edges lying on *some* shortest ``source -> sink`` path.

    An edge ``e = (u, v)`` qualifies iff
    ``dist_source(u) + cost(e) + dist_sink(v) <= dist_source(sink) + atol``.
    This is the subgraph ``G^`` of the paper's footnote 5.
    """
    costs = _validate_costs(network, edge_costs)
    dist_from_source, _ = shortest_distances(network, source, costs)
    dist_to_sink, _ = shortest_distances(network, sink, costs, reverse=True)
    target = dist_from_source.get(sink, math.inf)
    if math.isinf(target):
        raise ModelError(f"node {sink!r} is unreachable from {source!r}")
    scale = max(1.0, abs(target))
    result: Set[int] = set()
    for idx, edge in enumerate(network.edges):
        du = dist_from_source.get(edge.tail, math.inf)
        dv = dist_to_sink.get(edge.head, math.inf)
        if math.isinf(du) or math.isinf(dv):
            continue
        if du + costs[idx] + dv <= target + atol * scale:
            result.add(idx)
    return result
