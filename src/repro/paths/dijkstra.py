"""Dijkstra shortest paths over edge-indexed cost vectors.

The implementation follows the paper's footnote 5: shortest paths are computed
with respect to *fixed* edge costs (typically the latencies ``l_e(o_e)``
induced by the optimum flow), and the union of all edges lying on some
shortest s–t path forms the subgraph the free Followers are allowed to use.

Two engines are provided: the pure-Python binary-heap implementation
(:func:`shortest_distances`, the reference), and
:class:`ShortestPathEngine`, which runs `scipy.sparse.csgraph.dijkstra` over
the network's cached CSR adjacency — one C-level call covers *all* requested
sources at once, which is what the Frank–Wolfe all-or-nothing step uses.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.network.graph import Network

try:  # pragma: no cover - exercised through HAVE_SPARSE_DIJKSTRA
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sparse_dijkstra
    HAVE_SPARSE_DIJKSTRA = True
except ImportError:  # pragma: no cover - scipy is a baked-in dependency
    _csr_matrix = None
    _sparse_dijkstra = None
    HAVE_SPARSE_DIJKSTRA = False

__all__ = [
    "shortest_distances",
    "shortest_path_edges",
    "shortest_path_edge_set",
    "walk_tree_path",
    "validate_edge_costs",
    "ShortestPathEngine",
    "HAVE_SPARSE_DIJKSTRA",
]

Node = Hashable


def validate_edge_costs(network: Network,
                        edge_costs: Sequence[float]) -> np.ndarray:
    """Check shape and non-negativity; return the clipped cost array.

    Callers that evaluate the same latency functions every iteration (the
    Frank–Wolfe loop) validate once per solve and then pass
    ``validated=True`` to the shortest-path routines.
    """
    costs = np.asarray(edge_costs, dtype=float)
    if costs.shape != (network.num_edges,):
        raise ModelError(
            f"expected {network.num_edges} edge costs, got shape {costs.shape}")
    if np.any(costs < -1e-12):
        raise ModelError("Dijkstra requires non-negative edge costs")
    return np.clip(costs, 0.0, None)


# Backwards-compatible private alias (pre-existing internal callers).
_validate_costs = validate_edge_costs


def shortest_distances(network: Network, source: Node,
                       edge_costs: Sequence[float],
                       *, reverse: bool = False,
                       validated: bool = False) -> Tuple[Dict[Node, float],
                                                         Dict[Node, Optional[int]]]:
    """Single-source shortest distances with non-negative edge costs.

    Returns ``(dist, pred_edge)`` where ``dist[v]`` is the cost of the
    cheapest path from ``source`` to ``v`` (``inf`` when unreachable) and
    ``pred_edge[v]`` is the index of the final edge of one such path.

    With ``reverse=True`` the edges are traversed backwards, yielding
    distances *to* ``source`` — used to classify edges by
    ``dist_s(tail) + cost(e) + dist_t(head) == dist_s(t)``.  With
    ``validated=True`` the costs are trusted as already checked by
    :func:`validate_edge_costs` (per-iteration solver calls).
    """
    costs = np.asarray(edge_costs, dtype=float) if validated \
        else validate_edge_costs(network, edge_costs)
    dist: Dict[Node, float] = {node: math.inf for node in network.nodes}
    pred: Dict[Node, Optional[int]] = {node: None for node in network.nodes}
    if source not in dist:
        raise ModelError(f"source node {source!r} is not in the network")
    dist[source] = 0.0
    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    visited: Set[Node] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        edge_indices = network.in_edges(node) if reverse else network.out_edges(node)
        for idx in edge_indices:
            edge = network.edge(idx)
            neighbor = edge.tail if reverse else edge.head
            candidate = d + costs[idx]
            if candidate < dist[neighbor] - 1e-15:
                dist[neighbor] = candidate
                pred[neighbor] = idx
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return dist, pred


def walk_tree_path(network: Network, dist: Dict[Node, float],
                   pred: Dict[Node, Optional[int]], source: Node,
                   sink: Node) -> List[int]:
    """Edge indices of the ``source -> sink`` path recorded in a Dijkstra tree.

    ``(dist, pred)`` come from :func:`shortest_distances`; reusing one tree
    for every commodity that shares a source avoids re-running Dijkstra per
    commodity.  Raises :class:`ModelError` when the sink is unreachable.
    """
    if math.isinf(dist.get(sink, math.inf)):
        raise ModelError(f"node {sink!r} is unreachable from {source!r}")
    path: List[int] = []
    node = sink
    while node != source:
        idx = pred[node]
        if idx is None:
            raise ModelError(f"no predecessor recorded for node {node!r}")
        path.append(idx)
        node = network.edge(idx).tail
    path.reverse()
    return path


def shortest_path_edges(network: Network, source: Node, sink: Node,
                        edge_costs: Sequence[float]) -> List[int]:
    """Edge indices of one shortest ``source -> sink`` path.

    Raises :class:`ModelError` when the sink is unreachable.
    """
    dist, pred = shortest_distances(network, source, edge_costs)
    return walk_tree_path(network, dist, pred, source, sink)


def shortest_path_edge_set(network: Network, source: Node, sink: Node,
                           edge_costs: Sequence[float],
                           *, atol: float = 1e-9) -> Set[int]:
    """Indices of all edges lying on *some* shortest ``source -> sink`` path.

    An edge ``e = (u, v)`` qualifies iff
    ``dist_source(u) + cost(e) + dist_sink(v) <= dist_source(sink) + atol``.
    This is the subgraph ``G^`` of the paper's footnote 5.
    """
    costs = _validate_costs(network, edge_costs)
    dist_from_source, _ = shortest_distances(network, source, costs)
    dist_to_sink, _ = shortest_distances(network, sink, costs, reverse=True)
    target = dist_from_source.get(sink, math.inf)
    if math.isinf(target):
        raise ModelError(f"node {sink!r} is unreachable from {source!r}")
    scale = max(1.0, abs(target))
    result: Set[int] = set()
    for idx, edge in enumerate(network.edges):
        du = dist_from_source.get(edge.tail, math.inf)
        dv = dist_to_sink.get(edge.head, math.inf)
        if math.isinf(du) or math.isinf(dv):
            continue
        if du + costs[idx] + dv <= target + atol * scale:
            result.add(idx)
    return result


class ShortestPathEngine:
    """Batched shortest paths over a network's cached CSR adjacency.

    One engine wraps a fixed ``(network, edge_costs)`` pair.  Construction
    reduces parallel edges to their cheapest representative (shortest paths
    never take a costlier parallel copy) and assembles a
    ``scipy.sparse.csr_matrix`` from the structure arrays cached on the
    network; :meth:`run` then answers *all* requested sources with a single
    `scipy.sparse.csgraph.dijkstra` call, and :meth:`path_edges` walks the
    predecessor matrix back into canonical edge indices.

    Zero-cost edges are kept as explicit entries of the sparse matrix, which
    ``csgraph`` treats as genuine zero-weight edges, so free-flow links route
    exactly like in the reference implementation.
    """

    def __init__(self, network: Network, edge_costs: Sequence[float],
                 *, validated: bool = False) -> None:
        if not HAVE_SPARSE_DIJKSTRA:  # pragma: no cover - scipy baked in
            raise ModelError(
                "ShortestPathEngine requires scipy.sparse.csgraph")
        self.network = network
        costs = np.asarray(edge_costs, dtype=float) if validated \
            else validate_edge_costs(network, edge_costs)
        self._structure = structure = network.csr_structure()
        pair_id = structure["pair_id"]
        num_pairs = len(structure["pair_tail"])
        if structure["has_parallel"]:
            pair_costs = np.full(num_pairs, math.inf)
            np.minimum.at(pair_costs, pair_id, costs)
            # Representative edge per pair: scatter in descending cost order
            # so the cheapest edge (ties: lowest index) wins the final write.
            order = np.lexsort((np.arange(len(costs)), costs))[::-1]
            representatives = np.empty(num_pairs, dtype=np.int64)
            representatives[pair_id[order]] = order
        else:
            # One edge per pair; scatter into the pair ordering (pairs are
            # sorted by node-index key, not by edge insertion order).
            pair_costs = np.empty(num_pairs)
            pair_costs[pair_id] = costs
            representatives = np.empty(num_pairs, dtype=np.int64)
            representatives[pair_id] = np.arange(len(costs), dtype=np.int64)
        self._pair_costs = pair_costs
        self._representatives = representatives
        n = network.num_nodes
        self._graph = _csr_matrix(
            (pair_costs, (structure["pair_tail"], structure["pair_head"])),
            shape=(n, n))
        #: Per-source results: node index -> (distance row, predecessor row).
        self._trees: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _node_index(self, node: Node) -> int:
        try:
            return self._structure["node_index"][node]
        except KeyError:
            raise ModelError(f"node {node!r} is not in the network") from None

    def run(self, sources: Sequence[Node]) -> None:
        """Solve single-source shortest paths from every distinct source.

        One ``csgraph.dijkstra`` call covers all not-yet-solved sources;
        results accumulate on the engine (repeated calls only compute the new
        sources) for :meth:`distance` / :meth:`path_edges` lookups.
        """
        pending: List[int] = []
        for source in sources:
            idx = self._node_index(source)
            if idx not in self._trees and idx not in pending:
                pending.append(idx)
        if not pending:
            return
        dist, pred = _sparse_dijkstra(self._graph, directed=True,
                                      indices=pending,
                                      return_predecessors=True)
        dist = np.atleast_2d(dist)
        pred = np.atleast_2d(pred)
        for row, idx in enumerate(pending):
            self._trees[idx] = (dist[row], pred[row])

    def _tree(self, source: Node) -> Tuple[np.ndarray, np.ndarray]:
        idx = self._node_index(source)
        try:
            return self._trees[idx]
        except KeyError:
            raise ModelError(
                f"source {source!r} was not part of any run()") from None

    def distance(self, source: Node, sink: Node) -> float:
        """Shortest-path cost from ``source`` to ``sink`` (``inf`` if none)."""
        dist, _ = self._tree(source)
        return float(dist[self._node_index(sink)])

    def path_edges(self, source: Node, sink: Node) -> List[int]:
        """Canonical edge indices of one shortest ``source -> sink`` path."""
        dist, pred_row = self._tree(source)
        source_idx = self._node_index(source)
        sink_idx = self._node_index(sink)
        if not np.isfinite(dist[sink_idx]):
            raise ModelError(f"node {sink!r} is unreachable from {source!r}")
        pair_lookup = self._structure["pair_lookup"]
        representatives = self._representatives
        path: List[int] = []
        node = sink_idx
        while node != source_idx:
            prev = int(pred_row[node])
            if prev < 0:
                raise ModelError(
                    f"no predecessor recorded for node {sink!r}")
            path.append(int(representatives[pair_lookup[(prev, node)]]))
            node = prev
        path.reverse()
        return path
