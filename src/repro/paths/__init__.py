"""Path-level substrate: shortest paths, enumeration, decomposition, max-flow.

These utilities power both the Frank–Wolfe equilibrium solver (shortest-path /
all-or-nothing steps) and the MOP algorithm (shortest-path subgraph w.r.t.
optimal latencies, flow decomposition into shortest and non-shortest paths,
max-flow computation of the *free* uncontrolled flow).
"""

from repro.paths.dijkstra import (
    shortest_distances,
    shortest_path_edges,
    shortest_path_edge_set,
)
from repro.paths.enumeration import all_simple_paths, path_nodes
from repro.paths.decomposition import decompose_flow, remove_flow_cycles
from repro.paths.maxflow import max_flow

__all__ = [
    "shortest_distances",
    "shortest_path_edges",
    "shortest_path_edge_set",
    "all_simple_paths",
    "path_nodes",
    "decompose_flow",
    "remove_flow_cycles",
    "max_flow",
]
