"""Flow decomposition: edge flows -> path flows.

The optimum flow computed by Frank–Wolfe is an edge-flow vector; MOP needs to
know how much of it travels along shortest paths versus non-shortest paths.
The decomposition below repeatedly peels off source-to-sink paths carrying the
bottleneck flow (after removing any flow cycles, which cannot appear in an
optimum of strictly increasing latencies but may appear due to numerical
noise).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.network.graph import Network

__all__ = ["remove_flow_cycles", "decompose_flow"]

Node = Hashable


def remove_flow_cycles(network: Network, edge_flows: Sequence[float],
                       *, atol: float = 1e-12) -> np.ndarray:
    """Cancel directed cycles carrying positive flow.

    Returns a new edge-flow vector with the same node divergences but no
    directed cycle of edges all carrying flow above ``atol``.
    """
    flows = np.array(edge_flows, dtype=float)
    flows[flows < atol] = 0.0

    def find_cycle() -> List[int] | None:
        color: Dict[Node, int] = {node: 0 for node in network.nodes}
        stack_edges: List[int] = []
        on_stack: Dict[Node, int] = {}

        def dfs(node: Node) -> List[int] | None:
            color[node] = 1
            on_stack[node] = len(stack_edges)
            for idx in network.out_edges(node):
                if flows[idx] <= atol:
                    continue
                head = network.edge(idx).head
                if color[head] == 1:
                    cycle = stack_edges[on_stack[head]:] + [idx]
                    return cycle
                if color[head] == 0:
                    stack_edges.append(idx)
                    found = dfs(head)
                    stack_edges.pop()
                    if found is not None:
                        return found
            color[node] = 2
            del on_stack[node]
            return None

        for start in network.nodes:
            if color[start] == 0:
                found = dfs(start)
                if found is not None:
                    return found
        return None

    for _ in range(network.num_edges + 1):
        cycle = find_cycle()
        if cycle is None:
            break
        bottleneck = min(flows[idx] for idx in cycle)
        for idx in cycle:
            flows[idx] -= bottleneck
        flows[flows < atol] = 0.0
    return flows


def decompose_flow(network: Network, edge_flows: Sequence[float],
                   source: Node, sink: Node,
                   *, atol: float = 1e-9) -> List[Tuple[Tuple[int, ...], float]]:
    """Decompose a single-commodity edge flow into simple s–t path flows.

    Returns ``[(path_edge_indices, flow), ...]`` whose flows sum to the net
    flow shipped from ``source`` to ``sink`` (up to ``atol`` per extraction).
    The decomposition greedily follows, from each node, the outgoing edge with
    the largest remaining flow, which keeps the number of extracted paths at
    most the number of edges.
    """
    remaining = remove_flow_cycles(network, edge_flows, atol=atol)
    result: List[Tuple[Tuple[int, ...], float]] = []
    guard = 4 * network.num_edges + 4
    for _ in range(guard):
        # Follow the largest-flow outgoing edge from source to sink.
        path: List[int] = []
        node = source
        visited = {source}
        while node != sink:
            candidates = [idx for idx in network.out_edges(node)
                          if remaining[idx] > atol]
            if not candidates:
                path = []
                break
            idx = max(candidates, key=lambda i: remaining[i])
            head = network.edge(idx).head
            if head in visited:
                # Residual numerical cycle; cancel it and restart.
                start = next(k for k, e in enumerate(path)
                             if network.edge(e).tail == head)
                cycle = path[start:] + [idx]
                bottleneck = min(remaining[e] for e in cycle)
                for e in cycle:
                    remaining[e] -= bottleneck
                path = []
                break
            path.append(idx)
            visited.add(head)
            node = head
        if not path:
            break
        bottleneck = min(remaining[idx] for idx in path)
        if bottleneck <= atol:
            break
        for idx in path:
            remaining[idx] -= bottleneck
        result.append((tuple(path), float(bottleneck)))
    return result
