"""Instance library: canonical examples from the paper plus random generators.

Canonical instances (each reproduces a figure of the paper):

* :func:`pigou` — Figures 1–3 (Pigou's example, PoA 4/3, beta = 1/2).
* :func:`figure_4_example` — Figures 4–6 (the five-link OpTop walk-through).
* :func:`braess_paradox` — the classic Braess graph (PoA 4/3 on networks).
* :func:`roughgarden_example` — the 4-node graph of Figure 7 / Roughgarden's
  Example 6.5.1, on which no strategy can guarantee ``(1/alpha) C(O)`` yet MOP
  attains the optimum with beta ~ 1/2.

Random generators (seeded, deterministic) cover the families the benchmarks
sweep: linear / common-slope / polynomial / M/M/1 parallel links, grid and
layered s–t networks, and k-commodity variants.
"""

from repro.instances.pigou import pigou, pigou_nonlinear
from repro.instances.canonical import figure_4_example, two_speed_example
from repro.instances.braess import braess_paradox, roughgarden_example
from repro.instances.random_parallel import (
    random_affine_common_slope,
    random_linear_parallel,
    random_mixed_parallel,
    random_polynomial_parallel,
)
from repro.instances.mm1_farm import mm1_server_farm, random_mm1_parallel
from repro.instances.adversarial import (
    heavy_tail_capacity,
    mixed_family_soup,
    near_degenerate_breakpoints,
    pigou_chain,
)
from repro.instances.random_networks import (
    grid_network,
    layered_network,
    random_multicommodity_instance,
)

__all__ = [
    "pigou",
    "pigou_nonlinear",
    "figure_4_example",
    "two_speed_example",
    "braess_paradox",
    "roughgarden_example",
    "random_linear_parallel",
    "random_affine_common_slope",
    "random_polynomial_parallel",
    "random_mixed_parallel",
    "mm1_server_farm",
    "random_mm1_parallel",
    "near_degenerate_breakpoints",
    "heavy_tail_capacity",
    "pigou_chain",
    "mixed_family_soup",
    "grid_network",
    "layered_network",
    "random_multicommodity_instance",
]
