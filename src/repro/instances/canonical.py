"""Canonical parallel-link examples from the paper's figures."""

from __future__ import annotations

from repro.latency.linear import ConstantLatency, LinearLatency
from repro.network.parallel import ParallelLinkInstance

__all__ = ["figure_4_example", "two_speed_example"]


def figure_4_example(demand: float = 1.0) -> ParallelLinkInstance:
    """The five-link instance of Figures 4–6.

    Latencies: ``l1(x) = x``, ``l2(x) = 3/2 x``, ``l3(x) = 2 x``,
    ``l4(x) = 5/2 x + 1/6``, ``l5(x) = 7/10`` with total flow 1.

    At the Nash equilibrium links M4 and M5 are under-loaded; OpTop freezes
    them at their optimum flows (o4 = 8/75, o5 = 27/200, so beta = 29/120)
    and the remaining selfish flow reproduces the optimum on M1–M3
    (Figure 6).
    """
    return ParallelLinkInstance(
        [
            LinearLatency(1.0, 0.0),
            LinearLatency(1.5, 0.0),
            LinearLatency(2.0, 0.0),
            LinearLatency(2.5, 1.0 / 6.0),
            ConstantLatency(0.7),
        ],
        demand,
        names=("M1", "M2", "M3", "M4", "M5"),
    )


def two_speed_example(fast_slope: float = 1.0, slow_constant: float = 1.0,
                      demand: float = 1.0) -> ParallelLinkInstance:
    """A parametrised Pigou-like instance with one fast and one slow link.

    ``l_fast(x) = fast_slope * x`` and ``l_slow(x) = slow_constant``; useful
    for sweeping the Price of Optimum as the relative appeal of the links
    varies.
    """
    return ParallelLinkInstance(
        [LinearLatency(fast_slope, 0.0), ConstantLatency(slow_constant)], demand,
        names=("fast", "slow"))
