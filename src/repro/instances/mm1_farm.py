"""M/M/1 server farms (Korilis–Lazar–Orda style systems).

The paper remarks, after Corollary 2.2, that on M/M/1 systems the Price of
Optimum ``beta_M`` can be significantly small when the system contains *small
groups of highly appealing links* or *large groups of identical links*.
Benchmark E8 sweeps exactly these families.
"""

from __future__ import annotations

from repro.exceptions import InstanceError
from repro.instances.rng import SeedLike, resolve_rng
from repro.latency.mm1 import MM1Latency
from repro.network.parallel import ParallelLinkInstance

__all__ = ["mm1_server_farm", "random_mm1_parallel"]


def mm1_server_farm(num_fast: int, num_slow: int, *, fast_capacity: float = 10.0,
                    slow_capacity: float = 2.0, demand: float | None = None,
                    utilisation: float = 0.6) -> ParallelLinkInstance:
    """A server farm with a group of fast and a group of slow M/M/1 links.

    ``demand`` defaults to ``utilisation`` times the total capacity.  The fast
    group models the "highly appealing links"; growing ``num_slow`` with
    identical capacities produces the "large groups of identical links"
    regime.
    """
    if num_fast < 0 or num_slow < 0 or num_fast + num_slow == 0:
        raise InstanceError("need at least one link in the farm")
    if fast_capacity <= 0.0 or slow_capacity <= 0.0:
        raise InstanceError("capacities must be > 0")
    latencies = ([MM1Latency(fast_capacity)] * num_fast
                 + [MM1Latency(slow_capacity)] * num_slow)
    total_capacity = num_fast * fast_capacity + num_slow * slow_capacity
    if demand is None:
        if not 0.0 < utilisation < 1.0:
            raise InstanceError(
                f"utilisation must lie in (0, 1), got {utilisation!r}")
        demand = utilisation * total_capacity
    if demand >= total_capacity:
        raise InstanceError(
            f"demand {demand!r} must be below the total capacity {total_capacity!r}")
    names = tuple(f"fast{i + 1}" for i in range(num_fast)) \
        + tuple(f"slow{i + 1}" for i in range(num_slow))
    return ParallelLinkInstance(latencies, demand, names=names)


def random_mm1_parallel(num_links: int, demand_fraction: float = 0.7, *,
                        seed: SeedLike = 0,
                        capacity_range: tuple[float, float] = (1.0, 10.0),
                        ) -> ParallelLinkInstance:
    """Parallel M/M/1 links with capacities drawn uniformly at random.

    ``demand_fraction`` scales the demand relative to the total capacity
    (strictly below 1 to keep the instance feasible).
    """
    if num_links < 1:
        raise InstanceError(f"num_links must be >= 1, got {num_links!r}")
    if not 0.0 < demand_fraction < 1.0:
        raise InstanceError(
            f"demand_fraction must lie in (0, 1), got {demand_fraction!r}")
    rng = resolve_rng(seed)
    capacities = rng.uniform(*capacity_range, size=num_links)
    latencies = [MM1Latency(float(c)) for c in capacities]
    demand = demand_fraction * float(capacities.sum())
    return ParallelLinkInstance(latencies, demand)
