"""Adversarial parallel-link generators for the benchmark suite.

Each factory here is *designed to be hard* for one part of the solver stack:

* :func:`near_degenerate_breakpoints` clusters every free-flow latency within
  a window of width ``epsilon``, so the sorted-breakpoint engine has to
  separate segments whose boundaries almost coincide.
* :func:`heavy_tail_capacity` draws M/M/1 capacities from a Pareto
  distribution and pushes the demand toward saturation, so a few huge links
  dominate while the small ones operate near their poles.
* :func:`pigou_chain` composes geometrically scaled Pigou pairs — the
  classic worst-case price-of-anarchy building block — into one instance.
* :func:`mixed_family_soup` puts all five latency families (linear,
  constant, monomial, polynomial, M/M/1) on a single instance, exercising
  every code path of the mixed-family water-filling kernel at once.

All factories validate their parameters eagerly and raise
:class:`~repro.exceptions.InstanceError` on degenerate inputs (``epsilon=0``
duplicated breakpoints, demand at or above capacity) instead of emitting
unsolvable instances.  Seeded factories are deterministic in
``(params, seed)``; see :mod:`repro.instances.rng` for the seed protocol.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import InstanceError
from repro.instances.rng import SeedLike, resolve_rng
from repro.latency.base import LatencyFunction
from repro.latency.linear import ConstantLatency, LinearLatency
from repro.latency.mm1 import MM1Latency
from repro.latency.polynomial import MonomialLatency, PolynomialLatency
from repro.network.parallel import ParallelLinkInstance

__all__ = [
    "near_degenerate_breakpoints",
    "heavy_tail_capacity",
    "pigou_chain",
    "mixed_family_soup",
]


def near_degenerate_breakpoints(num_links: int, demand: float = 1.0, *,
                                seed: SeedLike = 0, epsilon: float = 1e-6,
                                base_latency: float = 1.0,
                                slope_range: tuple[float, float] = (0.5, 2.0),
                                ) -> ParallelLinkInstance:
    """Affine links whose free-flow latencies are clustered within ``epsilon``.

    The sorted-breakpoint engine orders links by their free-flow latencies
    ``l_i(0)`` and walks the induced segments; here every intercept lies in
    ``[base_latency, base_latency + epsilon)``, so consecutive breakpoints
    are separated by ``O(epsilon / num_links)`` and the segment search runs
    at the edge of floating-point resolution.  ``epsilon`` must be strictly
    positive: ``epsilon=0`` would duplicate breakpoints exactly and make the
    water-filling level sets ill-defined, so it raises
    :class:`~repro.exceptions.InstanceError` instead.
    """
    if num_links < 2:
        raise InstanceError(
            f"near_degenerate_breakpoints needs >= 2 links, got {num_links!r}")
    if epsilon <= 0.0:
        raise InstanceError(
            f"epsilon must be > 0 (epsilon=0 duplicates breakpoints exactly), "
            f"got {epsilon!r}")
    if base_latency < 0.0:
        raise InstanceError(
            f"base_latency must be >= 0, got {base_latency!r}")
    if demand <= 0.0:
        raise InstanceError(f"demand must be > 0, got {demand!r}")
    rng = resolve_rng(seed)
    slopes = rng.uniform(*slope_range, size=num_links)
    # Strictly increasing offsets inside [0, epsilon): a random partition of
    # the window keeps the breakpoints distinct but adversarially close.
    offsets = epsilon * rng.uniform(0.0, 1.0, size=num_links)
    offsets.sort()
    latencies = [LinearLatency(float(a), base_latency + float(b))
                 for a, b in zip(slopes, offsets)]
    return ParallelLinkInstance(latencies, demand)


def heavy_tail_capacity(num_links: int, *, seed: SeedLike = 0,
                        demand_fraction: float = 0.95,
                        tail_index: float = 1.5,
                        scale: float = 1.0) -> ParallelLinkInstance:
    """M/M/1 links with Pareto capacities, demand pushed toward saturation.

    Capacities are drawn as ``scale * Pareto(tail_index)`` (support
    ``[scale, inf)``); small tail indices make a handful of giant links
    coexist with many tiny ones, and ``demand_fraction`` close to 1 pins the
    system near its pole where latencies blow up.  ``demand_fraction`` must
    be strictly below 1 — demand exactly at capacity has no feasible flow
    with finite latency, so it raises
    :class:`~repro.exceptions.InstanceError`.
    """
    if num_links < 1:
        raise InstanceError(f"num_links must be >= 1, got {num_links!r}")
    if not 0.0 < demand_fraction < 1.0:
        raise InstanceError(
            f"demand_fraction must lie strictly in (0, 1) — demand at or "
            f"above the total capacity is infeasible — got {demand_fraction!r}")
    if tail_index <= 0.0:
        raise InstanceError(f"tail_index must be > 0, got {tail_index!r}")
    if scale <= 0.0:
        raise InstanceError(f"scale must be > 0, got {scale!r}")
    rng = resolve_rng(seed)
    # rng.pareto draws from the Lomax form with support [0, inf); shifting by
    # one gives the classical Pareto with minimum value `scale`.
    capacities = scale * (1.0 + rng.pareto(tail_index, size=num_links))
    latencies = [MM1Latency(float(c)) for c in capacities]
    demand = demand_fraction * float(capacities.sum())
    return ParallelLinkInstance(latencies, demand)


def pigou_chain(num_blocks: int, demand: float | None = None, *,
                degree: float = 2.0,
                cost_ratio: float = 4.0) -> ParallelLinkInstance:
    """A composition of geometrically scaled Pigou pairs (worst-case PoA).

    Block ``j`` (``j = 0..num_blocks-1``) contributes two links: a constant
    "safe road" with latency ``cost_ratio**j`` and a monomial "fast road"
    ``l(x) = cost_ratio**j * x**degree`` whose latency meets the safe road
    exactly at one unit of flow.  Each pair in isolation is Pigou's
    worst-case price-of-anarchy example for degree-``degree`` latencies;
    composing blocks at geometrically separated cost scales forces the
    solvers to resolve every scale correctly at once.  ``demand`` defaults
    to ``num_blocks`` (one unit per block, the per-block worst case).

    Deterministic (no seed): the construction is fully parameterised.
    """
    if num_blocks < 1:
        raise InstanceError(f"num_blocks must be >= 1, got {num_blocks!r}")
    if degree < 1.0:
        raise InstanceError(f"degree must be >= 1, got {degree!r}")
    if cost_ratio <= 1.0:
        raise InstanceError(
            f"cost_ratio must be > 1 to separate the blocks, got {cost_ratio!r}")
    if demand is None:
        demand = float(num_blocks)
    if demand <= 0.0:
        raise InstanceError(f"demand must be > 0, got {demand!r}")
    latencies: List[LatencyFunction] = []
    names: List[str] = []
    for j in range(num_blocks):
        level = cost_ratio ** j
        latencies.append(ConstantLatency(level))
        names.append(f"safe{j + 1}")
        latencies.append(MonomialLatency(level, degree))
        names.append(f"road{j + 1}")
    return ParallelLinkInstance(latencies, demand, names=tuple(names))


def mixed_family_soup(num_links: int = 5, demand: float = 1.0, *,
                      seed: SeedLike = 0) -> ParallelLinkInstance:
    """All five latency families (linear, constant, monomial, polynomial,
    M/M/1) on one parallel-link instance.

    Link ``i`` draws its family round-robin, so every family appears at
    least once when ``num_links >= 5``; parameters are randomised within
    solver-friendly ranges except that M/M/1 capacities always exceed the
    total demand (each queueing link could carry everything alone, keeping
    the instance feasible regardless of how flow is split).  Stresses the
    generic mixed-family water-filling kernel, which must merge breakpoint
    families with different curvature and domain structure.
    """
    if num_links < 5:
        raise InstanceError(
            f"mixed_family_soup needs >= 5 links so every latency family "
            f"appears, got {num_links!r}")
    if demand <= 0.0:
        raise InstanceError(f"demand must be > 0, got {demand!r}")
    rng = resolve_rng(seed)
    latencies = []
    for i in range(num_links):
        family = i % 5
        if family == 0:
            latencies.append(LinearLatency(float(rng.uniform(0.5, 2.5)),
                                           float(rng.uniform(0.0, 1.0))))
        elif family == 1:
            latencies.append(ConstantLatency(float(rng.uniform(0.5, 2.0))))
        elif family == 2:
            latencies.append(MonomialLatency(float(rng.uniform(0.5, 2.0)),
                                             float(rng.integers(2, 4)),
                                             float(rng.uniform(0.0, 0.5))))
        elif family == 3:
            coeffs = [float(c) for c in rng.uniform(0.1, 1.5, size=3)]
            latencies.append(PolynomialLatency(coeffs))
        else:
            capacity = demand * float(rng.uniform(1.2, 3.0))
            latencies.append(MM1Latency(capacity))
    return ParallelLinkInstance(latencies, demand)
