"""Random s–t and multicommodity network generators."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import InstanceError
from repro.instances.rng import SeedLike, resolve_rng
from repro.latency.base import LatencyFunction
from repro.latency.linear import LinearLatency
from repro.latency.polynomial import BPRLatency
from repro.network.graph import Network
from repro.network.instance import Commodity, NetworkInstance

__all__ = ["grid_network", "layered_network", "random_multicommodity_instance"]


def _random_latency(rng: np.random.Generator, family: str) -> LatencyFunction:
    if family == "linear":
        return LinearLatency(float(rng.uniform(0.5, 3.0)), float(rng.uniform(0.0, 1.0)))
    if family == "bpr":
        return BPRLatency(free_flow_time=float(rng.uniform(0.5, 2.0)),
                          capacity=float(rng.uniform(0.5, 2.0)),
                          alpha=0.15, beta=4.0)
    raise InstanceError(f"unknown latency family {family!r}")


def grid_network(rows: int, cols: int, demand: float = 1.0, *, seed: SeedLike = 0,
                 latency_family: str = "linear") -> NetworkInstance:
    """A directed grid routed from the top-left to the bottom-right corner.

    Every node has edges to its right and down neighbours (a DAG, so the
    number of s–t paths is ``C(rows+cols-2, rows-1)``); edge latencies are
    drawn from the requested family.  A standard stand-in for "city grid"
    traffic instances.
    """
    if rows < 2 or cols < 2:
        raise InstanceError("grid_network needs at least a 2x2 grid")
    rng = resolve_rng(seed)
    network = Network()
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_edge((r, c), (r, c + 1), _random_latency(rng, latency_family))
            if r + 1 < rows:
                network.add_edge((r, c), (r + 1, c), _random_latency(rng, latency_family))
    return NetworkInstance.single_commodity(network, (0, 0), (rows - 1, cols - 1),
                                            demand)


def layered_network(num_layers: int, width: int, demand: float = 1.0, *,
                    seed: SeedLike = 0, latency_family: str = "linear",
                    extra_edge_probability: float = 0.5) -> NetworkInstance:
    """A layered DAG from a single source to a single sink.

    ``num_layers`` internal layers of ``width`` nodes each; consecutive layers
    are connected with a perfect matching plus random extra edges, and the
    source/sink connect to every node of the first/last layer.  Produces
    s–t networks with many short paths, a good stress test for MOP's
    shortest-path classification.
    """
    if num_layers < 1 or width < 1:
        raise InstanceError("layered_network needs num_layers >= 1 and width >= 1")
    rng = resolve_rng(seed)
    network = Network()
    source, sink = "s", "t"
    layers: List[List[tuple]] = [[(layer, i) for i in range(width)]
                                 for layer in range(num_layers)]
    for node in layers[0]:
        network.add_edge(source, node, _random_latency(rng, latency_family))
    for layer in range(num_layers - 1):
        for i in range(width):
            network.add_edge(layers[layer][i], layers[layer + 1][i],
                             _random_latency(rng, latency_family))
            for j in range(width):
                if j != i and rng.uniform() < extra_edge_probability:
                    network.add_edge(layers[layer][i], layers[layer + 1][j],
                                     _random_latency(rng, latency_family))
    for node in layers[-1]:
        network.add_edge(node, sink, _random_latency(rng, latency_family))
    return NetworkInstance.single_commodity(network, source, sink, demand)


def random_multicommodity_instance(rows: int = 3, cols: int = 3, *,
                                   num_commodities: int = 2, seed: SeedLike = 0,
                                   demand_range: tuple[float, float] = (0.5, 1.5),
                                   latency_family: str = "linear",
                                   ) -> NetworkInstance:
    """A k-commodity instance on a bidirected grid.

    The grid is bidirected (edges in both directions) so that arbitrary
    corner-to-corner commodities are routable; commodity endpoints are drawn
    from the grid's border nodes.
    """
    if rows < 2 or cols < 2:
        raise InstanceError("random_multicommodity_instance needs at least a 2x2 grid")
    if num_commodities < 1:
        raise InstanceError("need at least one commodity")
    rng = resolve_rng(seed)
    network = Network()
    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    network.add_edge((r, c), (rr, cc),
                                     _random_latency(rng, latency_family))
    border = [(r, c) for r in range(rows) for c in range(cols)
              if r in (0, rows - 1) or c in (0, cols - 1)]
    commodities = []
    for _ in range(num_commodities):
        source, sink = rng.choice(len(border), size=2, replace=False)
        commodities.append(Commodity(border[int(source)], border[int(sink)],
                                     float(rng.uniform(*demand_range))))
    return NetworkInstance(network, commodities)
