"""Braess-type 4-node networks, including the paper's Figure 7 graph."""

from __future__ import annotations

from repro.exceptions import InstanceError
from repro.latency.linear import ConstantLatency, LinearLatency
from repro.network.graph import Network
from repro.network.instance import NetworkInstance

__all__ = ["braess_paradox", "roughgarden_example"]


def braess_paradox(demand: float = 1.0) -> NetworkInstance:
    """The classic Braess paradox graph.

    Nodes ``s, v, w, t``; latencies ``l(x) = x`` on ``s->v`` and ``w->t``,
    constant 1 on ``s->w`` and ``v->t``, constant 0 on the cross edge
    ``v->w``.  With unit demand the selfish flow all takes the zig-zag path
    (cost 2) while the optimum splits over the two outer paths (cost 3/2),
    so the price of anarchy is 4/3.

    Interestingly, the Price of Optimum of this instance is 1: at the optimum
    the (empty) zig-zag path is strictly shorter than both used paths, so any
    uncontrolled flow would deviate onto it — the Leader must control
    everything to enforce the optimum.
    """
    network = Network()
    network.add_edge("s", "v", LinearLatency(1.0, 0.0))
    network.add_edge("s", "w", ConstantLatency(1.0))
    network.add_edge("v", "w", ConstantLatency(0.0))
    network.add_edge("v", "t", ConstantLatency(1.0))
    network.add_edge("w", "t", LinearLatency(1.0, 0.0))
    return NetworkInstance.single_commodity(network, "s", "t", demand)


def roughgarden_example(epsilon: float = 0.0, demand: float = 1.0) -> NetworkInstance:
    """The 4-node graph of the paper's Figure 7 (Roughgarden's Example 6.5.1).

    Nodes ``s, v, w, t`` and edges

    * ``s->v`` and ``w->t`` with latency ``x``,
    * ``v->w`` with latency ``x``,
    * ``s->w`` and ``v->t`` with constant latency ``5/2 - 6*epsilon``.

    With unit demand the optimum flow is exactly the one reported in the
    paper's Figure 7:

    * ``o_{s->v} = o_{w->t} = 3/4 - epsilon``,
    * ``o_{v->w} = 1/2 - 2*epsilon``,
    * ``o_{s->w} = o_{v->t} = 1/4 + epsilon``,

    the unique shortest path under the optimal latencies is the middle path
    ``P0 = s->v->w->t`` carrying ``1/2 - 2*epsilon``, and the two outer paths
    are non-shortest.  MOP therefore controls the optimal flow of the outer
    paths and the Price of Optimum is ``beta_G = 1/2 + 2*epsilon`` — while the
    instance is exactly the structure on which Roughgarden showed that no
    strategy can guarantee cost within ``1/alpha`` of the optimum.

    Roughgarden's book states the example with slightly different (unpublished
    here) latency constants; this reconstruction preserves the optimal flow
    pattern, the shortest/non-shortest path structure and the value of
    ``beta_G``, which is all the paper's argument uses (see DESIGN.md,
    Substitutions).
    """
    if not 0.0 <= epsilon < 0.25:
        raise InstanceError(
            f"epsilon must lie in [0, 1/4) to keep all optimal path flows "
            f"positive, got {epsilon!r}")
    constant = 2.5 - 6.0 * epsilon
    network = Network()
    network.add_edge("s", "v", LinearLatency(1.0, 0.0))
    network.add_edge("s", "w", ConstantLatency(constant))
    network.add_edge("v", "w", LinearLatency(1.0, 0.0))
    network.add_edge("v", "t", ConstantLatency(constant))
    network.add_edge("w", "t", LinearLatency(1.0, 0.0))
    return NetworkInstance.single_commodity(network, "s", "t", demand)
