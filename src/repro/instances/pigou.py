"""Pigou's example (Figures 1–3 of the paper)."""

from __future__ import annotations

from repro.latency.linear import ConstantLatency, LinearLatency
from repro.latency.polynomial import MonomialLatency
from repro.network.parallel import ParallelLinkInstance

__all__ = ["pigou", "pigou_nonlinear"]


def pigou(demand: float = 1.0) -> ParallelLinkInstance:
    """The two-link Pigou instance: ``l_1(x) = x`` and ``l_2(x) = 1``.

    With unit demand the Nash equilibrium floods the first link
    (``N = <1, 0>``, cost 1) while the optimum balances the flow
    (``O = <1/2, 1/2>``, cost 3/4), giving the worst-case linear price of
    anarchy 4/3.  The Leader only needs to control half the flow — routed on
    the slow constant link — to induce the optimum (Figures 2–3), so the
    Price of Optimum is ``beta = 1/2``.
    """
    return ParallelLinkInstance(
        [LinearLatency(1.0, 0.0), ConstantLatency(1.0)], demand,
        names=("M1", "M2"))


def pigou_nonlinear(degree: float, demand: float = 1.0) -> ParallelLinkInstance:
    """The nonlinear Pigou instance: ``l_1(x) = x^degree`` and ``l_2(x) = 1``.

    As the degree grows the price of anarchy approaches infinity — the
    "unbounded coordination ratio" that motivates Stackelberg control in the
    paper's abstract.
    """
    return ParallelLinkInstance(
        [MonomialLatency(1.0, degree), ConstantLatency(1.0)], demand,
        names=("M1", "M2"))
