"""Random parallel-link instance generators (seeded and deterministic)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InstanceError
from repro.instances.rng import SeedLike, resolve_rng
from repro.latency.linear import ConstantLatency, LinearLatency
from repro.latency.polynomial import MonomialLatency, PolynomialLatency
from repro.network.parallel import ParallelLinkInstance

__all__ = [
    "random_linear_parallel",
    "random_affine_common_slope",
    "random_polynomial_parallel",
    "random_mixed_parallel",
]


def _check_num_links(num_links: int) -> None:
    if num_links < 1:
        raise InstanceError(f"num_links must be >= 1, got {num_links!r}")


def random_linear_parallel(num_links: int, demand: float = 1.0, *, seed: SeedLike = 0,
                           slope_range: tuple[float, float] = (0.5, 3.0),
                           intercept_range: tuple[float, float] = (0.0, 1.0),
                           ) -> ParallelLinkInstance:
    """Parallel links with independent affine latencies ``a_i x + b_i``.

    Slopes and intercepts are drawn uniformly from the given ranges; the
    family that the 4/3 price-of-anarchy bound and the ``4/(3+alpha)`` LLF
    bound apply to.
    """
    _check_num_links(num_links)
    rng = resolve_rng(seed)
    slopes = rng.uniform(*slope_range, size=num_links)
    intercepts = rng.uniform(*intercept_range, size=num_links)
    latencies = [LinearLatency(float(a), float(b))
                 for a, b in zip(slopes, intercepts)]
    return ParallelLinkInstance(latencies, demand)


def random_affine_common_slope(num_links: int, demand: float = 1.0, *, seed: SeedLike = 0,
                               slope: float = 1.0,
                               intercept_range: tuple[float, float] = (0.0, 1.0),
                               ) -> ParallelLinkInstance:
    """Parallel links with latencies ``a x + b_i`` sharing a common slope ``a``.

    This is exactly the family of Theorem 2.4, for which the optimal
    Stackelberg strategy is polynomial even on hard instances
    ``(M, r, alpha < beta_M)``.
    """
    _check_num_links(num_links)
    if slope <= 0.0:
        raise InstanceError(f"the common slope must be > 0, got {slope!r}")
    rng = resolve_rng(seed)
    intercepts = np.sort(rng.uniform(*intercept_range, size=num_links))
    latencies = [LinearLatency(slope, float(b)) for b in intercepts]
    return ParallelLinkInstance(latencies, demand)


def random_polynomial_parallel(num_links: int, demand: float = 1.0, *, seed: SeedLike = 0,
                               max_degree: int = 3,
                               coefficient_range: tuple[float, float] = (0.1, 2.0),
                               ) -> ParallelLinkInstance:
    """Parallel links with random increasing polynomial latencies.

    Every link gets a polynomial of random degree between 1 and
    ``max_degree`` with non-negative coefficients (constant term included), so
    the latencies are strictly increasing and ``x l(x)`` is convex.
    """
    _check_num_links(num_links)
    if max_degree < 1:
        raise InstanceError(f"max_degree must be >= 1, got {max_degree!r}")
    rng = resolve_rng(seed)
    latencies = []
    for _ in range(num_links):
        degree = int(rng.integers(1, max_degree + 1))
        coeffs = rng.uniform(*coefficient_range, size=degree + 1)
        coeffs[0] = rng.uniform(0.0, coefficient_range[1])  # free-flow latency
        latencies.append(PolynomialLatency([float(c) for c in coeffs]))
    return ParallelLinkInstance(latencies, demand)


def random_mixed_parallel(num_links: int, demand: float = 1.0, *, seed: SeedLike = 0,
                          constant_fraction: float = 0.25,
                          ) -> ParallelLinkInstance:
    """A mixture of affine, monomial and constant latencies.

    Roughly ``constant_fraction`` of the links get constant latencies (the
    documented model extension); the rest alternate between affine and
    monomial latencies.  Exercises the solvers on heterogeneous systems.
    """
    _check_num_links(num_links)
    if not 0.0 <= constant_fraction <= 1.0:
        raise InstanceError(
            f"constant_fraction must lie in [0, 1], got {constant_fraction!r}")
    rng = resolve_rng(seed)
    latencies = []
    for i in range(num_links):
        draw = rng.uniform()
        if draw < constant_fraction:
            latencies.append(ConstantLatency(float(rng.uniform(0.5, 2.0))))
        elif i % 2 == 0:
            latencies.append(LinearLatency(float(rng.uniform(0.5, 2.5)),
                                           float(rng.uniform(0.0, 1.0))))
        else:
            latencies.append(MonomialLatency(float(rng.uniform(0.5, 2.0)),
                                             float(rng.integers(2, 4)),
                                             float(rng.uniform(0.0, 0.5))))
    # Guarantee at least one strictly increasing link so every demand is routable.
    if all(lat.is_constant for lat in latencies):
        latencies[0] = LinearLatency(1.0, 0.0)
    return ParallelLinkInstance(latencies, demand)
