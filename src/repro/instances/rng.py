"""Explicit random-number-generator resolution for instance factories.

Every seeded factory of :mod:`repro.instances` routes its ``seed`` argument
through :func:`resolve_rng`, which accepts three forms:

* an ``int`` — the reproducible path: ``np.random.default_rng(seed)``;
* an existing :class:`numpy.random.Generator` — threaded through unchanged,
  so a caller can drive several factories from one stream;
* ``None`` — "give me a fresh instance, I don't care which": drawn from a
  module-private fallback stream that is *independent of the global NumPy
  RNG*.  Library code (or test fixtures) calling ``np.random.seed`` can
  therefore never couple itself to no-seed instance generation, and two
  no-seed calls never return identical instances just because someone
  re-seeded the legacy global state in between.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["resolve_rng", "SeedLike"]

#: What instance factories accept as their ``seed`` argument.
SeedLike = Union[int, np.random.Generator, None]

#: Private entropy stream backing ``seed=None`` calls.  Deliberately NOT
#: ``np.random`` (the legacy global RNG): its state is owned by this module
#: alone, so ``np.random.seed(...)`` elsewhere cannot replay or entangle
#: no-seed instance draws.
_FALLBACK: np.random.Generator = np.random.default_rng()


def resolve_rng(seed: SeedLike) -> np.random.Generator:
    """The :class:`numpy.random.Generator` a factory should draw from.

    ``int`` seeds give the deterministic generator the study pipeline's
    digest-stable addressing relies on; an explicit ``Generator`` is used
    (and advanced) as-is; ``None`` spawns an independent child of the
    module-private fallback stream (never the global NumPy RNG).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        # spawn() gives each no-seed call its own child stream, so factories
        # invoked concurrently from several threads do not race on one
        # bit-generator's state.
        return _FALLBACK.spawn(1)[0]
    return np.random.default_rng(int(seed))
