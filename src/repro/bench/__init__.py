"""Adversarial benchmark suites with MILP-certified optimality gaps.

The bench subsystem turns the repo into a reference benchmark for
Stackelberg routing on parallel links:

* the adversarial generators of :mod:`repro.instances.adversarial`
  (registered on the generator registry) produce instances designed to be
  hard — near-degenerate breakpoints, heavy-tailed M/M/1 capacities,
  worst-case-PoA Pigou compositions, all latency families at once;
* the ``exact`` strategy (:mod:`repro.baselines.exact`) certifies each
  instance with a mixed-integer lower bound;
* :class:`~repro.bench.suite.SuiteSpec` pins instances + strategies into a
  versioned suite, :func:`~repro.bench.suite.run_suite` produces the
  certified gap table, and :func:`~repro.bench.suite.verify_suite` gates
  runs against a pinned baseline (``repro bench suite verify``).
"""

from repro.bench.suite import (
    SUITES,
    GapRow,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    available_suites,
    baseline_payload,
    get_suite,
    run_suite,
    verify_suite,
)

__all__ = [
    "SuiteEntry",
    "SuiteSpec",
    "GapRow",
    "SuiteReport",
    "run_suite",
    "verify_suite",
    "baseline_payload",
    "available_suites",
    "get_suite",
    "SUITES",
]
