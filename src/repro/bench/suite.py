"""Versioned adversarial benchmark suites with certified optimality gaps.

A :class:`SuiteSpec` pins a set of adversarial instances — each a
``(generator, params, seeds)`` triple from the generator registry — together
with the strategies to benchmark and the certification baseline (the
``exact`` MILP strategy by default).  :func:`run_suite` expands the spec
through the Study pipeline (so a ``--store`` run lands golden artifacts in
the :class:`~repro.study.store.ArtifactStore` and a second run resumes with
zero solver calls) and folds the per-cell reports into a
:class:`SuiteReport`: one gap row per ``(instance, strategy)`` comparing the
strategy's induced cost against the exact baseline's certified cost and
MILP lower bound.

:func:`verify_suite` gates a report against a pinned baseline file (see
``.github/suite-gap-baseline.json``): it fails when a regenerated instance's
digest drifts (the generator or its seeding changed) or when any strategy's
gap regresses beyond the pinned value plus the suite's ``gap_tolerance``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.api.config import SolveConfig
from repro.exceptions import ModelError
from repro.serialization import instance_digest as _instance_digest
from repro.study.generators import get_generator
from repro.study.report import StudyReport
from repro.study.runner import run_study
from repro.study.spec import GeneratorAxis, StudySpec
from repro.study.store import ArtifactStore
from repro.utils.tables import format_table

__all__ = [
    "SuiteEntry",
    "SuiteSpec",
    "GapRow",
    "SuiteReport",
    "run_suite",
    "verify_suite",
    "baseline_payload",
    "available_suites",
    "get_suite",
    "SUITES",
]

#: Denominator floor for relative gaps (guards against zero-cost baselines).
_GAP_FLOOR = 1e-12


def _canonical(value: Any) -> str:
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ModelError(
            f"suite params must be JSON values, got {value!r}: {exc}") from exc


@dataclass(frozen=True)
class SuiteEntry:
    """One pinned instance family of a suite.

    Attributes
    ----------
    label:
        Unique name of the entry inside the suite (keys the baseline file).
    generator:
        Name in the generator registry.
    params:
        Canonical-JSON generator params (construct with a mapping).
    seeds:
        Seeds to instantiate the entry with (unseeded generators use one).
    """

    label: str
    generator: str
    params: str = "{}"
    seeds: tuple = (0,)

    def __init__(self, label: str, generator: str,
                 params: Optional[Mapping[str, Any]] = None,
                 seeds: Sequence[int] = (0,)) -> None:
        if not label or not isinstance(label, str):
            raise ModelError(f"entry label must be a non-empty string, "
                             f"got {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "generator", str(generator))
        object.__setattr__(self, "params",
                           _canonical(dict(params) if params else {}))
        object.__setattr__(self, "seeds", tuple(int(s) for s in seeds))
        if not self.seeds:
            raise ModelError(f"entry {label!r} needs at least one seed")

    @property
    def params_dict(self) -> Dict[str, Any]:
        return json.loads(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "generator": self.generator,
                "params": self.params_dict, "seeds": list(self.seeds)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SuiteEntry":
        if not isinstance(data, Mapping) or "label" not in data:
            raise ModelError(f"invalid SuiteEntry payload: {data!r}")
        return cls(data["label"], data.get("generator", ""),
                   data.get("params") or {}, data.get("seeds") or (0,))


@dataclass(frozen=True)
class SuiteSpec:
    """A versioned benchmark suite: entries x strategies at one budget.

    Attributes
    ----------
    name / version:
        Identity of the suite; ``verify`` refuses baselines recorded for a
        different name or version, so bumping ``version`` is the explicit
        act of re-pinning the goldens after an intentional change.
    entries:
        The pinned instance families.
    strategies:
        Strategies benchmarked on every instance; the baseline strategy is
        always included.
    baseline_strategy:
        The certification baseline (default ``"exact"``); its induced cost
        anchors ``gap`` and its ``metadata["certification"]["lower_bound"]``
        anchors ``certified_gap``.
    alpha:
        Leader budget every strategy runs with.
    gap_tolerance:
        Slack ``verify`` allows on top of a pinned gap before declaring a
        regression.
    """

    name: str
    version: int = 1
    entries: tuple = ()
    strategies: tuple = ("exact", "llf", "scale", "aloof")
    baseline_strategy: str = "exact"
    alpha: float = 0.5
    gap_tolerance: float = 1e-3
    description: str = ""

    def __init__(self, name: str, entries: Sequence[SuiteEntry] = (), *,
                 version: int = 1,
                 strategies: Sequence[str] = ("exact", "llf", "scale",
                                              "aloof"),
                 baseline_strategy: str = "exact",
                 alpha: float = 0.5,
                 gap_tolerance: float = 1e-3,
                 description: str = "") -> None:
        if not name or not isinstance(name, str):
            raise ModelError(f"suite name must be a non-empty string, "
                             f"got {name!r}")
        if int(version) < 1:
            raise ModelError(f"suite version must be >= 1, got {version!r}")
        if not 0.0 <= alpha <= 1.0:
            raise ModelError(f"alpha must lie in [0, 1], got {alpha!r}")
        if not gap_tolerance >= 0.0:
            raise ModelError(
                f"gap_tolerance must be >= 0, got {gap_tolerance!r}")
        entries = tuple(entries)
        labels = [entry.label for entry in entries]
        if len(set(labels)) != len(labels):
            dupes = sorted({l for l in labels if labels.count(l) > 1})
            raise ModelError(f"duplicate suite entry labels: {dupes}")
        strategies = tuple(dict.fromkeys(strategies))  # stable de-dup
        if baseline_strategy not in strategies:
            strategies = (baseline_strategy,) + strategies
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "version", int(version))
        object.__setattr__(self, "entries", entries)
        object.__setattr__(self, "strategies", strategies)
        object.__setattr__(self, "baseline_strategy", str(baseline_strategy))
        object.__setattr__(self, "alpha", float(alpha))
        object.__setattr__(self, "gap_tolerance", float(gap_tolerance))
        object.__setattr__(self, "description", str(description))

    @property
    def num_instances(self) -> int:
        return sum(len(entry.seeds) for entry in self.entries)

    @property
    def num_cells(self) -> int:
        return self.num_instances * len(self.strategies)

    def to_study_spec(self) -> StudySpec:
        """The suite as a Study pipeline plan (one axis per entry)."""
        axes = [GeneratorAxis(entry.generator, entry.params_dict,
                              seeds=entry.seeds, label=entry.label)
                for entry in self.entries]
        return StudySpec(
            f"bench-{self.name}-v{self.version}", axes,
            strategies=self.strategies,
            configs=(SolveConfig(alpha=self.alpha),),
            description=self.description or f"benchmark suite {self.name!r}")

    def validate(self) -> None:
        """Fail fast: resolve every generator and strategy name."""
        self.to_study_spec().validate()

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "entries": [entry.to_dict() for entry in self.entries],
            "strategies": list(self.strategies),
            "baseline_strategy": self.baseline_strategy,
            "alpha": self.alpha,
            "gap_tolerance": self.gap_tolerance,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SuiteSpec":
        if not isinstance(data, Mapping) or "name" not in data:
            raise ModelError(f"invalid SuiteSpec payload: {data!r}")
        return cls(
            data["name"],
            [SuiteEntry.from_dict(e) for e in data.get("entries", [])],
            version=data.get("version", 1),
            strategies=data.get("strategies", ("exact", "llf", "scale",
                                               "aloof")),
            baseline_strategy=data.get("baseline_strategy", "exact"),
            alpha=data.get("alpha", 0.5),
            gap_tolerance=data.get("gap_tolerance", 1e-3),
            description=data.get("description", ""),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical suite JSON (stable across processes)."""
        return hashlib.sha256(
            _canonical(self.to_dict()).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GapRow:
    """One ``(instance, strategy)`` line of the certified gap table.

    ``gap`` is the relative excess over the exact baseline's certified
    cost; ``certified_gap`` is the relative excess over the MILP *lower
    bound* — an unconditional certificate (it cannot blame the baseline
    heuristically failing, because the lower bound is proved).  ``gap`` may
    be negative for strategies that run a different budget than the
    baseline (``optop`` chooses its own ``beta``).
    """

    label: str
    generator: str
    params: str
    seed: int
    strategy: str
    instance_digest: str
    cost: float
    exact_cost: float
    lower_bound: float
    gap: float
    certified_gap: float

    @property
    def key(self) -> str:
        """The baseline-file key of this row."""
        return f"{self.label}/s{self.seed}/{self.strategy}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label, "generator": self.generator,
            "params": json.loads(self.params), "seed": self.seed,
            "strategy": self.strategy,
            "instance_digest": self.instance_digest,
            "cost": self.cost, "exact_cost": self.exact_cost,
            "lower_bound": self.lower_bound,
            "gap": self.gap, "certified_gap": self.certified_gap,
        }


@dataclass
class SuiteReport:
    """The outcome of :func:`run_suite`: gap rows plus resume counters."""

    suite: SuiteSpec
    rows: List[GapRow] = field(default_factory=list)
    store_hits: int = 0
    solver_calls: int = 0
    fully_resumed: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[GapRow]:
        return iter(self.rows)

    def row(self, key: str) -> Optional[GapRow]:
        """The row with baseline key ``key`` (``label/s<seed>/<strategy>``)."""
        for row in self.rows:
            if row.key == key:
                return row
        return None

    def max_gap(self, strategy: str) -> float:
        """The worst certified gap of ``strategy`` across the suite."""
        gaps = [row.certified_gap for row in self.rows
                if row.strategy == strategy]
        if not gaps:
            raise ModelError(f"suite has no rows for strategy {strategy!r}")
        return max(gaps)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite.to_dict(),
            "suite_digest": self.suite.digest(),
            "rows": [row.to_dict() for row in self.rows],
            "store_hits": self.store_hits,
            "solver_calls": self.solver_calls,
            "fully_resumed": self.fully_resumed,
        }

    def to_json(self, path: Optional[Union[str, Path]] = None, *,
                indent: Optional[int] = 2) -> str:
        text = json.dumps(self.to_dict(), sort_keys=True, indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        import csv
        import io

        headers = ("label", "generator", "seed", "strategy",
                   "instance_digest", "cost", "exact_cost", "lower_bound",
                   "gap", "certified_gap")
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(headers)
        for row in self.rows:
            writer.writerow((row.label, row.generator, row.seed,
                             row.strategy, row.instance_digest,
                             repr(row.cost), repr(row.exact_cost),
                             repr(row.lower_bound), repr(row.gap),
                             repr(row.certified_gap)))
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_table(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append((row.label, row.seed, row.strategy,
                               f"{row.cost:.6f}", f"{row.exact_cost:.6f}",
                               f"{row.lower_bound:.6f}",
                               f"{row.gap:+.2e}", f"{row.certified_gap:.2e}"))
        return format_table(
            ("entry", "seed", "strategy", "cost", "exact cost",
             "lower bound", "gap", "certified gap"), table_rows,
            title=f"Suite {self.suite.name!r} v{self.suite.version} "
                  f"(alpha = {self.suite.alpha})")


def _relative(value: float, reference: float) -> float:
    return (value - reference) / max(abs(reference), _GAP_FLOOR)


def run_suite(spec: SuiteSpec, *, store: Optional[ArtifactStore] = None,
              max_workers: Optional[int] = 0,
              study_report: Optional[StudyReport] = None) -> SuiteReport:
    """Execute a suite through the Study pipeline and build the gap table.

    With a ``store`` the run is resumable: cells already present are served
    from artifacts, and ``report.fully_resumed`` asserts the second pass
    made zero solver calls.  ``study_report`` lets callers that already ran
    the study (e.g. tests inspecting the raw cells) skip re-execution.
    """
    if not spec.entries:
        raise ModelError(f"suite {spec.name!r} has no entries")
    study = study_report if study_report is not None else run_study(
        spec.to_study_spec(), store=store, max_workers=max_workers)

    # Index the cells by instance coordinate; the baseline strategy anchors
    # every other strategy's row for the same (entry, seed).
    by_instance: Dict[tuple, Dict[str, Any]] = {}
    for result in study.results:
        coord = (result.cell.label, result.cell.params, result.cell.seed)
        by_instance.setdefault(coord, {})[result.cell.strategy] = result

    rows: List[GapRow] = []
    for coord in by_instance:
        label, params, seed = coord
        cells = by_instance[coord]
        baseline = cells.get(spec.baseline_strategy)
        if baseline is None:
            raise ModelError(
                f"suite {spec.name!r}: no {spec.baseline_strategy!r} cell "
                f"for entry {label!r} seed {seed}")
        certification = (baseline.report.metadata or {}).get("certification")
        if not isinstance(certification, Mapping):
            raise ModelError(
                f"baseline strategy {spec.baseline_strategy!r} reported no "
                f"certification metadata for entry {label!r} seed {seed}")
        exact_cost = float(baseline.report.induced_cost)
        lower_bound = float(certification["lower_bound"])
        # Store-less runs skip digest computation in the study runner; the
        # digest keys the baseline file, so recover it from the cell here.
        digest = baseline.instance_digest or _instance_digest(
            baseline.cell.make_instance())
        for strategy in spec.strategies:
            result = cells.get(strategy)
            if result is None:
                raise ModelError(
                    f"suite {spec.name!r}: missing {strategy!r} cell for "
                    f"entry {label!r} seed {seed}")
            cost = float(result.report.induced_cost)
            rows.append(GapRow(
                label=label, generator=result.cell.generator, params=params,
                seed=seed, strategy=strategy,
                instance_digest=result.instance_digest or digest,
                cost=cost, exact_cost=exact_cost, lower_bound=lower_bound,
                gap=_relative(cost, exact_cost),
                certified_gap=_relative(cost, lower_bound)))
    rows.sort(key=lambda row: (row.label, row.seed,
                               spec.strategies.index(row.strategy)))
    return SuiteReport(
        suite=spec, rows=rows, store_hits=study.store_hits,
        solver_calls=study.solver_calls, fully_resumed=study.fully_resumed)


# --------------------------------------------------------------------------- #
# Baseline pinning and verification
# --------------------------------------------------------------------------- #
def baseline_payload(report: SuiteReport) -> Dict[str, Any]:
    """The JSON payload ``verify_suite`` gates future runs against."""
    return {
        "suite": report.suite.name,
        "version": report.suite.version,
        "gap_tolerance": report.suite.gap_tolerance,
        "entries": {row.key: {"digest": row.instance_digest,
                              "gap": row.gap}
                    for row in report.rows},
    }


def verify_suite(report: SuiteReport,
                 baseline: Union[Mapping[str, Any], str, Path],
                 ) -> List[str]:
    """Check a suite report against a pinned baseline.

    Returns the list of violations (empty = pass):

    * suite name / version mismatch (the baseline was pinned for a
      different suite — re-pin explicitly instead of comparing),
    * **digest drift** — a regenerated instance no longer hashes to its
      pinned digest (the generator's construction or seeding changed),
    * **gap regression** — a strategy's gap exceeds the pinned gap by more
      than the baseline's ``gap_tolerance``,
    * rows the baseline pins but the report no longer produces.
    """
    if isinstance(baseline, (str, Path)):
        try:
            baseline = json.loads(Path(baseline).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ModelError(f"cannot load suite baseline: {exc}") from exc
    if not isinstance(baseline, Mapping) or "entries" not in baseline:
        raise ModelError(f"invalid suite baseline payload: {baseline!r}")

    violations: List[str] = []
    if baseline.get("suite") != report.suite.name:
        violations.append(
            f"baseline pins suite {baseline.get('suite')!r} but the report "
            f"is for {report.suite.name!r}")
    if int(baseline.get("version", 0)) != report.suite.version:
        violations.append(
            f"baseline pins version {baseline.get('version')!r} but the "
            f"suite is at version {report.suite.version}")
    if violations:
        return violations

    tolerance = float(baseline.get("gap_tolerance",
                                   report.suite.gap_tolerance))
    for key in sorted(baseline["entries"]):
        pinned = baseline["entries"][key]
        row = report.row(key)
        if row is None:
            violations.append(f"{key}: pinned by the baseline but missing "
                              f"from the report")
            continue
        if row.instance_digest != pinned.get("digest"):
            violations.append(
                f"{key}: instance digest drifted "
                f"({pinned.get('digest')!r} -> {row.instance_digest!r})")
        pinned_gap = float(pinned.get("gap", 0.0))
        if row.gap > pinned_gap + tolerance:
            violations.append(
                f"{key}: gap regressed from {pinned_gap:.6e} to "
                f"{row.gap:.6e} (tolerance {tolerance:.1e})")
    return violations


# --------------------------------------------------------------------------- #
# Built-in suites
# --------------------------------------------------------------------------- #
def _small_suite() -> SuiteSpec:
    return SuiteSpec(
        "small",
        [
            SuiteEntry("neardeg", "near_degenerate_breakpoints",
                       {"num_links": 3, "epsilon": 1e-6, "demand": 1.5},
                       seeds=(0, 1, 2)),
            SuiteEntry("heavytail", "heavy_tail_capacity",
                       {"num_links": 3, "demand_fraction": 0.9,
                        "tail_index": 1.5},
                       seeds=(0, 1, 2)),
            SuiteEntry("pigouchain", "pigou_chain",
                       {"num_blocks": 2, "degree": 2.0}, seeds=(0,)),
            SuiteEntry("soup", "mixed_family_soup",
                       {"num_links": 5, "demand": 1.0}, seeds=(0, 1, 2)),
        ],
        version=1,
        strategies=("exact", "llf", "scale", "aloof", "optop"),
        alpha=0.5,
        gap_tolerance=1e-3,
        description="Four adversarial families at alpha = 0.5, certified "
                    "against the MILP exact baseline.")


#: The built-in suite registry (name -> factory), mirroring named studies.
SUITES: Dict[str, Any] = {"small": _small_suite}


def available_suites() -> List[str]:
    """Names of the built-in benchmark suites."""
    return sorted(SUITES)


def get_suite(name: str) -> SuiteSpec:
    """Resolve a built-in suite by name."""
    try:
        factory = SUITES[name]
    except KeyError:
        known = ", ".join(available_suites()) or "<none>"
        raise ModelError(
            f"unknown suite {name!r}; available suites: {known}") from None
    spec = factory()
    # Touch every generator up front so a bad registration fails loudly at
    # resolution time, not in the middle of a run.
    for entry in spec.entries:
        get_generator(entry.generator)
    return spec
