"""Named generic studies shipped with the package.

Small, self-contained :class:`~repro.study.spec.StudySpec` definitions that
are useful on their own and double as living documentation of the study API.
The paper-reproduction experiments (E1-E14) and the design ablations
(A1-A3) live in :mod:`repro.analysis.studies`, which builds on this layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.api.config import SolveConfig
from repro.exceptions import ModelError
from repro.study.spec import GeneratorAxis, StudySpec

__all__ = ["named_studies", "get_named_study", "register_named_study"]


def smoke_study(*, num_instances: int = 8, num_links: int = 6,
                demand: float = 2.0) -> StudySpec:
    """A small, fast study used by CI to verify the resume property.

    Random linear parallel links solved with OpTop; a second run over the
    same store must be 100% artifact hits (zero solver calls).
    """
    return StudySpec(
        "smoke",
        [GeneratorAxis("random_linear_parallel",
                       {"num_links": int(num_links), "demand": float(demand)},
                       seeds=range(int(num_instances)),
                       label="linear")],
        strategies=("optop",),
        configs=(SolveConfig(),),
        description="CI smoke study: OpTop on random linear parallel links.")


def baseline_comparison_study(*, num_instances: int = 4, num_links: int = 5,
                              demand: float = 2.0) -> StudySpec:
    """OpTop against the budgeted baselines at a half-demand budget."""
    return StudySpec(
        "baseline-comparison",
        [GeneratorAxis("random_linear_parallel",
                       {"num_links": int(num_links), "demand": float(demand)},
                       seeds=range(int(num_instances)),
                       label="linear")],
        strategies=("optop", "llf", "scale"),
        configs=(SolveConfig(alpha=0.5, compute_nash=False),),
        description="OpTop vs LLF vs SCALE on a random linear family.")


def backend_agreement_study(*, seeds: int = 2) -> StudySpec:
    """The same networks solved under each equilibrium backend."""
    return StudySpec(
        "backend-agreement",
        [GeneratorAxis("grid_network", {"rows": 3, "cols": 3, "demand": 2.0},
                       seeds=range(int(seeds)), label="grid")],
        strategies=("mop",),
        configs=(SolveConfig(backend="frank_wolfe", compute_nash=False),
                 SolveConfig(backend="pathbased", compute_nash=False)),
        description="MOP under the Frank-Wolfe and path-based backends.")


#: Builders of the named generic studies (name -> keyword-taking factory).
_NAMED: Dict[str, Callable[..., StudySpec]] = {
    "smoke": smoke_study,
    "baseline-comparison": baseline_comparison_study,
    "backend-agreement": backend_agreement_study,
}


def named_studies() -> List[str]:
    """Sorted names of the built-in generic studies."""
    return sorted(_NAMED)


def get_named_study(name: str, **kwargs) -> StudySpec:
    """Build a named generic study (keyword arguments parameterise it)."""
    try:
        builder = _NAMED[name]
    except KeyError:
        known = ", ".join(named_studies()) or "<none>"
        raise ModelError(
            f"unknown study {name!r}; named studies: {known}") from None
    return builder(**kwargs)


def register_named_study(name: str,
                         builder: Callable[..., StudySpec]) -> None:
    """Add a generic study builder under ``name`` (e.g. from user code)."""
    if name in _NAMED:
        raise ModelError(f"study {name!r} is already registered")
    if not callable(builder):
        raise ModelError(f"study builder for {name!r} must be callable")
    _NAMED[name] = builder
