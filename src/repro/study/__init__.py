"""`repro.study` — the declarative, resumable experiment pipeline.

Where :mod:`repro.api` answers "solve this instance with this strategy",
this package answers "produce all the evidence for this campaign":

* a **generator registry** (:data:`GENERATORS`, :func:`register_generator`,
  :func:`make_instance`) wrapping every instance factory behind one
  ``(params, seed) -> instance`` protocol with JSON-schema'd params;
* **declarative specs** (:class:`StudySpec`, :class:`GeneratorAxis`): a
  generator grid x strategy grid x config grid that lazily expands into a
  deterministic plan of :class:`StudyCell` work items;
* a **content-addressed artifact store** (:class:`ArtifactStore`): each
  cell's report lands under the digest of *what was solved*, so re-running
  a study resumes — only missing cells are solved;
* the **runner** (:func:`run_study`): executes a plan through
  :func:`repro.api.solve_many` (inheriting its result cache and process
  pool) and aggregates a :class:`StudyReport` with tables and JSON/CSV
  export.

>>> from repro.study import GeneratorAxis, StudySpec, run_study
>>> spec = StudySpec("demo",
...                  [GeneratorAxis("random_linear_parallel",
...                                 {"num_links": 4, "demand": 2.0},
...                                 seeds=range(3))],
...                  strategies=("optop",))
>>> study = run_study(spec)
>>> len(study)
3
>>> all(r.report.attains_optimum for r in study)
True

The paper-reproduction experiments E1-E14 are defined on this pipeline in
:mod:`repro.analysis.studies`; ``repro study run/list/resume`` exposes both
layers on the command line.
"""

from repro.study.generators import (
    GENERATORS,
    GeneratorEntry,
    GeneratorRegistry,
    available_generators,
    generator_schema,
    get_generator,
    make_instance,
    register_generator,
    validate_params,
)
from repro.study.library import (
    get_named_study,
    named_studies,
    register_named_study,
)
from repro.study.report import CellResult, StudyReport
from repro.study.runner import run_study, solve_cell
from repro.study.spec import GeneratorAxis, StudyCell, StudySpec
from repro.study.store import ArtifactStore, artifact_key

__all__ = [
    "GENERATORS",
    "GeneratorEntry",
    "GeneratorRegistry",
    "register_generator",
    "get_generator",
    "available_generators",
    "generator_schema",
    "make_instance",
    "validate_params",
    "GeneratorAxis",
    "StudyCell",
    "StudySpec",
    "ArtifactStore",
    "artifact_key",
    "CellResult",
    "StudyReport",
    "run_study",
    "solve_cell",
    "named_studies",
    "get_named_study",
    "register_named_study",
]
