"""Execution of study plans through the batch solver session.

:func:`run_study` walks a :class:`~repro.study.spec.StudySpec` plan cell by
cell, serves whatever the artifact store already holds, groups the missing
cells by ``(strategy, config)`` and executes each group with one
:func:`repro.api.solve_many` call — inheriting its instance-digest result
cache and its process-pool fan-out for free.  Freshly solved reports are
written back to the store, so the next run of the same (or an overlapping)
spec resumes instead of recomputing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.api.config import SolveConfig
from repro.api.session import cache_stats, solve, solve_many
from repro.exceptions import ModelError
from repro.obs.metrics import MetricsRegistry
from repro.serialization import instance_digest
from repro.study.report import CellResult, StudyReport
from repro.study.spec import StudySpec
from repro.study.store import ArtifactStore, artifact_key, storable_strategy

__all__ = ["run_study", "solve_cell"]

#: Kept under the historic private name for in-module readability; the rule
#: itself lives next to artifact_key so the serving layer shares it.
_storable = storable_strategy


def solve_cell(instance, strategy: str, config: SolveConfig, *,
               store: Optional[ArtifactStore] = None):
    """Solve one ad-hoc cell through the artifact store.

    The escape hatch for *dependent* cells — follow-up solves whose
    parameters derive from an earlier cell's result (e.g. "brute force just
    below the measured beta") and therefore cannot appear in a static plan.
    Store hit -> the stored report; miss -> :func:`repro.api.solve` (which
    still consults the in-process cache) followed by a store write, so even
    dependent cells resume across runs.
    """
    key: Optional[str] = None
    if store is not None and config.cache and _storable(strategy):
        try:
            key = artifact_key(instance_digest(instance), strategy, config)
        except ModelError:
            key = None
        if key is not None:
            cached = store.get(key)
            if cached is not None:
                return cached
    report = solve(instance, strategy, config=config)
    if store is not None and key is not None:
        store.put(key, report)
    return report


def run_study(spec: StudySpec, *, store: Optional[ArtifactStore] = None,
              max_workers: Optional[int] = 0,
              registry: Optional[MetricsRegistry] = None) -> StudyReport:
    """Execute a study spec and aggregate the results.

    Parameters
    ----------
    spec:
        The declarative plan to execute.
    store:
        Optional :class:`~repro.study.store.ArtifactStore`.  When given,
        cells whose artifacts exist are *not* re-solved (resume), and every
        freshly solved cell is written back.
    max_workers:
        Process-pool width for the cache-miss batches, forwarded to
        :func:`repro.api.solve_many`; the default ``0`` solves sequentially
        in process (deterministic and cheap for the small studies the
        experiments use), ``None`` picks ``min(pending, cpu_count)``.
    registry:
        Optional :class:`repro.obs.MetricsRegistry`.  When given, the run
        increments ``repro_study_cells_total``,
        ``repro_study_resumed_total`` (cells served from the store) and
        ``repro_study_solved_total{strategy=...}`` — an accumulating view
        over many ``run_study`` calls that the per-run
        :class:`~repro.study.report.StudyReport` counters cannot give.

    Returns
    -------
    StudyReport
        Every cell's report in plan order, plus store/cache counters for
        this run (``report.fully_resumed`` asserts the zero-solver-call
        resume property).
    """
    spec.validate()
    before = cache_stats()
    store_stats_before = store.stats() if store is not None else None

    cells = []
    instances = []
    digests: List[Optional[str]] = []
    keys: List[Optional[str]] = []
    slots: List[Optional[CellResult]] = []
    pending: "OrderedDict[Tuple[str, str], List[int]]" = OrderedDict()
    pending_configs: Dict[Tuple[str, str], SolveConfig] = {}

    for cell in spec.expand():
        i = len(cells)
        cells.append(cell)
        instance = cell.make_instance()
        instances.append(instance)
        digest = None
        key = None
        if store is not None and cell.config.cache:
            # The digest is only needed to address artifacts; without a
            # store, solve_many computes its own cache keys.  cache=False
            # means "never reuse results", and the artifact store honours
            # it like the in-process cache does — timing cells stay fresh.
            try:
                digest = instance_digest(instance)
            except ModelError:
                digest = None
            if digest is not None and _storable(cell.strategy):
                key = artifact_key(digest, cell.strategy, cell.config)
        digests.append(digest)
        keys.append(key)
        stored = store.get(key) if (store is not None and key is not None) \
            else None
        if stored is not None:
            slots.append(CellResult(cell=cell, report=stored,
                                    instance_digest=digest,
                                    artifact_key=key, from_store=True))
            continue
        slots.append(None)
        group = (cell.strategy, cell.config.to_json())
        pending.setdefault(group, []).append(i)
        pending_configs[group] = cell.config

    uncached_calls = 0
    for (strategy, _), indices in pending.items():
        config = pending_configs[(strategy, _)]
        batch = [instances[i] for i in indices]
        if not config.cache:
            # Cache-free cells never touch the session counters; count
            # their executions here so solver_calls stays truthful.
            uncached_calls += len(batch)
        reports = solve_many(batch, strategy, config=config,
                             max_workers=max_workers)
        for i, report in zip(indices, reports):
            slots[i] = CellResult(cell=cells[i], report=report,
                                  instance_digest=digests[i] or "",
                                  artifact_key=keys[i] or "",
                                  from_store=False)
            if store is not None and keys[i] is not None:
                store.put(keys[i], report)

    missing = [i for i, slot in enumerate(slots) if slot is None]
    assert not missing, f"run_study left unfilled cells: {missing}"

    after = cache_stats()
    result = StudyReport(
        spec=spec,
        results=[slot for slot in slots if slot is not None],
        cache_hits=after["hits"] - before["hits"],
        cache_misses=after["misses"] - before["misses"],
        uncached_calls=uncached_calls,
    )
    if store is not None and store_stats_before is not None:
        now = store.stats()
        result.store_hits = now["hits"] - store_stats_before["hits"]
        result.store_misses = now["misses"] - store_stats_before["misses"]
    if registry is not None:
        registry.counter("repro_study_cells_total",
                         "Study cells executed (all sources).").inc(
            len(result.results))
        resumed = sum(1 for slot in result.results if slot.from_store)
        if resumed:
            registry.counter("repro_study_resumed_total",
                             "Study cells served from the artifact "
                             "store.").inc(resumed)
        solved = registry.counter("repro_study_solved_total",
                                  "Study cells solved this run, by "
                                  "strategy.", labels=("strategy",))
        for slot in result.results:
            if not slot.from_store:
                solved.labels(strategy=slot.cell.strategy).inc()
    return result
