"""Content-addressed, resumable artifact store for solve reports.

Each executed study cell lands on disk as one JSON file named by the SHA-256
of *what was solved*: the instance digest, the strategy name and the
canonical config JSON.  The address is independent of which study produced
the artifact, so structurally identical work is shared across studies, and
re-running a study only solves the cells whose artifacts are missing —
deleting one file re-solves exactly one cell.

Layout (git-style fan-out to keep directories small)::

    <root>/
      ab/
        abcdef....json        # SolveReport.to_json()

The store never deletes on its own and writes atomically (temp file +
rename), so a crashed run leaves at worst a missing artifact, never a
corrupt one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.api.config import SolveConfig
from repro.api.registry import REGISTRY
from repro.api.report import SolveReport
from repro.exceptions import ModelError

__all__ = ["ArtifactStore", "artifact_key", "storable_strategy"]


def storable_strategy(strategy: str) -> bool:
    """Whether artifacts may serve/persist results for ``strategy``.

    Artifact keys are content-addressed by the strategy *name*: a
    persistent key cannot embed the process-local registry generation the
    in-memory caches use for invalidation.  A strategy re-registered in
    this process — a fresh implementation under a reused name — must
    therefore bypass the store entirely, or its artifacts would replay the
    previous implementation's results.  The study runner and the serving
    layer's tier-2 cache both apply this one rule.
    """
    return REGISTRY.generation(strategy) <= 1


def artifact_key(instance_digest: str, strategy: str,
                 config: SolveConfig) -> str:
    """The content address of one solved cell.

    SHA-256 over the canonical JSON of ``{instance digest, strategy, config}``
    — everything that determines the solver output.  Stable across processes
    and platforms because every component is itself canonical JSON.

    The strategy is addressed by *name*: unlike the in-process result cache
    the persistent store cannot mix in the registry generation, so changing
    a strategy's implementation under an existing name requires clearing the
    store (the study runner additionally refuses to serve artifacts for
    names re-registered within the current process).
    """
    payload = json.dumps(
        {"instance": instance_digest, "strategy": strategy,
         "config": json.loads(config.to_json())},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """On-disk key -> :class:`~repro.api.report.SolveReport` store.

    Tracks cumulative hit/miss counters (``stats()``) so callers — the study
    runner, the CI smoke check — can assert resume behaviour: a second run
    of the same study must be 100% hits.

    The store doubles as the tier-2 backend of the serving stack
    (:class:`repro.serve.TieredCache`): writes are atomic (temp file +
    ``os.replace``), so concurrent processes racing on one key leave exactly
    one intact artifact, and the counters are lock-guarded so concurrent
    submit threads never tear them.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {"hits": 0, "misses": 0, "writes": 0,
                                       "skipped_writes": 0}

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            self._stats[counter] += 1

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """The artifact path of ``key`` (two-level fan-out)."""
        if not key or len(key) < 3:
            raise ModelError(f"invalid artifact key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[SolveReport]:
        """Load the report stored under ``key``; ``None`` (a miss) if absent.

        A corrupt artifact raises :class:`~repro.exceptions.ModelError`
        naming the offending file rather than silently re-solving, so a
        damaged store surfaces loudly.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._count("misses")
            return None
        try:
            report = SolveReport.from_json(text)
        except ModelError as exc:
            raise ModelError(f"corrupt artifact {path}: {exc}") from exc
        self._count("hits")
        return report

    def put(self, key: str, report: SolveReport) -> Path:
        """Atomically write ``report`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("writes")
        return path

    def put_if_absent(self, key: str, report: SolveReport) -> Path:
        """Write ``report`` under ``key`` unless an artifact already exists.

        The read-through tier of a *shared* store — several cluster shards
        (or a shard and the study runner) pointing at one directory — uses
        this instead of :meth:`put`: content addressing makes every writer's
        payload for a key identical, so once any process has landed the
        artifact the remaining writers can skip the temp-file + rename I/O
        entirely.  Races stay safe (the fallback is the atomic :meth:`put`);
        skipped writes are counted as ``skipped_writes``, not ``writes``.
        """
        path = self.path_for(key)
        if path.exists():
            self._count("skipped_writes")
            return path
        return self.put(key, report)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        """Remove the artifact under ``key``; returns whether it existed."""
        path = self.path_for(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> Iterator[str]:
        """All artifact keys currently stored (sorted, for determinism)."""
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Cumulative ``{"hits", "misses", "writes"}`` of this store handle."""
        with self._stats_lock:
            return dict(self._stats)

    def reset_stats(self) -> None:
        """Zero the hit/miss/write counters (the artifacts stay)."""
        with self._stats_lock:
            for key in self._stats:
                self._stats[key] = 0
