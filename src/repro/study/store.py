"""Content-addressed, resumable artifact store for solve reports.

Each executed study cell lands on disk as one JSON file named by the SHA-256
of *what was solved*: the instance digest, the strategy name and the
canonical config JSON.  The address is independent of which study produced
the artifact, so structurally identical work is shared across studies, and
re-running a study only solves the cells whose artifacts are missing —
deleting one file re-solves exactly one cell.

Layout (git-style fan-out to keep directories small)::

    <root>/
      ab/
        abcdef....json        # {"sha256": ..., "report": {...}}
        abcdef....json.corrupt.0   # quarantined damaged artifact (if any)

Writes are atomic (temp file + rename) and every artifact embeds a SHA-256
content checksum over its canonical report JSON, verified on read.  A file
that fails to parse, fails the checksum, or was torn mid-write is
**quarantined** — renamed aside to ``<name>.json.corrupt.N``, counted in
``stats()["corrupt"]`` — and reported as a *miss*, so the damaged cell is
transparently re-solved (and the write-through replaces the artifact)
instead of crashing the read path.  Legacy artifacts written before the
checksum envelope (a bare ``SolveReport`` JSON object) still load.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Union

from repro.api.config import SolveConfig
from repro.api.registry import REGISTRY
from repro.api.report import SolveReport
from repro.exceptions import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector

__all__ = ["ArtifactStore", "artifact_key", "storable_strategy"]


def storable_strategy(strategy: str) -> bool:
    """Whether artifacts may serve/persist results for ``strategy``.

    Artifact keys are content-addressed by the strategy *name*: a
    persistent key cannot embed the process-local registry generation the
    in-memory caches use for invalidation.  A strategy re-registered in
    this process — a fresh implementation under a reused name — must
    therefore bypass the store entirely, or its artifacts would replay the
    previous implementation's results.  The study runner and the serving
    layer's tier-2 cache both apply this one rule.
    """
    return REGISTRY.generation(strategy) <= 1


def artifact_key(instance_digest: str, strategy: str,
                 config: SolveConfig) -> str:
    """The content address of one solved cell.

    SHA-256 over the canonical JSON of ``{instance digest, strategy, config}``
    — everything that determines the solver output.  Stable across processes
    and platforms because every component is itself canonical JSON.

    The strategy is addressed by *name*: unlike the in-process result cache
    the persistent store cannot mix in the registry generation, so changing
    a strategy's implementation under an existing name requires clearing the
    store (the study runner additionally refuses to serve artifacts for
    names re-registered within the current process).
    """
    payload = json.dumps(
        {"instance": instance_digest, "strategy": strategy,
         "config": json.loads(config.to_json())},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _payload_checksum(report_json: str) -> str:
    """SHA-256 content checksum of one artifact's report JSON."""
    return hashlib.sha256(report_json.encode("utf-8")).hexdigest()


class ArtifactStore:
    """On-disk key -> :class:`~repro.api.report.SolveReport` store.

    Tracks cumulative hit/miss counters (``stats()``) so callers — the study
    runner, the CI smoke check — can assert resume behaviour: a second run
    of the same study must be 100% hits.

    The store doubles as the tier-2 backend of the serving stack
    (:class:`repro.serve.TieredCache`): writes are atomic (temp file +
    ``os.replace``), so concurrent processes racing on one key leave exactly
    one intact artifact, and the counters are lock-guarded so concurrent
    submit threads never tear them.  Damaged artifacts — truncated, torn,
    checksum-mismatched — are quarantined on read (renamed aside, counted
    as ``corrupt``) and served as misses; see :meth:`get`.

    ``fault_injector`` is the chaos hook: an active
    :class:`repro.faults.FaultInjector` may turn a :meth:`put` into a torn
    write, a corrupt payload or an ``ENOSPC`` failure.  The default
    (``None``) costs one attribute check per write.
    """

    def __init__(self, root: Union[str, Path], *,
                 fault_injector: "Optional[FaultInjector]" = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._faults = fault_injector
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {"hits": 0, "misses": 0, "writes": 0,
                                       "skipped_writes": 0, "corrupt": 0}

    def _count(self, counter: str) -> None:
        # Monotonicity audit: this is the only place the counters mutate
        # (reset_stats aside), always under _stats_lock; stats() snapshots
        # under the same lock.  Counters are therefore monotone
        # non-decreasing between resets, under any thread interleaving.
        with self._stats_lock:
            self._stats[counter] += 1

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """The artifact path of ``key`` (two-level fan-out)."""
        if not key or len(key) < 3:
            raise ModelError(f"invalid artifact key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[SolveReport]:
        """Load the report stored under ``key``; ``None`` (a miss) if absent.

        A damaged artifact — zero-byte or truncated file, invalid JSON, a
        report that fails validation, or a checksum mismatch — is
        **quarantined** (renamed aside, counted in ``stats()["corrupt"]``)
        and reported as a miss, never raised out of the cache read path:
        the caller re-solves the cell and the write-through repairs the
        store.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError:
            # Unreadable (permissions, I/O error): a miss, not a crash.
            self._count("misses")
            return None
        report = self._decode_artifact(text)
        if report is None:
            self._quarantine(path)
            self._count("corrupt")
            self._count("misses")
            return None
        self._count("hits")
        return report

    @staticmethod
    def _decode_artifact(text: str) -> Optional[SolveReport]:
        """Parse + verify one artifact's bytes; ``None`` when damaged."""
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, ValueError):
            return None
        try:
            if isinstance(payload, dict) and "sha256" in payload \
                    and "report" in payload:
                report_json = json.dumps(
                    payload["report"], sort_keys=True,
                    separators=(",", ":"))
                if _payload_checksum(report_json) != payload["sha256"]:
                    return None
                return SolveReport.from_dict(payload["report"])
            # Legacy pre-checksum artifact: a bare SolveReport object.
            if isinstance(payload, dict):
                return SolveReport.from_dict(payload)
        except (ModelError, KeyError, TypeError, ValueError):
            return None
        return None

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Rename a damaged artifact aside (first free ``.corrupt.N``)."""
        for attempt in range(100):
            target = path.with_name(f"{path.name}.corrupt.{attempt}")
            if target.exists():
                continue
            try:
                os.replace(path, target)
                return target
            except FileNotFoundError:
                return None  # a concurrent reader quarantined it first
            except OSError:
                break
        # Renaming failed (read-only dir?): degrade to deletion-less miss;
        # the write-through will overwrite the damaged file in place.
        return None

    def put(self, key: str, report: SolveReport) -> Path:
        """Atomically write ``report`` under ``key``; returns the path.

        The artifact embeds a SHA-256 checksum over the canonical report
        JSON (``{"sha256": ..., "report": {...}}``), which :meth:`get`
        verifies — so silent bit rot or a torn write is caught on read and
        quarantined instead of served.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        report_json = json.dumps(json.loads(report.to_json()),
                                 sort_keys=True, separators=(",", ":"))
        # The checksum covers the TRUE payload, before any injected
        # damage — bit rot happens after a correct write, and a checksum
        # taken over already-corrupt bytes would dutifully verify them.
        checksum = _payload_checksum(report_json)
        if self._faults is not None:
            if self._faults.draw("store_enospc") is not None:
                raise OSError(errno.ENOSPC,
                              "injected ENOSPC (fault plan "
                              f"{self._faults.plan.name!r})", str(path))
            if self._faults.draw("store_corrupt_artifact") is not None:
                # Flip a byte mid-payload; whether or not the result still
                # parses as JSON, the checksum catches it on read.
                mid = len(report_json) // 2
                report_json = (report_json[:mid]
                               + ("X" if report_json[mid] != "X" else "Y")
                               + report_json[mid + 1:])
        body = json.dumps({"sha256": checksum,
                           "report": json.loads(report_json)
                           if _is_json(report_json) else report_json},
                          sort_keys=True, separators=(",", ":"))
        if self._faults is not None \
                and self._faults.draw("store_torn_write") is not None:
            body = body[:max(1, len(body) // 2)]  # torn mid-write
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("writes")
        return path

    def put_if_absent(self, key: str, report: SolveReport) -> Path:
        """Write ``report`` under ``key`` unless an artifact already exists.

        The read-through tier of a *shared* store — several cluster shards
        (or a shard and the study runner) pointing at one directory — uses
        this instead of :meth:`put`: content addressing makes every writer's
        payload for a key identical, so once any process has landed the
        artifact the remaining writers can skip the temp-file + rename I/O
        entirely.  Races stay safe (the fallback is the atomic :meth:`put`);
        skipped writes are counted as ``skipped_writes``, not ``writes``.
        """
        path = self.path_for(key)
        if path.exists():
            self._count("skipped_writes")
            return path
        return self.put(key, report)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        """Remove the artifact under ``key``; returns whether it existed."""
        path = self.path_for(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self) -> Iterator[str]:
        """All artifact keys currently stored (sorted, for determinism)."""
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def quarantined(self) -> Iterator[Path]:
        """Paths of every quarantined (damaged, renamed-aside) artifact."""
        yield from sorted(self.root.glob("??/*.json.corrupt.*"))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Cumulative counters of this store handle.

        ``hits`` / ``misses`` / ``writes`` / ``skipped_writes`` as before,
        plus ``corrupt``: artifacts quarantined by :meth:`get` (each also
        counted as a miss, so hit/miss accounting still balances).
        """
        with self._stats_lock:
            return dict(self._stats)

    def reset_stats(self) -> None:
        """Zero the hit/miss/write counters (the artifacts stay)."""
        with self._stats_lock:
            for key in self._stats:
                self._stats[key] = 0


def _is_json(text: str) -> bool:
    """Whether ``text`` still parses (an injected byte-flip may break it)."""
    try:
        json.loads(text)
        return True
    except (json.JSONDecodeError, ValueError):
        return False
