"""Aggregated results of one study run: tables, export, resume accounting.

:class:`StudyReport` collects every executed cell (its
:class:`~repro.study.spec.StudyCell` coordinates plus the
:class:`~repro.api.report.SolveReport` it produced) together with the
execution counters that make resume verifiable: how many cells were served
from the artifact store, how many from the in-process result cache, and how
many actually ran a solver.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.report import SolveReport
from repro.study.spec import StudyCell, StudySpec
from repro.utils.tables import format_table

__all__ = ["CellResult", "StudyReport"]

#: Default columns of :meth:`StudyReport.rows` / table / CSV export.
DEFAULT_FIELDS = ("index", "generator", "label", "seed", "strategy", "alpha",
                  "beta", "nash_cost", "optimum_cost", "induced_cost",
                  "cost_ratio", "price_of_anarchy", "wall_time", "source")


@dataclass(frozen=True)
class CellResult:
    """One solved cell: its plan coordinates, report and provenance."""

    cell: StudyCell
    report: SolveReport
    instance_digest: str
    artifact_key: str
    from_store: bool = False

    @property
    def source(self) -> str:
        """Where the report came from: ``"store"`` or ``"solver"``.

        ``"solver"`` covers both fresh solver calls and in-process cache
        hits inside :func:`repro.api.solve_many` (the session counters
        distinguish those).
        """
        return "store" if self.from_store else "solver"

    def value(self, name: str) -> Any:
        """Extract a named column (cell coordinate or report attribute)."""
        if name == "index":
            return self.cell.index
        if name == "generator":
            return self.cell.generator
        if name == "label":
            return self.cell.label
        if name == "seed":
            return self.cell.seed
        if name == "strategy":
            return self.cell.strategy
        if name == "params":
            return self.cell.params_dict
        if name == "source":
            return self.source
        if name == "instance_digest":
            return self.instance_digest
        if name == "artifact_key":
            return self.artifact_key
        return getattr(self.report, name)


@dataclass
class StudyReport:
    """The outcome of :func:`repro.study.run_study` on one spec.

    Attributes
    ----------
    spec:
        The spec that was executed.
    results:
        One :class:`CellResult` per plan cell, in plan order.
    store_hits / store_misses:
        Artifact-store counters of this run (0/0 without a store).
    cache_hits / cache_misses:
        :func:`repro.api.cache_stats` deltas of this run; ``cache_misses``
        counts solver executions of cache-enabled cells.
    uncached_calls:
        Solver executions of cells whose config disables the result cache
        (those never touch the session counters).
    """

    spec: StudySpec
    results: List[CellResult] = field(default_factory=list)
    store_hits: int = 0
    store_misses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    uncached_calls: int = 0

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> CellResult:
        return self.results[index]

    @property
    def solver_calls(self) -> int:
        """Cells that actually executed a strategy in this run."""
        return self.cache_misses + self.uncached_calls

    @property
    def fully_resumed(self) -> bool:
        """Whether every cell was served without running a solver."""
        return self.solver_calls == 0

    def reports(self) -> List[SolveReport]:
        """The raw solve reports in plan order."""
        return [result.report for result in self.results]

    def select(self, **coordinates: Any) -> List[CellResult]:
        """Cells matching every given coordinate.

        >>> study.select(label="linear", strategy="optop")  # doctest: +SKIP
        """
        out = []
        for result in self.results:
            if all(result.value(key) == wanted
                   for key, wanted in coordinates.items()):
                out.append(result)
        return out

    def one(self, **coordinates: Any) -> CellResult:
        """The unique cell matching the coordinates (raises otherwise)."""
        matches = self.select(**coordinates)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one cell matching {coordinates!r}, "
                f"found {len(matches)}")
        return matches[0]

    # ------------------------------------------------------------------ #
    # Tabular views and export
    # ------------------------------------------------------------------ #
    def rows(self, fields: Sequence[str] = DEFAULT_FIELDS) -> List[tuple]:
        """The study as rows of the requested columns."""
        return [tuple(result.value(name) for name in fields)
                for result in self.results]

    def to_table(self, fields: Sequence[str] = DEFAULT_FIELDS, *,
                 float_fmt: str = ".6g") -> str:
        """Render the study as an ASCII table."""
        title = f"Study {self.spec.name!r}: {len(self.results)} cells " \
                f"({self.store_hits} from store, {self.solver_calls} solved)"
        return format_table(fields, self.rows(fields), float_fmt=float_fmt,
                            title=title)

    def to_csv(self, path: Optional[Union[str, Path]] = None,
               fields: Sequence[str] = DEFAULT_FIELDS) -> str:
        """Export the rows as CSV text (and write it to ``path`` if given)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(fields)
        for row in self.rows(fields):
            writer.writerow(["" if value is None else value for value in row])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_dict(self) -> Dict[str, Any]:
        """Serialise spec, counters and every cell (JSON-compatible)."""
        return {
            "spec": self.spec.to_dict(),
            "counters": {
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "uncached_calls": self.uncached_calls,
                "solver_calls": self.solver_calls,
            },
            "cells": [
                {
                    "cell": result.cell.to_dict(),
                    "instance_digest": result.instance_digest,
                    "artifact_key": result.artifact_key,
                    "from_store": result.from_store,
                    "report": result.report.to_dict(),
                }
                for result in self.results
            ],
        }

    def to_json(self, path: Optional[Union[str, Path]] = None, *,
                indent: Optional[int] = 2) -> str:
        """Export the full study as JSON (and write to ``path`` if given)."""
        text = json.dumps(self.to_dict(), sort_keys=True, indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def summary(self) -> str:
        """One-line digest of the run (cells, resume sources, timings)."""
        total_wall = sum(result.report.wall_time for result in self.results)
        return (f"study {self.spec.name!r}: {len(self.results)} cells, "
                f"{self.store_hits} store hits, {self.cache_hits} cache hits, "
                f"{self.solver_calls} solver calls, "
                f"total solver time {total_wall:.3f}s")
