"""Instance-generator registry: every factory behind one ``(params, seed)`` protocol.

Mirrors the strategy registry of :mod:`repro.api.registry` on the *instance*
side: each factory of :mod:`repro.instances` is registered under a short name
together with a JSON-schema description of its parameters, and downstream
code (study specs, the CLI, the artifact layer) constructs instances by name:

>>> from repro.study import make_instance
>>> inst = make_instance("random_linear_parallel",
...                      {"num_links": 4, "demand": 2.0}, seed=7)
>>> inst.num_links
4

External code plugs in its own generators exactly like strategies:

>>> from repro.study import register_generator
>>> @register_generator("two_links", schema={
...     "type": "object",
...     "properties": {"demand": {"type": "number", "exclusiveMinimum": 0}},
... }, seeded=False)
... def two_links(demand=1.0):
...     ...

Because parameters are plain JSON values and every generator is
deterministic in ``(params, seed)``, a ``(generator, params, seed)`` triple
is a reproducible, digest-stable address for an instance — the foundation of
the resumable study pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.exceptions import InstanceError, ModelError
from repro.instances import (
    braess_paradox,
    figure_4_example,
    grid_network,
    heavy_tail_capacity,
    layered_network,
    mixed_family_soup,
    mm1_server_farm,
    near_degenerate_breakpoints,
    pigou,
    pigou_chain,
    pigou_nonlinear,
    random_affine_common_slope,
    random_linear_parallel,
    random_mixed_parallel,
    random_mm1_parallel,
    random_multicommodity_instance,
    random_polynomial_parallel,
    roughgarden_example,
    two_speed_example,
)
from repro.serialization import instance_from_dict

__all__ = [
    "GeneratorEntry",
    "GeneratorRegistry",
    "GENERATORS",
    "register_generator",
    "get_generator",
    "available_generators",
    "generator_schema",
    "make_instance",
    "validate_params",
]


# --------------------------------------------------------------------------- #
# Minimal JSON-schema validation (subset: enough for generator params)
# --------------------------------------------------------------------------- #
_TYPE_CHECKS: Dict[str, Callable[[Any], bool]] = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def _check_value(schema: Mapping[str, Any], value: Any, path: str) -> None:
    kind = schema.get("type")
    if kind is not None:
        check = _TYPE_CHECKS.get(kind)
        if check is None:
            raise ModelError(f"unsupported schema type {kind!r} at {path}")
        if not check(value):
            raise ModelError(
                f"parameter {path} must be of type {kind!r}, got "
                f"{type(value).__name__} ({value!r})")
    if "enum" in schema and value not in schema["enum"]:
        raise ModelError(
            f"parameter {path} must be one of {schema['enum']!r}, got {value!r}")
    if "minimum" in schema and value < schema["minimum"]:
        raise ModelError(
            f"parameter {path} must be >= {schema['minimum']}, got {value!r}")
    if "maximum" in schema and value > schema["maximum"]:
        raise ModelError(
            f"parameter {path} must be <= {schema['maximum']}, got {value!r}")
    if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
        raise ModelError(
            f"parameter {path} must be > {schema['exclusiveMinimum']}, "
            f"got {value!r}")
    if "exclusiveMaximum" in schema and value >= schema["exclusiveMaximum"]:
        raise ModelError(
            f"parameter {path} must be < {schema['exclusiveMaximum']}, "
            f"got {value!r}")
    if kind == "array":
        items = schema.get("items")
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise ModelError(f"parameter {path} needs at least "
                             f"{schema['minItems']} items, got {len(value)}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            raise ModelError(f"parameter {path} allows at most "
                             f"{schema['maxItems']} items, got {len(value)}")
        if items is not None:
            for i, item in enumerate(value):
                _check_value(items, item, f"{path}[{i}]")
    if kind == "object" and "properties" in schema:
        _check_object(schema, value, path)


def _check_object(schema: Mapping[str, Any], params: Mapping[str, Any],
                  path: str) -> None:
    properties = schema.get("properties", {})
    for name in schema.get("required", ()):
        if name not in params:
            raise ModelError(f"missing required parameter {path}.{name}"
                             if path else f"missing required parameter {name!r}")
    if not schema.get("additionalProperties", False):
        unknown = set(params) - set(properties)
        if unknown:
            raise ModelError(
                f"unknown parameters {sorted(unknown)!r}"
                + (f" at {path}" if path else "")
                + f"; allowed: {sorted(properties)}")
    for name, value in params.items():
        if name in properties:
            _check_value(properties[name], value,
                         f"{path}.{name}" if path else name)


def validate_params(schema: Mapping[str, Any],
                    params: Mapping[str, Any]) -> None:
    """Validate ``params`` against a (subset-)JSON-schema ``schema``.

    Supports the pieces generator schemas use: ``type`` (object / array /
    string / integer / number / boolean), ``properties`` / ``required`` /
    ``additionalProperties``, ``items`` / ``minItems`` / ``maxItems``,
    ``enum`` and the numeric bounds ``minimum`` / ``maximum`` /
    ``exclusiveMinimum`` / ``exclusiveMaximum``.  Raises
    :class:`~repro.exceptions.ModelError` on the first violation.
    """
    if not isinstance(params, Mapping):
        raise ModelError(f"generator params must be a mapping, got "
                         f"{type(params).__name__}")
    _check_object(schema, params, "")


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeneratorEntry:
    """One registered instance generator.

    Attributes
    ----------
    name:
        Registry name.
    factory:
        The underlying factory callable (keyword arguments = params).
    schema:
        JSON-schema (subset) describing the accepted params.
    seeded:
        Whether the factory accepts a ``seed`` keyword; unseeded (canonical)
        generators ignore the seed entirely, so every seed yields the same
        instance.
    description:
        One-line human-readable summary (defaults to the factory's first
        docstring line).
    """

    name: str
    factory: Callable[..., Any]
    schema: Mapping[str, Any] = field(default_factory=dict)
    seeded: bool = True
    description: str = ""

    def build(self, params: Mapping[str, Any], seed: int = 0) -> Any:
        """Construct the instance described by ``(params, seed)``."""
        validate_params(self.schema, params)
        kwargs = {key: _coerce(value) for key, value in params.items()}
        try:
            if self.seeded:
                return self.factory(seed=int(seed), **kwargs)
            return self.factory(**kwargs)
        except (TypeError, InstanceError, ModelError) as exc:
            raise ModelError(
                f"generator {self.name!r} rejected params {dict(params)!r} "
                f"(seed {seed}): {exc}") from exc


def _coerce(value: Any) -> Any:
    """JSON arrays arrive as lists; factories expect tuples for ranges."""
    if isinstance(value, list):
        return tuple(_coerce(v) for v in value)
    return value


class GeneratorRegistry:
    """Name -> :class:`GeneratorEntry` mapping with decorator registration."""

    def __init__(self) -> None:
        self._entries: Dict[str, GeneratorEntry] = {}

    def register(self, name: str, factory: Optional[Callable] = None, *,
                 schema: Optional[Mapping[str, Any]] = None,
                 seeded: bool = True,
                 description: str = "") -> Callable:
        """Register ``factory`` under ``name`` (direct call or decorator).

        ``schema`` is a JSON-schema (subset) for the params mapping;
        ``seeded`` declares whether the factory takes a ``seed`` keyword.
        Re-registering an existing name is an error; :meth:`unregister`
        first to replace a generator.
        """
        if not name or not isinstance(name, str):
            raise ModelError(
                f"generator name must be a non-empty string, got {name!r}")

        def decorator(fn: Callable) -> Callable:
            if name in self._entries:
                raise ModelError(f"generator {name!r} is already registered")
            if not callable(fn):
                raise ModelError(f"generator {name!r} must be callable, got "
                                 f"{type(fn).__name__}")
            doc = description or (fn.__doc__ or "").strip().split("\n")[0]
            entry_schema = dict(schema) if schema is not None else {
                "type": "object", "properties": {},
                "additionalProperties": True}
            self._entries[name] = GeneratorEntry(
                name=name, factory=fn, schema=entry_schema, seeded=seeded,
                description=doc)
            return fn

        if factory is not None:
            return decorator(factory)
        return decorator

    def unregister(self, name: str) -> GeneratorEntry:
        """Remove and return the entry registered under ``name``."""
        try:
            return self._entries.pop(name)
        except KeyError:
            raise ModelError(f"generator {name!r} is not registered") from None

    def get(self, name: str) -> GeneratorEntry:
        """Look up a generator; unknown names list the alternatives."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise ModelError(
                f"unknown generator {name!r}; registered generators: {known}"
            ) from None

    def names(self) -> List[str]:
        """Sorted names of all registered generators."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: The default generator registry used by study specs and the CLI.
GENERATORS = GeneratorRegistry()


def register_generator(name: str, factory: Optional[Callable] = None, *,
                       schema: Optional[Mapping[str, Any]] = None,
                       seeded: bool = True,
                       description: str = "") -> Callable:
    """Register a generator in the default registry (decorator-friendly)."""
    return GENERATORS.register(name, factory, schema=schema, seeded=seeded,
                               description=description)


def get_generator(name: str) -> GeneratorEntry:
    """Look up a generator entry in the default registry."""
    return GENERATORS.get(name)


def available_generators() -> List[str]:
    """Names registered in the default generator registry."""
    return GENERATORS.names()


def generator_schema(name: str) -> Dict[str, Any]:
    """The JSON-schema of the generator's params (deep copy via JSON)."""
    return json.loads(json.dumps(get_generator(name).schema))


def make_instance(name: str, params: Optional[Mapping[str, Any]] = None,
                  seed: int = 0) -> Any:
    """Build the instance addressed by ``(generator name, params, seed)``."""
    return get_generator(name).build(params or {}, seed=seed)


# --------------------------------------------------------------------------- #
# Schema fragments shared by the built-in generators
# --------------------------------------------------------------------------- #
def _num(minimum: Optional[float] = None, *, exclusive: bool = False,
         maximum: Optional[float] = None) -> Dict[str, Any]:
    spec: Dict[str, Any] = {"type": "number"}
    if minimum is not None:
        spec["exclusiveMinimum" if exclusive else "minimum"] = minimum
    if maximum is not None:
        spec["maximum"] = maximum
    return spec


def _int(minimum: int) -> Dict[str, Any]:
    return {"type": "integer", "minimum": minimum}


def _range_pair() -> Dict[str, Any]:
    return {"type": "array", "items": {"type": "number"},
            "minItems": 2, "maxItems": 2}


def _obj(properties: Dict[str, Any],
         required: Sequence[str] = ()) -> Dict[str, Any]:
    return {"type": "object", "properties": properties,
            "required": list(required), "additionalProperties": False}


# --------------------------------------------------------------------------- #
# Built-in registrations: every factory of repro.instances
# --------------------------------------------------------------------------- #
register_generator(
    "pigou", pigou, seeded=False,
    schema=_obj({"demand": _num(0.0, exclusive=True)}),
    description="Pigou's two-link example (Figures 1-3).")

register_generator(
    "pigou_nonlinear", pigou_nonlinear, seeded=False,
    schema=_obj({"degree": _num(1.0), "demand": _num(0.0, exclusive=True)},
                required=("degree",)),
    description="Pigou variant with a degree-d monomial on the fast link.")

register_generator(
    "figure4", figure_4_example, seeded=False,
    schema=_obj({"demand": _num(0.0, exclusive=True)}),
    description="The five-link OpTop walk-through of Figures 4-6.")

register_generator(
    "two_speed", two_speed_example, seeded=False,
    schema=_obj({"fast_slope": _num(0.0, exclusive=True),
                 "slow_constant": _num(0.0, exclusive=True),
                 "demand": _num(0.0, exclusive=True)}),
    description="Parametrised Pigou-like instance (one fast, one slow link).")

register_generator(
    "braess", braess_paradox, seeded=False,
    schema=_obj({"demand": _num(0.0, exclusive=True)}),
    description="The classic Braess paradox network.")

register_generator(
    "roughgarden", roughgarden_example, seeded=False,
    schema=_obj({"epsilon": _num(0.0), "demand": _num(0.0, exclusive=True)}),
    description="The Figure 7 / Roughgarden Example 6.5.1 graph.")

register_generator(
    "random_linear_parallel", random_linear_parallel,
    schema=_obj({"num_links": _int(1), "demand": _num(0.0, exclusive=True),
                 "slope_range": _range_pair(),
                 "intercept_range": _range_pair()},
                required=("num_links",)),
    description="Parallel links with independent affine latencies.")

register_generator(
    "random_affine_common_slope", random_affine_common_slope,
    schema=_obj({"num_links": _int(1), "demand": _num(0.0, exclusive=True),
                 "slope": _num(0.0, exclusive=True),
                 "intercept_range": _range_pair()},
                required=("num_links",)),
    description="Common-slope affine parallel links (the Theorem 2.4 family).")

register_generator(
    "random_polynomial_parallel", random_polynomial_parallel,
    schema=_obj({"num_links": _int(1), "demand": _num(0.0, exclusive=True),
                 "max_degree": _int(1), "coefficient_range": _range_pair()},
                required=("num_links",)),
    description="Parallel links with random increasing polynomial latencies.")

register_generator(
    "random_mixed_parallel", random_mixed_parallel,
    schema=_obj({"num_links": _int(1), "demand": _num(0.0, exclusive=True),
                 "constant_fraction": _num(0.0, maximum=1.0)},
                required=("num_links",)),
    description="Mixture of affine, monomial and constant parallel links.")

register_generator(
    "mm1_server_farm", mm1_server_farm, seeded=False,
    schema=_obj({"num_fast": _int(0), "num_slow": _int(0),
                 "fast_capacity": _num(0.0, exclusive=True),
                 "slow_capacity": _num(0.0, exclusive=True),
                 "demand": _num(0.0, exclusive=True),
                 "utilisation": _num(0.0, exclusive=True, maximum=1.0)},
                required=("num_fast", "num_slow")),
    description="M/M/1 server farm with a fast and a slow link group.")

register_generator(
    "random_mm1_parallel", random_mm1_parallel,
    schema=_obj({"num_links": _int(1),
                 "demand_fraction": _num(0.0, exclusive=True, maximum=1.0),
                 "capacity_range": _range_pair()},
                required=("num_links",)),
    description="Parallel M/M/1 links with random capacities.")

register_generator(
    "grid_network", grid_network,
    schema=_obj({"rows": _int(2), "cols": _int(2),
                 "demand": _num(0.0, exclusive=True),
                 "latency_family": {"type": "string",
                                    "enum": ["linear", "bpr"]}},
                required=("rows", "cols")),
    description="Directed grid routed corner to corner.")

register_generator(
    "layered_network", layered_network,
    schema=_obj({"num_layers": _int(1), "width": _int(1),
                 "demand": _num(0.0, exclusive=True),
                 "latency_family": {"type": "string",
                                    "enum": ["linear", "bpr"]},
                 "extra_edge_probability": _num(0.0, maximum=1.0)},
                required=("num_layers", "width")),
    description="Layered s-t DAG with matching plus random extra edges.")

register_generator(
    "random_multicommodity", random_multicommodity_instance,
    schema=_obj({"rows": _int(2), "cols": _int(2),
                 "num_commodities": _int(1), "demand_range": _range_pair(),
                 "latency_family": {"type": "string",
                                    "enum": ["linear", "bpr"]}},
                required=()),
    description="k-commodity instance on a bidirected grid.")


# --------------------------------------------------------------------------- #
# Adversarial generators (the bench suite's stress families)
# --------------------------------------------------------------------------- #
register_generator(
    "near_degenerate_breakpoints", near_degenerate_breakpoints,
    schema=_obj({"num_links": _int(2), "demand": _num(0.0, exclusive=True),
                 "epsilon": _num(0.0, exclusive=True),
                 "base_latency": _num(0.0),
                 "slope_range": _range_pair()},
                required=("num_links",)),
    description="Affine links with free-flow latencies clustered within epsilon.")

register_generator(
    "heavy_tail_capacity", heavy_tail_capacity,
    schema=_obj({"num_links": _int(1),
                 "demand_fraction": {"type": "number",
                                     "exclusiveMinimum": 0,
                                     "exclusiveMaximum": 1},
                 "tail_index": _num(0.0, exclusive=True),
                 "scale": _num(0.0, exclusive=True)},
                required=("num_links",)),
    description="Pareto-capacity M/M/1 links with demand near saturation.")

register_generator(
    "pigou_chain", pigou_chain, seeded=False,
    schema=_obj({"num_blocks": _int(1), "demand": _num(0.0, exclusive=True),
                 "degree": _num(1.0),
                 "cost_ratio": {"type": "number", "exclusiveMinimum": 1}},
                required=("num_blocks",)),
    description="Geometrically scaled Pigou pairs (worst-case PoA composition).")

register_generator(
    "mixed_family_soup", mixed_family_soup,
    schema=_obj({"num_links": _int(5), "demand": _num(0.0, exclusive=True)},
                required=()),
    description="All five latency families on one parallel-link instance.")


def _literal_instance(instance: Mapping[str, Any],
                      demand: Optional[float] = None) -> Any:
    """An explicitly serialised instance, optionally at an overridden demand.

    The escape hatch that lets instance-parameterised entry points (alpha
    sweeps, demand sweeps over a user-supplied instance) run through the
    declarative study pipeline: the serialised instance dictionary *is* the
    parameter, so the cell stays a pure JSON value.  ``demand`` rescales the
    total demand (parallel-link instances only).
    """
    built = instance_from_dict(dict(instance))
    if demand is not None:
        if not hasattr(built, "with_demand"):
            raise ModelError(
                "the 'demand' override of the literal generator needs a "
                "parallel-link instance")
        built = built.with_demand(float(demand))
    return built


register_generator(
    "literal", _literal_instance, seeded=False,
    schema=_obj({"instance": {"type": "object"},
                 "demand": _num(0.0, exclusive=True)},
                required=("instance",)),
    description="An explicitly serialised instance (optional demand override).")
