"""Declarative study specifications and their lazy plan expansion.

A :class:`StudySpec` is the declarative description of an entire experiment
campaign: one or more :class:`GeneratorAxis` entries (an instance generator
plus a parameter grid and a seed list) crossed with a strategy grid and a
:class:`~repro.api.config.SolveConfig` grid.  ``expand()`` turns the spec
into a deterministic, lazily generated plan of :class:`StudyCell` work items
— nothing is materialised until the runner walks the iterator, so a spec
describing millions of cells costs nothing to hold.

Specs are plain JSON values end to end (generator params are JSON, configs
serialise canonically), so a spec can be stored, diffed, and digested — the
digest names the study in the artifact store.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.api.config import SolveConfig
from repro.exceptions import ModelError
from repro.study.generators import get_generator

__all__ = ["GeneratorAxis", "StudyCell", "StudySpec"]


def _freeze(value: Any) -> str:
    """A value as canonical JSON: hashable, ordered, and lossless to thaw.

    Generator params are JSON values end to end, so canonical JSON is the
    natural frozen form — unlike structural tuple encodings it cannot
    confuse a list of pairs with a mapping.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ModelError(
            f"generator params must be JSON values, got {value!r}: {exc}"
        ) from exc


def _freeze_params(params: Optional[Mapping[str, Any]]) -> str:
    return _freeze(dict(params) if params else {})


def _params_dict(frozen: str) -> Dict[str, Any]:
    return json.loads(frozen)


@dataclass(frozen=True)
class GeneratorAxis:
    """One instance family of a study: a generator, a param grid and seeds.

    Attributes
    ----------
    generator:
        Name in the generator registry
        (:func:`repro.study.available_generators`).
    params:
        Fixed parameters shared by every instance of the axis.
    grid:
        Swept parameters: a mapping from parameter name to the sequence of
        values to sweep.  The expansion takes the cartesian product over the
        grid keys in sorted order, so the plan order is deterministic.
    seeds:
        Seeds to instantiate each parameter combination with (unseeded
        generators simply ignore them).
    label:
        Free-form tag carried into every cell of the axis (e.g. the family
        name an experiment table groups by).
    strategies / configs:
        Optional per-axis overrides of the spec-level strategy / config grids.
    """

    generator: str
    params: str = "{}"
    grid: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    seeds: Tuple[int, ...] = (0,)
    label: str = ""
    strategies: Optional[Tuple[str, ...]] = None
    configs: Optional[Tuple[SolveConfig, ...]] = None

    def __init__(self, generator: str,
                 params: Optional[Mapping[str, Any]] = None, *,
                 grid: Optional[Mapping[str, Sequence[Any]]] = None,
                 seeds: Sequence[int] = (0,),
                 label: str = "",
                 strategies: Optional[Sequence[str]] = None,
                 configs: Optional[Sequence[SolveConfig]] = None) -> None:
        object.__setattr__(self, "generator", str(generator))
        object.__setattr__(self, "params", _freeze_params(params))
        frozen_grid = tuple(sorted(
            (str(k), tuple(_freeze(v) for v in values))
            for k, values in (grid or {}).items()))
        object.__setattr__(self, "grid", frozen_grid)
        object.__setattr__(self, "seeds", tuple(int(s) for s in seeds))
        object.__setattr__(self, "label", str(label))
        object.__setattr__(self, "strategies",
                           None if strategies is None else tuple(strategies))
        object.__setattr__(self, "configs",
                           None if configs is None else tuple(configs))
        if not self.seeds:
            raise ModelError(f"axis {self.generator!r} needs at least one seed")
        overlap = set(_params_dict(self.params)) & {k for k, _ in self.grid}
        if overlap:
            raise ModelError(
                f"axis {self.generator!r} sweeps parameters that are also "
                f"fixed: {sorted(overlap)}")
        for key, values in self.grid:
            if not values:
                raise ModelError(
                    f"axis {self.generator!r} sweeps {key!r} over an empty "
                    f"value list")

    def combinations(self) -> Iterator[Dict[str, Any]]:
        """Lazily yield the resolved param dict of every grid point."""
        base = _params_dict(self.params)
        if not self.grid:
            yield dict(base)
            return
        keys = [key for key, _ in self.grid]
        for combo in itertools.product(*(values for _, values in self.grid)):
            point = dict(base)
            point.update({key: json.loads(value)
                          for key, value in zip(keys, combo)})
            yield point

    @property
    def num_points(self) -> int:
        """Instances the axis expands to (grid points x seeds)."""
        count = 1
        for _, values in self.grid:
            count *= len(values)
        return count * len(self.seeds)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        data: Dict[str, Any] = {
            "generator": self.generator,
            "params": _params_dict(self.params),
            "grid": {key: [json.loads(v) for v in values]
                     for key, values in self.grid},
            "seeds": list(self.seeds),
            "label": self.label,
        }
        if self.strategies is not None:
            data["strategies"] = list(self.strategies)
        if self.configs is not None:
            data["configs"] = [config.to_dict() for config in self.configs]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeneratorAxis":
        """Reconstruct an axis serialised by :meth:`to_dict`."""
        if not isinstance(data, Mapping) or "generator" not in data:
            raise ModelError(f"invalid GeneratorAxis payload: {data!r}")
        configs = data.get("configs")
        return cls(
            data["generator"],
            data.get("params") or {},
            grid=data.get("grid") or {},
            seeds=data.get("seeds") or (0,),
            label=data.get("label", ""),
            strategies=data.get("strategies"),
            configs=None if configs is None
            else [SolveConfig.from_dict(c) for c in configs],
        )


@dataclass(frozen=True)
class StudyCell:
    """One unit of work of an expanded study plan.

    A cell is the cross product point ``(instance params, seed, strategy,
    config)`` together with its deterministic position in the plan; the
    runner materialises the instance, executes the strategy through
    :func:`repro.api.solve_many` and lands the report in the artifact store.
    """

    index: int
    generator: str
    params: str  # canonical JSON of the generator params
    seed: int
    strategy: str
    config: SolveConfig
    label: str = ""

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The generator params as a plain dictionary."""
        return _params_dict(self.params)

    def make_instance(self) -> Any:
        """Materialise the cell's instance through the generator registry."""
        return get_generator(self.generator).build(self.params_dict,
                                                   seed=self.seed)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {
            "index": self.index,
            "generator": self.generator,
            "params": self.params_dict,
            "seed": self.seed,
            "strategy": self.strategy,
            "config": self.config.to_dict(),
            "label": self.label,
        }


@dataclass(frozen=True)
class StudySpec:
    """A declarative experiment campaign: generators x strategies x configs.

    Attributes
    ----------
    name:
        Identifier of the study (used in artifact paths and CLI listings).
    axes:
        The instance families (:class:`GeneratorAxis`) the study runs over.
    strategies:
        Registry names executed on every instance (an axis may override).
        An empty tuple together with axis-level ``strategies=None`` yields a
        cell-free spec — useful for studies whose summarising logic consumes
        the instances directly.
    configs:
        :class:`~repro.api.config.SolveConfig` grid applied to every
        ``(instance, strategy)`` pair (an axis may override).
    description:
        One-line human-readable summary.
    """

    name: str
    axes: Tuple[GeneratorAxis, ...] = ()
    strategies: Tuple[str, ...] = ("optop",)
    configs: Tuple[SolveConfig, ...] = (SolveConfig(),)
    description: str = ""

    def __init__(self, name: str,
                 axes: Sequence[GeneratorAxis] = (), *,
                 strategies: Sequence[str] = ("optop",),
                 configs: Sequence[SolveConfig] = (SolveConfig(),),
                 description: str = "") -> None:
        if not name or not isinstance(name, str):
            raise ModelError(f"study name must be a non-empty string, "
                             f"got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "axes", tuple(axes))
        object.__setattr__(self, "strategies", tuple(strategies))
        object.__setattr__(self, "configs", tuple(configs))
        object.__setattr__(self, "description", str(description))
        for axis in self.axes:
            if not isinstance(axis, GeneratorAxis):
                raise ModelError(
                    f"study axes must be GeneratorAxis values, got "
                    f"{type(axis).__name__}")

    # ------------------------------------------------------------------ #
    # Lazy plan expansion
    # ------------------------------------------------------------------ #
    def expand(self) -> Iterator[StudyCell]:
        """Lazily yield the deterministic plan of the study.

        Order: axes in declaration order; within an axis the cartesian
        product of the sorted grid keys, then seeds, then strategies, then
        configs.  The enumeration allocates one cell at a time, so arbitrarily
        large grids can be streamed.
        """
        index = 0
        for axis in self.axes:
            strategies = (self.strategies if axis.strategies is None
                          else axis.strategies)
            configs = self.configs if axis.configs is None else axis.configs
            for params in axis.combinations():
                frozen = _freeze_params(params)
                for seed in axis.seeds:
                    for strategy in strategies:
                        for config in configs:
                            yield StudyCell(
                                index=index, generator=axis.generator,
                                params=frozen, seed=seed, strategy=strategy,
                                config=config, label=axis.label)
                            index += 1

    def instances(self) -> Iterator[Tuple[GeneratorAxis, Dict[str, Any], int, Any]]:
        """Lazily yield ``(axis, params, seed, instance)`` for every instance.

        Unlike :meth:`expand` this enumerates each instance once (not once
        per strategy/config), which is what summarising logic that consumes
        instances directly wants.
        """
        for axis in self.axes:
            for params in axis.combinations():
                for seed in axis.seeds:
                    instance = get_generator(axis.generator).build(params,
                                                                   seed=seed)
                    yield axis, dict(params), seed, instance

    @property
    def num_cells(self) -> int:
        """Total number of cells the plan expands to (computed, not expanded)."""
        total = 0
        for axis in self.axes:
            strategies = (self.strategies if axis.strategies is None
                          else axis.strategies)
            configs = self.configs if axis.configs is None else axis.configs
            total += axis.num_points * len(strategies) * len(configs)
        return total

    def validate(self) -> None:
        """Fail fast: resolve every generator and strategy name."""
        from repro.api.registry import get_strategy

        for axis in self.axes:
            get_generator(axis.generator)
            for strategy in (self.strategies if axis.strategies is None
                             else axis.strategies):
                get_strategy(strategy)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {
            "name": self.name,
            "description": self.description,
            "axes": [axis.to_dict() for axis in self.axes],
            "strategies": list(self.strategies),
            "configs": [config.to_dict() for config in self.configs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        """Reconstruct a spec serialised by :meth:`to_dict`."""
        if not isinstance(data, Mapping) or "name" not in data:
            raise ModelError(f"invalid StudySpec payload: {data!r}")
        return cls(
            data["name"],
            [GeneratorAxis.from_dict(axis) for axis in data.get("axes", [])],
            strategies=data.get("strategies", ("optop",)),
            configs=[SolveConfig.from_dict(c)
                     for c in data.get("configs", [SolveConfig().to_dict()])],
            description=data.get("description", ""),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise to JSON; :meth:`from_json` inverts this losslessly."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        """Reconstruct a spec serialised by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelError(f"invalid StudySpec JSON: {exc}") from exc
        return cls.from_dict(data)

    def digest(self) -> str:
        """SHA-256 of the canonical spec JSON (stable across processes)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_configs(self, configs: Sequence[SolveConfig]) -> "StudySpec":
        """A copy of the spec with the top-level config grid replaced."""
        return replace(self, configs=tuple(configs))
