"""Stackelberg routing and the Price of Optimum.

A reproduction of *"The price of optimum in Stackelberg games on arbitrary
single commodity networks and latency functions"* (Kaporis & Spirakis,
SPAA 2006 / TCS 2009).

The package computes, for selfish-routing instances on parallel links and on
arbitrary (multi-commodity) networks, the minimum portion of flow
``beta_M`` a Stackelberg Leader must control to induce the system optimum —
together with the optimal Leader strategy — and provides the surrounding
machinery: Wardrop/Nash equilibria, system optima, induced equilibria under a
Stackelberg pre-load, baseline strategies (LLF, SCALE, Aloof), price-of-anarchy
metrics, canonical and random instance generators, and an experiment harness
regenerating every figure of the paper.

Quickstart
----------
The unified :mod:`repro.api` layer is the recommended entry point:

>>> from repro import instances, solve
>>> report = solve(instances.pigou())
>>> round(report.beta, 6)
0.5
>>> report.attains_optimum
True

The original algorithm functions remain available:

>>> from repro import optop
>>> result = optop(instances.pigou())
>>> round(result.beta, 6)
0.5
>>> round(result.induced_cost, 6) == round(result.optimum_cost, 6)
True
"""

from repro.exceptions import (
    ConvergenceError,
    InfeasibleFlowError,
    InstanceError,
    LatencyDomainError,
    ModelError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    StrategyError,
)
from repro.latency import (
    BPRLatency,
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
    ScaledLatency,
    ShiftedLatency,
)
from repro.network import (
    Commodity,
    Edge,
    Network,
    NetworkInstance,
    ParallelLinkInstance,
    network_from_edge_list,
    parallel_links_from_coefficients,
    parallel_network_as_graph,
)
from repro.equilibrium import (
    FrankWolfeOptions,
    NetworkFlowResult,
    ParallelFlowResult,
    StackelbergOutcome,
    frank_wolfe,
    induced_network_equilibrium,
    induced_parallel_equilibrium,
    network_nash,
    network_optimum,
    parallel_nash,
    parallel_optimum,
    path_based_flow,
)
from repro.core import (
    CommoditySplit,
    MOPResult,
    NetworkStackelbergStrategy,
    OpTopResult,
    ParallelStackelbergStrategy,
    RestrictedStrategyResult,
    classify_links,
    commodity_control_split,
    frozen_link_mask,
    induced_flow_on_frozen_links,
    is_useless_strategy,
    minimum_useful_control,
    mop,
    nash_flow_monotonicity_violation,
    optimal_restricted_strategy,
    optop,
    price_of_optimum,
)
from repro.baselines import aloof, brute_force_strategy, llf, scale
from repro.metrics import (
    a_posteriori_ratio,
    coordination_ratio,
    general_latency_bound,
    linear_latency_bound,
    linear_price_of_anarchy_bound,
    polynomial_price_of_anarchy_bound,
    price_of_anarchy,
)
from repro.serialization import instance_digest, load_instance, save_instance
from repro.api import (
    SolveConfig,
    SolveReport,
    StrategyRegistry,
    available_strategies,
    register_strategy,
    solve,
    solve_many,
)
from repro import api
from repro import instances
from repro import study
from repro.study import (
    ArtifactStore,
    GeneratorAxis,
    StudySpec,
    make_instance,
    register_generator,
    run_study,
)
from repro.cache import LRUCache
from repro import serve
from repro.serve import ServiceStats, SolveService, TieredCache
from repro import scenarios
from repro.scenarios import (
    DemandTrace,
    ElasticReport,
    LinearDemandCurve,
    TraceAxis,
    TraceReport,
    replay_trace,
    solve_elastic,
)

__version__ = "1.1.0"

__all__ = [
    # exceptions
    "ReproError",
    "ModelError",
    "LatencyDomainError",
    "InfeasibleFlowError",
    "ConvergenceError",
    "StrategyError",
    "InstanceError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    # latency functions
    "LatencyFunction",
    "LinearLatency",
    "ConstantLatency",
    "PolynomialLatency",
    "MonomialLatency",
    "BPRLatency",
    "MM1Latency",
    "ShiftedLatency",
    "ScaledLatency",
    # networks and instances
    "ParallelLinkInstance",
    "Network",
    "Edge",
    "Commodity",
    "NetworkInstance",
    "parallel_links_from_coefficients",
    "network_from_edge_list",
    "parallel_network_as_graph",
    # equilibria
    "ParallelFlowResult",
    "NetworkFlowResult",
    "StackelbergOutcome",
    "parallel_nash",
    "parallel_optimum",
    "network_nash",
    "network_optimum",
    "frank_wolfe",
    "FrankWolfeOptions",
    "path_based_flow",
    "induced_parallel_equilibrium",
    "induced_network_equilibrium",
    # core: price of optimum
    "ParallelStackelbergStrategy",
    "NetworkStackelbergStrategy",
    "OpTopResult",
    "MOPResult",
    "RestrictedStrategyResult",
    "optop",
    "mop",
    "price_of_optimum",
    "optimal_restricted_strategy",
    "classify_links",
    "frozen_link_mask",
    "is_useless_strategy",
    "induced_flow_on_frozen_links",
    "nash_flow_monotonicity_violation",
    "minimum_useful_control",
    "CommoditySplit",
    "commodity_control_split",
    # baselines
    "llf",
    "scale",
    "aloof",
    "brute_force_strategy",
    # metrics
    "price_of_anarchy",
    "coordination_ratio",
    "a_posteriori_ratio",
    "general_latency_bound",
    "linear_latency_bound",
    "linear_price_of_anarchy_bound",
    "polynomial_price_of_anarchy_bound",
    # unified solver-session API
    "api",
    "SolveConfig",
    "SolveReport",
    "StrategyRegistry",
    "solve",
    "solve_many",
    "register_strategy",
    "available_strategies",
    # persistence
    "save_instance",
    "load_instance",
    "instance_digest",
    # instance library
    "instances",
    # declarative study pipeline
    "study",
    "StudySpec",
    "GeneratorAxis",
    "ArtifactStore",
    "run_study",
    "make_instance",
    "register_generator",
    # serving layer
    "serve",
    "SolveService",
    "ServiceStats",
    "TieredCache",
    "LRUCache",
    # demand scenarios
    "scenarios",
    "DemandTrace",
    "ElasticReport",
    "LinearDemandCurve",
    "TraceAxis",
    "TraceReport",
    "replay_trace",
    "solve_elastic",
    "__version__",
]
