"""Pluggable strategy registry behind :func:`repro.api.solve`.

Every solver the package offers — the paper's OpTop/MOP plus the baseline
strategies — is registered here under a short name and exposed through the
uniform :class:`Strategy` callable protocol ``(instance, config) ->
SolveReport``.  Downstream code (CLI, sweeps, experiments, batch execution)
dispatches by name instead of importing algorithm functions, and external
code can plug in its own strategies:

>>> from repro.api import register_strategy
>>> @register_strategy("my_heuristic")
... def my_heuristic(instance, config):
...     ...
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    TYPE_CHECKING)

from repro.exceptions import StrategyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig
    from repro.api.report import SolveReport

__all__ = [
    "Strategy",
    "BatchStrategy",
    "StrategyRegistry",
    "REGISTRY",
    "register_strategy",
    "register_batch_strategy",
    "get_strategy",
    "available_strategies",
]

#: The strategy protocol: a callable mapping ``(instance, config)`` to a
#: :class:`~repro.api.report.SolveReport`.
Strategy = Callable[[object, "SolveConfig"], "SolveReport"]

#: The whole-batch protocol: ``(instances, config)`` to a list of reports
#: aligned with the input, or ``None`` when the batch cannot be taken as a
#: whole (the caller then falls back to per-instance dispatch).
BatchStrategy = Callable[[Sequence[object], "SolveConfig"],
                         "Optional[List[SolveReport]]"]


class StrategyRegistry:
    """Name -> :data:`Strategy` mapping with a decorator-based registration API."""

    def __init__(self) -> None:
        self._strategies: Dict[str, Strategy] = {}
        self._generations: Dict[str, int] = {}
        self._batch_solvers: Dict[str, BatchStrategy] = {}

    def register(self, name: str,
                 strategy: Optional[Strategy] = None) -> Callable:
        """Register ``strategy`` under ``name``.

        Usable directly (``registry.register("x", fn)``) or as a decorator
        (``@registry.register("x")``).  Re-registering an existing name is an
        error; use :meth:`unregister` first to replace a strategy.
        """
        if not name or not isinstance(name, str):
            raise StrategyError(f"strategy name must be a non-empty string, "
                                f"got {name!r}")

        def decorator(fn: Strategy) -> Strategy:
            if name in self._strategies:
                raise StrategyError(f"strategy {name!r} is already registered")
            if not callable(fn):
                raise StrategyError(f"strategy {name!r} must be callable, "
                                    f"got {type(fn).__name__}")
            self._strategies[name] = fn
            # A fresh implementation under a reused name must not inherit the
            # previous implementation's cached results.
            self._generations[name] = self._generations.get(name, 0) + 1
            return fn

        if strategy is not None:
            return decorator(strategy)
        return decorator

    def register_batch(self, name: str,
                       solver: Optional[BatchStrategy] = None) -> Callable:
        """Attach a whole-batch solver to the strategy registered as ``name``.

        A batch solver receives ``(instances, config)`` — the cache-missing
        portion of a :func:`repro.api.solve_many` call — and either returns a
        list of reports aligned with the input or ``None`` to decline the
        batch (the caller then falls back to per-instance dispatch).  It must
        produce the same reports the scalar strategy would, up to solver
        tolerance; it exists purely so strategies with shared structure
        across instances (one link system, many demands) can amortise it in
        one vectorized solve.  Usable directly or as a decorator, exactly
        like :meth:`register`.
        """

        def decorator(fn: BatchStrategy) -> BatchStrategy:
            if name not in self._strategies:
                raise StrategyError(
                    f"cannot attach a batch solver to unregistered strategy "
                    f"{name!r}")
            if name in self._batch_solvers:
                raise StrategyError(
                    f"strategy {name!r} already has a batch solver")
            if not callable(fn):
                raise StrategyError(
                    f"batch solver for {name!r} must be callable, "
                    f"got {type(fn).__name__}")
            self._batch_solvers[name] = fn
            return fn

        if solver is not None:
            return decorator(solver)
        return decorator

    def batch_solver(self, name: str) -> Optional[BatchStrategy]:
        """The whole-batch solver attached to ``name``, or ``None``."""
        return self._batch_solvers.get(name)

    def unregister(self, name: str) -> Strategy:
        """Remove and return the strategy registered under ``name``.

        Any attached batch solver is removed with it — a replacement
        implementation must not inherit the old batch shortcut.
        """
        try:
            strategy = self._strategies.pop(name)
        except KeyError:
            raise StrategyError(f"strategy {name!r} is not registered") from None
        self._batch_solvers.pop(name, None)
        return strategy

    def get(self, name: str) -> Strategy:
        """Look up a strategy by name; unknown names list the alternatives."""
        try:
            return self._strategies[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise StrategyError(
                f"unknown strategy {name!r}; registered strategies: {known}"
            ) from None

    def generation(self, name: str) -> int:
        """How many times ``name`` has been (re-)registered.

        Cache layers mix this into their keys so that replacing a strategy via
        :meth:`unregister` + :meth:`register` invalidates results produced by
        the previous implementation.
        """
        return self._generations.get(name, 0)

    def names(self) -> List[str]:
        """Sorted names of all registered strategies."""
        return sorted(self._strategies)

    def __contains__(self, name: str) -> bool:
        return name in self._strategies

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._strategies)


#: The default registry used by :func:`repro.api.solve`.
REGISTRY = StrategyRegistry()


def register_strategy(name: str, strategy: Optional[Strategy] = None) -> Callable:
    """Register a strategy in the default registry (decorator-friendly)."""
    return REGISTRY.register(name, strategy)


def register_batch_strategy(name: str,
                            solver: Optional[BatchStrategy] = None) -> Callable:
    """Attach a whole-batch solver in the default registry (decorator-friendly)."""
    return REGISTRY.register_batch(name, solver)


def get_strategy(name: str) -> Strategy:
    """Look up a strategy in the default registry."""
    return REGISTRY.get(name)


def available_strategies() -> List[str]:
    """Names registered in the default registry."""
    return REGISTRY.names()
