"""Instance-kind resolution shared by the registry and the legacy facade.

The seed dispatched on ``isinstance`` checks against the two concrete
instance classes, which broke for duck-typed wrappers and for instance
subclasses reconstructed through serialisation layers.  The resolver here
first tries the nominal types (which covers subclasses) and then falls back
to structural typing, so anything that *behaves* like a parallel-link or
network instance dispatches correctly.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ModelError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance

__all__ = ["resolve_instance_kind", "PARALLEL", "NETWORK"]

PARALLEL = "parallel"
NETWORK = "network"


def resolve_instance_kind(instance: Any) -> str:
    """Classify ``instance`` as ``"parallel"`` or ``"network"``.

    Accepts the concrete classes, their subclasses, and any structurally
    compatible object (e.g. instances reconstructed by a foreign loader):
    an object with ``latencies``/``demand``/``num_links`` is treated as a
    parallel-link instance, one with ``network``/``commodities`` as a network
    instance.
    """
    if isinstance(instance, ParallelLinkInstance):
        return PARALLEL
    if isinstance(instance, NetworkInstance):
        return NETWORK
    if (hasattr(instance, "latencies") and hasattr(instance, "demand")
            and hasattr(instance, "num_links")):
        return PARALLEL
    if hasattr(instance, "network") and hasattr(instance, "commodities"):
        return NETWORK
    raise ModelError(
        f"expected a ParallelLinkInstance or NetworkInstance (or a structurally "
        f"compatible object), got {type(instance).__name__}")
