"""`repro.api` — the unified solver-session surface of the package.

One import gives everything a production consumer needs:

>>> from repro.api import solve, solve_many, SolveConfig, available_strategies
>>> from repro import instances
>>> report = solve(instances.pigou())            # Price of Optimum by default
>>> round(report.beta, 6)
0.5
>>> report = solve(instances.pigou(), "scale",
...                config=SolveConfig(alpha=0.75))
>>> report.strategy
'scale'

The pieces:

* :class:`SolveConfig` — one frozen dataclass of solver settings, threaded
  down through :mod:`repro.core` and :mod:`repro.equilibrium`;
* :class:`SolveReport` — one flat, JSON-round-trippable result record
  replacing the per-algorithm result types;
* :class:`StrategyRegistry` / :func:`register_strategy` — pluggable strategy
  dispatch by name (``optop``, ``mop``, ``llf``, ``scale``, ``aloof``,
  ``brute_force`` are built in);
* :func:`solve` / :func:`solve_many` — single and batch execution with an
  instance-digest result cache and process-pool fan-out.
"""

from repro.api.config import EQUILIBRIUM_BACKENDS, KERNEL_BACKENDS, SolveConfig
from repro.api.dispatch import resolve_instance_kind
from repro.api.report import SolveReport
from repro.api.registry import (
    REGISTRY,
    BatchStrategy,
    Strategy,
    StrategyRegistry,
    available_strategies,
    get_strategy,
    register_batch_strategy,
    register_strategy,
)
from repro.api import strategies as _builtin_strategies  # noqa: F401  (registers built-ins)
from repro.api import session as _session
from repro.api.session import cache_size, cache_stats, clear_cache, solve, solve_many

# Spawned pool workers re-create exactly the strategies registered so far
# (by importing this package); record them so solve_many can detect
# runtime registrations that would not resolve inside a worker.
_session._mark_import_registered(REGISTRY.names())
from repro.serialization import instance_digest

__all__ = [
    "SolveConfig",
    "EQUILIBRIUM_BACKENDS",
    "KERNEL_BACKENDS",
    "SolveReport",
    "Strategy",
    "BatchStrategy",
    "StrategyRegistry",
    "REGISTRY",
    "register_strategy",
    "register_batch_strategy",
    "get_strategy",
    "available_strategies",
    "resolve_instance_kind",
    "solve",
    "solve_many",
    "clear_cache",
    "cache_size",
    "cache_stats",
    "instance_digest",
]
