"""Built-in strategy adapters: the paper's algorithms behind one protocol.

Each adapter wraps one of the seed's solver functions — ``optop``, ``mop``,
``llf``, ``scale``, ``aloof``, ``brute_force`` — behind the uniform
``(instance, config) -> SolveReport`` protocol and registers it in the
default :data:`~repro.api.registry.REGISTRY`.  Adapters are responsible for

* dispatching on the instance kind (every strategy accepts both parallel-link
  and network instances; ``optop`` delegates to MOP on networks and ``mop``
  embeds parallel links into the graph model),
* resolving solver settings from the :class:`~repro.api.config.SolveConfig`,
* assembling the flat, JSON-serialisable :class:`~repro.api.report.SolveReport`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.api.config import SolveConfig
from repro.api.dispatch import NETWORK, PARALLEL, resolve_instance_kind
from repro.api.registry import register_batch_strategy, register_strategy
from repro.api.report import SolveReport
from repro.serialization import instance_to_dict, latency_to_dict
from repro.core.mop import mop
from repro.core.optop import optop
from repro.baselines.aloof import aloof
from repro.baselines.brute_force import brute_force_strategy
from repro.baselines.exact import exact_strategy
from repro.baselines.llf import llf
from repro.baselines.network_ext import network_brute_force, network_llf
from repro.baselines.scale import scale
from repro.equilibrium.network import network_nash, network_optimum
from repro.equilibrium.parallel import (parallel_nash, parallel_optimum,
                                        water_fill_many)
from repro.equilibrium.result import ParallelFlowResult, StackelbergOutcome
from repro.network.builders import parallel_network_as_graph

__all__ = [
    "solve_optop",
    "solve_mop",
    "solve_llf",
    "solve_scale",
    "solve_aloof",
    "solve_aloof_many",
    "solve_brute_force",
    "solve_exact",
]


# --------------------------------------------------------------------------- #
# Report assembly helpers
# --------------------------------------------------------------------------- #
def _flows_of(result) -> Any:
    """The flow vector of a parallel or network flow result."""
    return result.flows if hasattr(result, "flows") else result.edge_flows


def _build_report(*, name: str, instance, kind: str, config: SolveConfig,
                  alpha: float, beta: Optional[float], leader_flows,
                  induced_flows, induced_cost: float, optimum, nash,
                  metadata: Dict[str, Any]) -> SolveReport:
    nash_flows = None
    nash_cost = None
    poa = None
    if nash is not None:
        nash_flows = _flows_of(nash)
        nash_cost = float(nash.cost)
        poa = nash_cost / optimum.cost if optimum.cost > 0.0 else 1.0
    return SolveReport(
        strategy=name,
        instance_kind=kind,
        instance=instance_to_dict(instance),
        alpha=alpha,
        beta=beta,
        leader_flows=leader_flows,
        induced_flows=induced_flows,
        optimum_flows=_flows_of(optimum),
        nash_flows=nash_flows,
        induced_cost=induced_cost,
        optimum_cost=float(optimum.cost),
        nash_cost=nash_cost,
        price_of_anarchy=poa,
        config=config,
        metadata=metadata,
    )


def _parallel_baseline_report(name: str, instance, config: SolveConfig,
                              strategy, metadata: Dict[str, Any],
                              outcome=None) -> SolveReport:
    """Report for a budgeted/null strategy on a parallel-link instance."""
    optimum = parallel_optimum(instance, config=config)
    nash = parallel_nash(instance, config=config) if config.compute_nash else None
    if outcome is None:
        outcome = strategy.induce(instance, tol=config.water_fill_tol)
    return _build_report(
        name=name, instance=instance, kind=PARALLEL, config=config,
        alpha=strategy.alpha, beta=None, leader_flows=strategy.flows,
        induced_flows=outcome.combined_flows, induced_cost=float(outcome.cost),
        optimum=optimum, nash=nash, metadata=metadata)


def _network_baseline_report(name: str, instance, config: SolveConfig,
                             strategy, metadata: Dict[str, Any],
                             outcome=None) -> SolveReport:
    """Report for a budgeted/null strategy on a network instance."""
    solver = config.network_solver()
    optimum = network_optimum(instance, config=config)
    nash = network_nash(instance, config=config) if config.compute_nash else None
    if outcome is None:
        outcome = strategy.induce(instance, solver=solver,
                                  tolerance=config.tolerance)
    return _build_report(
        name=name, instance=instance, kind=NETWORK, config=config,
        alpha=strategy.alpha, beta=None, leader_flows=strategy.edge_flows,
        induced_flows=outcome.combined_flows, induced_cost=float(outcome.cost),
        optimum=optimum, nash=nash, metadata=metadata)


# --------------------------------------------------------------------------- #
# The Price-of-Optimum strategies (Theorem 2.1)
# --------------------------------------------------------------------------- #
def _mop_report(name: str, instance, config: SolveConfig, *,
                report_instance=None, kind: str = NETWORK,
                extra_metadata: Optional[Dict[str, Any]] = None) -> SolveReport:
    result = mop(instance, compute_nash=config.compute_nash, config=config)
    metadata = {
        "algorithm": "mop",
        "backend": config.backend,
        "free_flows": list(result.free_flows),
        "num_shortest_path_edges": [len(s) for s in result.shortest_edge_sets],
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return _build_report(
        name=name, instance=report_instance if report_instance is not None
        else instance, kind=kind, config=config,
        alpha=result.strategy.alpha, beta=result.beta,
        leader_flows=result.strategy.edge_flows,
        induced_flows=result.outcome.combined_flows,
        induced_cost=result.induced_cost,
        optimum=result.optimum, nash=result.nash, metadata=metadata)


@register_strategy("optop")
def solve_optop(instance, config: SolveConfig) -> SolveReport:
    """Algorithm OpTop (Corollary 2.2): the exact Price of Optimum.

    On parallel links runs the freezing iteration of the paper; on network
    instances delegates to algorithm MOP (the paper's own generalisation),
    matching the dispatch of :func:`repro.price_of_optimum`.
    """
    kind = resolve_instance_kind(instance)
    if kind == PARALLEL:
        result = optop(instance, config=config)
        metadata = {
            "algorithm": "optop",
            "backend": "parallel",
            "num_rounds": result.num_rounds,
            "frozen_links": [sorted(r.frozen_links) for r in result.rounds],
        }
        return _build_report(
            name="optop", instance=instance, kind=PARALLEL, config=config,
            alpha=result.strategy.alpha, beta=result.beta,
            leader_flows=result.strategy.flows,
            induced_flows=result.outcome.combined_flows,
            induced_cost=result.induced_cost,
            optimum=result.optimum, nash=result.initial_nash, metadata=metadata)
    return _mop_report("optop", instance, config,
                       extra_metadata={"dispatched_from": "optop"})


@register_strategy("mop")
def solve_mop(instance, config: SolveConfig) -> SolveReport:
    """Algorithm MOP (Corollary 2.3 / Theorem 2.1) on arbitrary networks.

    Parallel-link instances are embedded into the graph model (one s–t edge
    per link, in link order), so the reported flow vectors stay aligned with
    the original links.
    """
    kind = resolve_instance_kind(instance)
    if kind == NETWORK:
        return _mop_report("mop", instance, config)
    embedded = parallel_network_as_graph(instance)
    return _mop_report("mop", embedded, config, report_instance=instance,
                       kind=PARALLEL,
                       extra_metadata={"embedded_parallel_links": True})


# --------------------------------------------------------------------------- #
# Baseline strategies
# --------------------------------------------------------------------------- #
@register_strategy("llf")
def solve_llf(instance, config: SolveConfig) -> SolveReport:
    """Roughgarden's Largest-Latency-First with budget ``config.budget()``."""
    alpha = config.budget()
    kind = resolve_instance_kind(instance)
    metadata = {"algorithm": "llf", "requested_alpha": alpha}
    if kind == PARALLEL:
        strategy = llf(instance, alpha)
        return _parallel_baseline_report("llf", instance, config, strategy,
                                         metadata)
    strategy = network_llf(instance, alpha, solver=config.network_solver(),
                           tolerance=config.tolerance)
    metadata["path_generalisation"] = True
    return _network_baseline_report("llf", instance, config, strategy, metadata)


@register_strategy("scale")
def solve_scale(instance, config: SolveConfig) -> SolveReport:
    """The SCALE strategy ``S = alpha * O`` with budget ``config.budget()``."""
    alpha = config.budget()
    kind = resolve_instance_kind(instance)
    metadata = {"algorithm": "scale", "requested_alpha": alpha}
    if kind == PARALLEL:
        strategy = scale(instance, alpha)
        return _parallel_baseline_report("scale", instance, config, strategy,
                                         metadata)
    strategy = scale(instance, alpha, solver=config.network_solver())
    return _network_baseline_report("scale", instance, config, strategy,
                                    metadata)


@register_strategy("aloof")
def solve_aloof(instance, config: SolveConfig) -> SolveReport:
    """The null strategy: the Leader routes nothing, Followers reach Nash."""
    kind = resolve_instance_kind(instance)
    strategy = aloof(instance)
    metadata = {"algorithm": "aloof"}
    if kind == PARALLEL:
        return _parallel_baseline_report("aloof", instance, config, strategy,
                                         metadata)
    return _network_baseline_report("aloof", instance, config, strategy,
                                    metadata)


def _parallel_flow_result(instance, flows, level: float,
                          kind: str) -> ParallelFlowResult:
    return ParallelFlowResult(
        flows=flows, common_value=float(level), cost=instance.cost(flows),
        beckmann=instance.beckmann(flows), kind=kind)


@register_batch_strategy("aloof")
def solve_aloof_many(instances: Sequence[object],
                     config: SolveConfig) -> Optional[List[SolveReport]]:
    """Whole-batch aloof solver: one vectorized water filling per link system.

    Instances sharing structurally identical latencies (the shape of a
    coalesced service micro-batch or a ``StudySpec`` demand axis) differ only
    in their demand, so their optima and Nash equilibria are a batched
    :func:`~repro.equilibrium.parallel.water_fill_many` over the per-instance
    demand vector instead of independent solves that each re-derive the same
    breakpoint grid.  Declines (returns ``None``) when any instance is not a
    parallel-link system; singleton groups go through the scalar adapter.
    """
    instances = list(instances)
    if any(resolve_instance_kind(inst) != PARALLEL for inst in instances):
        return None
    groups: Dict[str, List[int]] = {}
    for i, inst in enumerate(instances):
        key = json.dumps([latency_to_dict(lat) for lat in inst.latencies],
                         sort_keys=True)
        groups.setdefault(key, []).append(i)
    reports: List[Optional[SolveReport]] = [None] * len(instances)
    for idxs in groups.values():
        if len(idxs) == 1:
            reports[idxs[0]] = solve_aloof(instances[idxs[0]], config)
            continue
        lead = instances[idxs[0]]
        demands = np.array([instances[i].demand for i in idxs])
        tol = config.water_fill_tol
        batch = lead.latency_batch()
        opt_flows, opt_levels = water_fill_many(
            lead.latencies, demands, "optimum", tol=tol, batch=batch)
        nash_flows, nash_levels = water_fill_many(
            lead.latencies, demands, "nash", tol=tol, batch=batch)
        for j, i in enumerate(idxs):
            inst = instances[i]
            optimum = _parallel_flow_result(inst, opt_flows[j], opt_levels[j],
                                            "optimum")
            nash = _parallel_flow_result(inst, nash_flows[j], nash_levels[j],
                                         "nash")
            # Against the null strategy the Followers reach plain Nash, so
            # the induced outcome *is* the Nash result (induce() with a zero
            # pre-load solves exactly this system).
            strategy = aloof(inst)
            outcome = StackelbergOutcome(
                leader_flows=strategy.flows,
                follower_flows=nash.flows,
                combined_flows=nash.flows,
                cost=nash.cost,
                follower_common_latency=nash.common_value
                if nash.demand > 0.0 else None,
                follower_result=nash,
            )
            reports[i] = _build_report(
                name="aloof", instance=inst, kind=PARALLEL, config=config,
                alpha=strategy.alpha, beta=None, leader_flows=strategy.flows,
                induced_flows=outcome.combined_flows,
                induced_cost=float(outcome.cost), optimum=optimum,
                nash=nash if config.compute_nash else None,
                metadata={"algorithm": "aloof", "batched": len(idxs)})
    return reports


@register_strategy("exact")
def solve_exact(instance, config: SolveConfig) -> SolveReport:
    """MILP-certified exact baseline with budget ``config.budget()``.

    On parallel links solves the piecewise-linearised mixed-integer leader
    problem (:func:`repro.baselines.exact.exact_strategy`), polishes the
    best candidate on the true induced cost, and reports the certified
    lower bound / optimality gap in ``metadata["certification"]``.  On
    network instances it falls back to the exhaustive path-support search,
    certified against the social optimum (a valid lower bound on any
    induced cost, though looser than the parallel-link MILP bound).
    """
    alpha = config.budget()
    kind = resolve_instance_kind(instance)
    if kind == PARALLEL:
        result = exact_strategy(instance, alpha, tol=config.water_fill_tol)
        metadata = {"algorithm": "exact", "requested_alpha": alpha,
                    "certification": result.certification}
        return _parallel_baseline_report("exact", instance, config,
                                         result.strategy, metadata,
                                         outcome=result.outcome)
    result = network_brute_force(
        instance, alpha, resolution=config.brute_force_resolution,
        solver=config.network_solver(), tolerance=config.tolerance)
    optimum_cost = float(network_optimum(instance, config=config).cost)
    certification = {
        "method": "network_brute_force",
        "lower_bound": optimum_cost,
        "certified_cost": float(result.outcome.cost),
        "optimality_gap": float(max(0.0, float(result.outcome.cost)
                                    - optimum_cost)),
        "resolution": config.brute_force_resolution,
        "evaluated": result.evaluated,
        "alpha": float(alpha),
    }
    metadata = {"algorithm": "exact", "requested_alpha": alpha,
                "certification": certification}
    return _network_baseline_report("exact", instance, config,
                                    result.strategy, metadata,
                                    outcome=result.outcome)


@register_strategy("brute_force")
def solve_brute_force(instance, config: SolveConfig) -> SolveReport:
    """Grid search for the best strategy with budget ``config.budget()``.

    On parallel links the grid covers the Leader's whole flow simplex; on
    (single-commodity) networks it covers the path support of the optimum.
    """
    alpha = config.budget()
    kind = resolve_instance_kind(instance)
    if kind == PARALLEL:
        result = brute_force_strategy(
            instance, alpha, resolution=config.brute_force_resolution)
        metadata = {"algorithm": "brute_force", "requested_alpha": alpha,
                    "evaluated": result.evaluated,
                    "resolution": config.brute_force_resolution}
        return _parallel_baseline_report("brute_force", instance, config,
                                         result.strategy, metadata,
                                         outcome=result.outcome)
    result = network_brute_force(
        instance, alpha, resolution=config.brute_force_resolution,
        solver=config.network_solver(), tolerance=config.tolerance)
    metadata = {"algorithm": "brute_force", "requested_alpha": alpha,
                "evaluated": result.evaluated,
                "resolution": config.brute_force_resolution,
                "path_generalisation": True}
    return _network_baseline_report("brute_force", instance, config,
                                    result.strategy, metadata,
                                    outcome=result.outcome)
