"""Solver sessions: single-instance dispatch, batch fan-out, result caching.

:func:`solve` is the one public entry point for "run this strategy on this
instance": it looks the strategy up in the registry, times the call and
returns a :class:`~repro.api.report.SolveReport`.  :func:`solve_many` maps it
over a batch with two production conveniences:

* a **result cache** keyed by ``(strategy, instance digest, config)`` — the
  digest is a SHA-256 of the canonical instance JSON, so structurally equal
  instances (including duplicates inside one batch) are solved exactly once.
  The cache is a thread-safe :class:`repro.cache.LRUCache`; the process
  global is shared by default and both entry points accept an injected
  ``cache`` (the serving layer passes its own tier-1 instance);
* a **whole-batch pre-pass**: a strategy with a registered batch solver
  (:func:`repro.api.registry.register_batch_strategy`) takes all the cache
  misses in one vectorized in-process call — e.g. ``aloof`` groups instances
  sharing a link system and solves every demand at once through
  :func:`repro.equilibrium.parallel.water_fill_many`;
* **process-pool fan-out** via :class:`concurrent.futures.ProcessPoolExecutor`
  for cache misses, since the solvers are CPU-bound and release no GIL.

Strategies registered at runtime (e.g. test stubs) are visible to worker
processes only on fork-based platforms: workers resolve strategies by
*name*, and only the built-in names are re-registered when a spawned worker
imports the package.  :func:`solve_many` therefore detects the combination
of a non-fork start method and a runtime-registered strategy and falls back
to sequential in-process execution with a warning instead of failing inside
the worker.  Pass ``max_workers=0`` to force sequential execution
explicitly.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.config import SolveConfig
from repro.api.registry import REGISTRY, get_strategy
from repro.api.report import SolveReport
from repro.cache import LRUCache
from repro.exceptions import ConvergenceError, ModelError
from repro.serialization import instance_digest

__all__ = ["solve", "solve_many", "clear_cache", "cache_size", "cache_stats",
           "resolve_strategy_name", "CACHE_MAX_ENTRIES"]

#: Upper bound on cached reports; the least recently used entry is evicted
#: first, so long-running sweeps cannot grow memory without limit.
CACHE_MAX_ENTRIES = 4096

#: Process-global LRU result cache:
#: (strategy@generation, instance digest, config) -> report.  The strategy
#: generation invalidates entries when a name is re-registered with a new
#: implementation.  Thread-safe: get/put/counters all run under the cache's
#: internal lock, so concurrent solvers never tear the statistics.
_RESULT_CACHE = LRUCache(max_entries=CACHE_MAX_ENTRIES)


def cache_stats() -> Dict[str, int]:
    """Cumulative ``{"hits": ..., "misses": ...}`` of the result cache.

    A *hit* is a report served without running a solver (including
    duplicates inside one ``solve_many`` batch); a *miss* is a lookup that
    led to a solver call with caching enabled.  Counters are process-global
    and reset by :func:`clear_cache`.  Reports additionally carry a
    ``metadata["cache"]`` record (``hit`` flag plus the counters at serve
    time).
    """
    stats = _RESULT_CACHE.stats()
    return {"hits": stats["hits"], "misses": stats["misses"]}


def _with_cache_metadata(report: SolveReport, *, hit: bool,
                         cache: LRUCache) -> SolveReport:
    """Attach the cache outcome and the running counters to a report."""
    stats = cache.stats()
    metadata = dict(report.metadata)
    metadata["cache"] = {"hit": hit, "hits": stats["hits"],
                         "misses": stats["misses"]}
    return replace(report, metadata=metadata)

#: Default strategy: the paper's Price-of-Optimum algorithm, which itself
#: dispatches between OpTop (parallel links) and MOP (networks).
_DEFAULT_STRATEGY = "optop"


def clear_cache() -> int:
    """Drop every cached report (and reset the hit/miss counters).

    Returns how many entries were evicted.
    """
    return _RESULT_CACHE.clear()


def cache_size() -> int:
    """Number of reports currently cached."""
    return len(_RESULT_CACHE)


def resolve_strategy_name(strategy: Optional[str]) -> str:
    """Map ``None`` / ``"auto"`` to the default strategy name."""
    return _DEFAULT_STRATEGY if strategy in (None, "auto") else strategy


_resolve_name = resolve_strategy_name  # internal alias, kept for brevity


def _cache_key(name: str, instance, config: SolveConfig,
               ) -> Optional[Tuple[str, str, str]]:
    """Cache key for the call, or ``None`` when the instance has no digest."""
    try:
        digest = instance_digest(instance)
    except ModelError:
        return None
    return (f"{name}@{REGISTRY.generation(name)}", digest, config.to_json())


def _execute(instance, name: str, config: SolveConfig) -> SolveReport:
    """Run the strategy without touching any cache; times the call.

    With ``config.profile`` set, the strategy runs under a fresh
    :class:`~repro.obs.profiling.PhaseRecorder` — installed *here* because
    this function executes wherever the solve actually runs (the calling
    thread, a service dispatcher, or a pool worker process) — and the
    per-phase kernel timings land in ``metadata["profile"]``.
    """
    fn = get_strategy(name)
    if config.profile:
        from repro.obs.profiling import profiled
        start = time.perf_counter()
        with profiled() as recorder:
            report = fn(instance, config)
        wall_time = time.perf_counter() - start
        metadata = dict(report.metadata)
        metadata["profile"] = recorder.to_dict(total_seconds=wall_time)
        return replace(report, wall_time=wall_time, metadata=metadata)
    start = time.perf_counter()
    report = fn(instance, config)
    return replace(report, wall_time=time.perf_counter() - start)


def solve(instance, strategy: Optional[str] = None, *,
          config: Optional[SolveConfig] = None,
          cache: Optional[LRUCache] = None) -> SolveReport:
    """Solve one instance with a registered strategy.

    Parameters
    ----------
    instance:
        A parallel-link or network instance.
    strategy:
        Registry name (see :func:`repro.api.available_strategies`); ``None``
        or ``"auto"`` selects the Price-of-Optimum algorithm.
    config:
        Solver settings; defaults to ``SolveConfig()``.
    cache:
        Result cache to consult/fill; defaults to the process-global one.

    Returns
    -------
    SolveReport
        The unified, JSON-serialisable result record.
    """
    config = SolveConfig() if config is None else config
    name = _resolve_name(strategy)
    get_strategy(name)  # fail fast on unknown strategies
    result_cache = _RESULT_CACHE if cache is None else cache
    key = _cache_key(name, instance, config) if config.cache else None
    if key is not None:
        cached = result_cache.get(key)  # counts the hit or the miss
        if cached is not None:
            return _with_cache_metadata(cached, hit=True, cache=result_cache)
    report = _execute(instance, name, config)
    if key is not None:
        report = _with_cache_metadata(report, hit=False, cache=result_cache)
        result_cache.put(key, report)
    return report


def _solve_task(payload: Tuple[object, str, SolveConfig]) -> SolveReport:
    """Top-level worker body (must be picklable for the process pool)."""
    instance, name, config = payload
    return solve(instance, name, config=config)


def _start_method() -> str:
    """The multiprocessing start method a fresh pool would use."""
    return multiprocessing.get_start_method(allow_none=False)


#: Strategy names registered while :mod:`repro.api` itself was importing.
#: A spawned worker re-creates exactly these when it imports the package,
#: so only they resolve by name inside pool workers;
#: :mod:`repro.api.__init__` fills this in right after the built-in
#: registrations.
_IMPORT_REGISTERED_NAMES: Optional[frozenset] = None


def _mark_import_registered(names: Iterable[str]) -> None:
    """Record the strategy names that exist after the package import."""
    global _IMPORT_REGISTERED_NAMES
    _IMPORT_REGISTERED_NAMES = frozenset(names)


def _pool_unsafe_reason(name: str) -> Optional[str]:
    """Why a process pool cannot execute strategy ``name``, or ``None``.

    Workers look strategies up by *name* after importing :mod:`repro.api`,
    which re-registers only the built-in strategies.  Under the fork start
    method runtime registrations are inherited from the parent; under spawn
    (Windows, macOS default) or forkserver they are not, so any name
    registered after import — including aliases of package functions and
    re-registered built-ins — would misresolve inside the worker.
    """
    method = _start_method()
    if method == "fork":
        return None
    if (_IMPORT_REGISTERED_NAMES is not None
            and name in _IMPORT_REGISTERED_NAMES
            and REGISTRY.generation(name) == 1):
        return None
    return (f"strategy {name!r} was registered at runtime and is invisible "
            f"to {method!r}-started worker processes")


def solve_many(instances: Iterable[object], strategy: Optional[str] = None, *,
               config: Optional[SolveConfig] = None,
               max_workers: Optional[int] = None,
               cache: Optional[LRUCache] = None) -> List[SolveReport]:
    """Solve a batch of instances, reusing cached results and fanning out.

    Parameters
    ----------
    instances:
        Any iterable of parallel-link / network instances.
    strategy:
        Registry name shared by the whole batch (``None``/``"auto"`` selects
        the Price-of-Optimum algorithm).
    config:
        Solver settings shared by the whole batch.  With ``config.cache``
        enabled (the default), each distinct instance digest is solved exactly
        once — duplicates and previously solved instances are served from the
        cache.
    max_workers:
        Size of the :class:`~concurrent.futures.ProcessPoolExecutor` used for
        cache misses.  ``None`` picks ``min(pending, cpu_count)``; ``0`` or
        ``1`` forces sequential in-process execution (required for strategies
        registered at runtime on non-fork platforms).
    cache:
        Result cache to consult/fill; defaults to the process-global one.
        Callers with their own caching discipline inject a private
        :class:`~repro.cache.LRUCache` instead — e.g.
        :class:`repro.serve.SolveService` runs its batches against one so
        serve traffic neither duplicates reports into the global cache nor
        skews :func:`cache_stats` for other callers in the process.

    Returns
    -------
    list[SolveReport]
        Reports aligned with the input order.
    """
    config = SolveConfig() if config is None else config
    name = _resolve_name(strategy)
    get_strategy(name)  # fail fast on unknown strategies, before forking
    result_cache = _RESULT_CACHE if cache is None else cache
    batch = list(instances)
    reports: List[Optional[SolveReport]] = [None] * len(batch)

    pending: List[int] = []
    keys: List[Optional[Tuple[str, str, str]]] = [None] * len(batch)
    first_seen: Dict[Tuple[str, str, str], int] = {}
    duplicates: List[Tuple[int, int]] = []  # (index, index of first occurrence)
    if config.cache:
        for i, instance in enumerate(batch):
            key = _cache_key(name, instance, config)
            keys[i] = key
            if key is not None and key in first_seen:
                # In-batch duplicate of a pending solve; its hit is recorded
                # when the first occurrence's report is copied below.
                duplicates.append((i, first_seen[key]))
                continue
            cached = result_cache.get(key) if key is not None else None
            if cached is not None:
                reports[i] = _with_cache_metadata(cached, hit=True,
                                                  cache=result_cache)
            else:
                if key is not None:
                    first_seen[key] = i
                pending.append(i)
    else:
        pending = list(range(len(batch)))

    if len(pending) > 1 and not config.profile:
        # Whole-batch pre-pass: strategies with a registered batch solver
        # (e.g. aloof over one link system at many demands) take all the
        # cache misses in one vectorized in-process call.  Profiled runs
        # skip it so every report keeps its own per-phase recorder, and a
        # declined batch (None) or a solver-level failure falls through to
        # the ordinary per-instance path.
        batch_fn = REGISTRY.batch_solver(name)
        if batch_fn is not None:
            start = time.perf_counter()
            try:
                solved = batch_fn([batch[i] for i in pending], config)
            except (ModelError, ConvergenceError):
                solved = None
            if solved is not None and len(solved) == len(pending):
                each = (time.perf_counter() - start) / len(solved)
                for i, report in zip(pending, solved):
                    report = replace(report, wall_time=each)
                    if keys[i] is not None:
                        report = _with_cache_metadata(report, hit=False,
                                                      cache=result_cache)
                        result_cache.put(keys[i], report)
                    reports[i] = report
                pending = []

    if pending:
        payloads = [(batch[i], name, config) for i in pending]
        workers = max_workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers > 1 and len(pending) > 1:
            unsafe = _pool_unsafe_reason(name)
            if unsafe is not None:
                warnings.warn(
                    f"solve_many: falling back to sequential in-process "
                    f"execution; {unsafe}", RuntimeWarning, stacklevel=2)
                workers = 1
        if workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                solved = list(pool.map(_solve_task, payloads))
        else:
            # The scan above already recorded these lookups as misses, so
            # run the strategy directly instead of re-probing through
            # solve() (which would double-count).
            solved = [_execute(*payload) for payload in payloads]
        for i, report in zip(pending, solved):
            if keys[i] is not None:
                # Re-stamp pooled reports too: worker-side counters are
                # process-local and meaningless to this session.
                report = _with_cache_metadata(report, hit=False,
                                              cache=result_cache)
                result_cache.put(keys[i], report)
            reports[i] = report

    for i, j in duplicates:
        # Structural duplicates inside the batch were solved once; each
        # duplicate gets its own copy of the first occurrence's report with
        # a hit=True cache record, exactly like a report served from the
        # cross-batch cache.
        result_cache.note(hits=1)
        reports[i] = _with_cache_metadata(reports[j], hit=True,
                                          cache=result_cache)
    missing = [i for i, report in enumerate(reports) if report is None]
    assert not missing, f"solve_many left unfilled slots: {missing}"
    return reports
