"""Solver sessions: single-instance dispatch, batch fan-out, result caching.

:func:`solve` is the one public entry point for "run this strategy on this
instance": it looks the strategy up in the registry, times the call and
returns a :class:`~repro.api.report.SolveReport`.  :func:`solve_many` maps it
over a batch with two production conveniences:

* a **result cache** keyed by ``(strategy, instance digest, config)`` — the
  digest is a SHA-256 of the canonical instance JSON, so structurally equal
  instances (including duplicates inside one batch) are solved exactly once;
* **process-pool fan-out** via :class:`concurrent.futures.ProcessPoolExecutor`
  for cache misses, since the solvers are CPU-bound and release no GIL.

Strategies registered at runtime (e.g. test stubs) are visible to worker
processes only on fork-based platforms: workers resolve strategies by
*name*, and only the built-in names are re-registered when a spawned worker
imports the package.  :func:`solve_many` therefore detects the combination
of a non-fork start method and a runtime-registered strategy and falls back
to sequential in-process execution with a warning instead of failing inside
the worker.  Pass ``max_workers=0`` to force sequential execution
explicitly.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.config import SolveConfig
from repro.api.registry import REGISTRY, get_strategy
from repro.api.report import SolveReport
from repro.exceptions import ModelError
from repro.serialization import instance_digest

__all__ = ["solve", "solve_many", "clear_cache", "cache_size", "cache_stats",
           "CACHE_MAX_ENTRIES"]

#: Process-global LRU result cache:
#: (strategy@generation, instance digest, config) -> report.  The strategy
#: generation invalidates entries when a name is re-registered with a new
#: implementation.
_RESULT_CACHE: "OrderedDict[Tuple[str, str, str], SolveReport]" = OrderedDict()

#: Upper bound on cached reports; the least recently used entry is evicted
#: first, so long-running sweeps cannot grow memory without limit.
CACHE_MAX_ENTRIES = 4096

#: Cumulative hit/miss counters of the result cache.  A *hit* is a report
#: served without running a solver (including duplicates inside one
#: ``solve_many`` batch); a *miss* is a solver call made with caching enabled.
_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def cache_stats() -> Dict[str, int]:
    """Cumulative ``{"hits": ..., "misses": ...}`` of the result cache.

    Counters are process-global and reset by :func:`clear_cache`.  Reports
    additionally carry a ``metadata["cache"]`` record (``hit`` flag plus the
    counters at serve time); structural duplicates inside one
    :func:`solve_many` batch receive their own copy of the first
    occurrence's report with ``hit=True``.
    """
    return dict(_CACHE_STATS)


def _with_cache_metadata(report: SolveReport, *, hit: bool) -> SolveReport:
    """Attach the cache outcome and the running counters to a report."""
    metadata = dict(report.metadata)
    metadata["cache"] = {"hit": hit, "hits": _CACHE_STATS["hits"],
                         "misses": _CACHE_STATS["misses"]}
    return replace(report, metadata=metadata)


def _cache_get(key: Tuple[str, str, str]) -> Optional[SolveReport]:
    report = _RESULT_CACHE.get(key)
    if report is not None:
        _RESULT_CACHE.move_to_end(key)
    return report


def _cache_put(key: Tuple[str, str, str], report: SolveReport) -> None:
    _RESULT_CACHE[key] = report
    _RESULT_CACHE.move_to_end(key)
    while len(_RESULT_CACHE) > CACHE_MAX_ENTRIES:
        _RESULT_CACHE.popitem(last=False)

#: Default strategy: the paper's Price-of-Optimum algorithm, which itself
#: dispatches between OpTop (parallel links) and MOP (networks).
_DEFAULT_STRATEGY = "optop"


def clear_cache() -> int:
    """Drop every cached report (and reset the hit/miss counters).

    Returns how many entries were evicted.
    """
    evicted = len(_RESULT_CACHE)
    _RESULT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0
    return evicted


def cache_size() -> int:
    """Number of reports currently cached."""
    return len(_RESULT_CACHE)


def _resolve_name(strategy: Optional[str]) -> str:
    return _DEFAULT_STRATEGY if strategy in (None, "auto") else strategy


def _cache_key(name: str, instance, config: SolveConfig,
               ) -> Optional[Tuple[str, str, str]]:
    """Cache key for the call, or ``None`` when the instance has no digest."""
    try:
        digest = instance_digest(instance)
    except ModelError:
        return None
    return (f"{name}@{REGISTRY.generation(name)}", digest, config.to_json())


def solve(instance, strategy: Optional[str] = None, *,
          config: Optional[SolveConfig] = None) -> SolveReport:
    """Solve one instance with a registered strategy.

    Parameters
    ----------
    instance:
        A parallel-link or network instance.
    strategy:
        Registry name (see :func:`repro.api.available_strategies`); ``None``
        or ``"auto"`` selects the Price-of-Optimum algorithm.
    config:
        Solver settings; defaults to ``SolveConfig()``.

    Returns
    -------
    SolveReport
        The unified, JSON-serialisable result record.
    """
    config = SolveConfig() if config is None else config
    name = _resolve_name(strategy)
    fn = get_strategy(name)
    key = _cache_key(name, instance, config) if config.cache else None
    if key is not None:
        cached = _cache_get(key)
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            return _with_cache_metadata(cached, hit=True)
    start = time.perf_counter()
    report = fn(instance, config)
    report = replace(report, wall_time=time.perf_counter() - start)
    if key is not None:
        _CACHE_STATS["misses"] += 1
        report = _with_cache_metadata(report, hit=False)
        _cache_put(key, report)
    return report


def _solve_task(payload: Tuple[object, str, SolveConfig]) -> SolveReport:
    """Top-level worker body (must be picklable for the process pool)."""
    instance, name, config = payload
    return solve(instance, name, config=config)


def _start_method() -> str:
    """The multiprocessing start method a fresh pool would use."""
    return multiprocessing.get_start_method(allow_none=False)


#: Strategy names registered while :mod:`repro.api` itself was importing.
#: A spawned worker re-creates exactly these when it imports the package,
#: so only they resolve by name inside pool workers;
#: :mod:`repro.api.__init__` fills this in right after the built-in
#: registrations.
_IMPORT_REGISTERED_NAMES: Optional[frozenset] = None


def _mark_import_registered(names: Iterable[str]) -> None:
    """Record the strategy names that exist after the package import."""
    global _IMPORT_REGISTERED_NAMES
    _IMPORT_REGISTERED_NAMES = frozenset(names)


def _pool_unsafe_reason(name: str) -> Optional[str]:
    """Why a process pool cannot execute strategy ``name``, or ``None``.

    Workers look strategies up by *name* after importing :mod:`repro.api`,
    which re-registers only the built-in strategies.  Under the fork start
    method runtime registrations are inherited from the parent; under spawn
    (Windows, macOS default) or forkserver they are not, so any name
    registered after import — including aliases of package functions and
    re-registered built-ins — would misresolve inside the worker.
    """
    method = _start_method()
    if method == "fork":
        return None
    if (_IMPORT_REGISTERED_NAMES is not None
            and name in _IMPORT_REGISTERED_NAMES
            and REGISTRY.generation(name) == 1):
        return None
    return (f"strategy {name!r} was registered at runtime and is invisible "
            f"to {method!r}-started worker processes")


def solve_many(instances: Iterable[object], strategy: Optional[str] = None, *,
               config: Optional[SolveConfig] = None,
               max_workers: Optional[int] = None) -> List[SolveReport]:
    """Solve a batch of instances, reusing cached results and fanning out.

    Parameters
    ----------
    instances:
        Any iterable of parallel-link / network instances.
    strategy:
        Registry name shared by the whole batch (``None``/``"auto"`` selects
        the Price-of-Optimum algorithm).
    config:
        Solver settings shared by the whole batch.  With ``config.cache``
        enabled (the default), each distinct instance digest is solved exactly
        once — duplicates and previously solved instances are served from the
        cache.
    max_workers:
        Size of the :class:`~concurrent.futures.ProcessPoolExecutor` used for
        cache misses.  ``None`` picks ``min(pending, cpu_count)``; ``0`` or
        ``1`` forces sequential in-process execution (required for strategies
        registered at runtime on non-fork platforms).

    Returns
    -------
    list[SolveReport]
        Reports aligned with the input order.
    """
    config = SolveConfig() if config is None else config
    name = _resolve_name(strategy)
    get_strategy(name)  # fail fast on unknown strategies, before forking
    batch = list(instances)
    reports: List[Optional[SolveReport]] = [None] * len(batch)

    pending: List[int] = []
    keys: List[Optional[Tuple[str, str, str]]] = [None] * len(batch)
    first_seen: Dict[Tuple[str, str, str], int] = {}
    duplicates: List[Tuple[int, int]] = []  # (index, index of first occurrence)
    if config.cache:
        for i, instance in enumerate(batch):
            key = _cache_key(name, instance, config)
            keys[i] = key
            if key is not None and key in _RESULT_CACHE:
                _CACHE_STATS["hits"] += 1
                reports[i] = _with_cache_metadata(_cache_get(key), hit=True)
            elif key is not None and key in first_seen:
                duplicates.append((i, first_seen[key]))
            else:
                if key is not None:
                    first_seen[key] = i
                pending.append(i)
    else:
        pending = list(range(len(batch)))

    if pending:
        payloads = [(batch[i], name, config) for i in pending]
        workers = max_workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if workers > 1 and len(pending) > 1:
            unsafe = _pool_unsafe_reason(name)
            if unsafe is not None:
                warnings.warn(
                    f"solve_many: falling back to sequential in-process "
                    f"execution; {unsafe}", RuntimeWarning, stacklevel=2)
                workers = 1
        if workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                solved = list(pool.map(_solve_task, payloads))
            if config.cache:
                # Worker-side counters live in the worker processes; account
                # for the misses here in the parent.
                _CACHE_STATS["misses"] += sum(
                    1 for i in pending if keys[i] is not None)
        else:
            solved = [_solve_task(payload) for payload in payloads]
        for i, report in zip(pending, solved):
            reports[i] = report
            if config.cache and keys[i] is not None:
                _cache_put(keys[i], report)

    for i, j in duplicates:
        # Structural duplicates inside the batch were solved once; each
        # duplicate gets its own copy of the first occurrence's report with
        # a hit=True cache record, exactly like a report served from the
        # cross-batch cache.
        _CACHE_STATS["hits"] += 1
        reports[i] = _with_cache_metadata(reports[j], hit=True)
    missing = [i for i, report in enumerate(reports) if report is None]
    assert not missing, f"solve_many left unfilled slots: {missing}"
    return reports
