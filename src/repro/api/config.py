"""Solver configuration shared by every `repro.api` strategy.

:class:`SolveConfig` replaces the ad-hoc keyword arguments the algorithm
functions used to grow independently (``tol``/``atol``/``tolerance``/
``solver``/``shortest_path_atol``/...).  One frozen dataclass is threaded from
:func:`repro.api.solve` down through :mod:`repro.core` and
:mod:`repro.equilibrium`, so a batch run is reproducible from its config alone
and a report can embed the exact settings that produced it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional

from repro.exceptions import ModelError

__all__ = ["SolveConfig", "EQUILIBRIUM_BACKENDS", "KERNEL_BACKENDS"]

#: Equilibrium backend identifiers accepted by :class:`SolveConfig`.
#:
#: * ``"auto"`` — water-filling on parallel links, path-based for small
#:   networks, Frank–Wolfe otherwise (the seed behaviour);
#: * ``"parallel"`` — the exact water-filling solver (parallel links only);
#: * ``"frank_wolfe"`` — the Frank–Wolfe iterative solver;
#: * ``"pathbased"`` — the exact path-based SLSQP solver.
EQUILIBRIUM_BACKENDS = ("auto", "parallel", "frank_wolfe", "pathbased")

#: Numeric kernel backends accepted by :class:`SolveConfig`.
#:
#: * ``"vectorized"`` — the batched NumPy kernel layer
#:   (:class:`repro.latency.batch.LatencyBatch`): closed-form water filling on
#:   all-linear instances, the sorted-breakpoint level engine with safeguarded
#:   Newton finishing on mixed closed-form families (array-at-a-time bisection
#:   remains only for generic-bucket links), CSR shortest paths and analytic
#:   line searches inside Frank–Wolfe;
#: * ``"reference"`` — the original scalar implementations (per-link Python
#:   calls), kept as the numerical ground truth for the equivalence suite.
KERNEL_BACKENDS = ("vectorized", "reference")

#: Map from the api backend names to the solver names the network layer uses.
_NETWORK_SOLVER_NAMES = {
    "auto": "auto",
    "frank_wolfe": "frank-wolfe",
    "pathbased": "path",
}


@dataclass(frozen=True)
class SolveConfig:
    """Configuration of one :func:`repro.api.solve` call.

    Attributes
    ----------
    tolerance:
        Convergence tolerance of the network flow solvers (Frank–Wolfe /
        path-based).
    water_fill_tol:
        Tolerance of the exact water-filling solver on parallel links.
    backend:
        Equilibrium backend, one of :data:`EQUILIBRIUM_BACKENDS`.
    kernel_backend:
        Numeric kernel layer, one of :data:`KERNEL_BACKENDS`: the batched
        ``"vectorized"`` kernels (default) or the scalar ``"reference"``
        implementations.  Both agree to solver tolerance; the reference
        backend exists for verification and benchmarking.
    max_iterations:
        Iteration cap of the iterative network solvers.
    underload_atol:
        Absolute slack OpTop uses to classify a link as under-loaded.
    shortest_path_atol:
        Slack MOP uses to classify an edge as lying on a shortest path.
    alpha:
        Leader budget (fraction of the demand) for the budgeted strategies
        ``llf`` / ``scale`` / ``brute_force``; ignored by ``optop`` / ``mop``
        / ``aloof``.  ``None`` selects the default budget of 0.5.
    brute_force_resolution:
        Grid resolution of the brute-force strategy search.
    compute_nash:
        Whether reports should also carry the uncontrolled Nash equilibrium
        (needed for the price-of-anarchy column; costs one extra solve).
    cache:
        Whether :func:`repro.api.solve` / :func:`repro.api.solve_many` may
        reuse results cached under the instance digest.
    profile:
        Opt-in per-phase kernel profiling (:mod:`repro.obs.profiling`).
        When ``True`` the solve runs under a
        :class:`~repro.obs.profiling.PhaseRecorder` and the report carries
        ``metadata["profile"]`` with per-kernel call counts and cumulative
        seconds.  ``False`` (the default) is serialized *by omission* —
        the canonical config JSON of an unprofiled config is byte-for-byte
        what it was before this field existed, so cache keys, artifact
        addresses and golden fixtures are unaffected.
    """

    tolerance: float = 1e-9
    water_fill_tol: float = 1e-12
    backend: str = "auto"
    kernel_backend: str = "vectorized"
    max_iterations: int = 20_000
    underload_atol: float = 1e-8
    shortest_path_atol: float = 1e-5
    alpha: Optional[float] = None
    brute_force_resolution: int = 12
    compute_nash: bool = True
    cache: bool = True
    profile: bool = False

    def __post_init__(self) -> None:
        if self.backend not in EQUILIBRIUM_BACKENDS:
            raise ModelError(
                f"unknown equilibrium backend {self.backend!r}; expected one of "
                f"{', '.join(EQUILIBRIUM_BACKENDS)}")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ModelError(
                f"unknown kernel backend {self.kernel_backend!r}; expected one "
                f"of {', '.join(KERNEL_BACKENDS)}")
        for name in ("tolerance", "water_fill_tol", "underload_atol",
                     "shortest_path_atol"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ModelError(f"{name} must be > 0, got {value!r}")
        if self.max_iterations < 1:
            raise ModelError(
                f"max_iterations must be >= 1, got {self.max_iterations!r}")
        if self.brute_force_resolution < 1:
            raise ModelError(f"brute_force_resolution must be >= 1, got "
                             f"{self.brute_force_resolution!r}")
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise ModelError(f"alpha must lie in [0, 1], got {self.alpha!r}")

    # ------------------------------------------------------------------ #
    # Derived views consumed by the lower layers
    # ------------------------------------------------------------------ #
    def network_solver(self) -> str:
        """The solver name to pass to the :mod:`repro.equilibrium.network` layer."""
        if self.backend == "parallel":
            raise ModelError(
                "backend 'parallel' is the water-filling solver for parallel "
                "links; it cannot solve a network instance")
        return _NETWORK_SOLVER_NAMES[self.backend]

    def budget(self) -> float:
        """The Leader budget used by alpha-parameterised strategies."""
        return 0.5 if self.alpha is None else float(self.alpha)

    def with_alpha(self, alpha: float) -> "SolveConfig":
        """A copy of this config with the Leader budget replaced."""
        return replace(self, alpha=float(alpha))

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible).

        ``profile`` is omitted while ``False`` so the canonical JSON (and
        everything keyed on it: tier-1 cache keys, artifact addresses,
        session cache keys) is unchanged for unprofiled configs.  A
        profiled config *does* serialize the flag — a profiled solve must
        not be served from an unprofiled cache entry that lacks the
        timings.
        """
        data = asdict(self)
        if not data["profile"]:
            del data["profile"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveConfig":
        """Reconstruct a config serialised by :meth:`to_dict`."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ModelError(
                f"unknown SolveConfig fields: {', '.join(sorted(unknown))}")
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON rendering (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolveConfig":
        """Reconstruct a config serialised by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
