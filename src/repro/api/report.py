"""The unified result type of every `repro.api` strategy.

:class:`SolveReport` replaces the zoo of per-algorithm result types
(``OpTopResult``, ``MOPResult``, bare strategy objects from the baselines)
with one flat, JSON-serialisable record.  All flow vectors are plain float
tuples and the instance is embedded in its serialised form, so a report is
self-contained: it can be written to disk, shipped between processes, and
reconstructed losslessly with ``SolveReport.from_json(report.to_json())``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ModelError
from repro.api.config import SolveConfig

__all__ = ["SolveReport"]


def _jsonify(value: Any) -> Any:
    """Normalise ``value`` to what it will look like after a JSON round trip."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _jsonify(value.item())
    raise ModelError(
        f"SolveReport metadata must be JSON-serialisable, found "
        f"{type(value).__name__}")


def _float_tuple(values: Any) -> Tuple[float, ...]:
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class SolveReport:
    """Outcome of solving one instance with one registered strategy.

    Attributes
    ----------
    strategy:
        Registry name of the strategy that produced the report.
    instance_kind:
        ``"parallel"`` or ``"network"``.
    instance:
        The instance in the :mod:`repro.serialization` dictionary format.
    alpha:
        Fraction of the demand the Leader actually controls.
    beta:
        The Price of Optimum, for strategies that compute it (``optop`` /
        ``mop``); ``None`` for budgeted baselines.
    leader_flows / induced_flows / optimum_flows / nash_flows:
        Per-link (parallel) or per-edge (network) flow vectors: the Leader
        strategy ``S``, the induced equilibrium ``S + T``, the system optimum
        ``O`` and the uncontrolled Nash ``N`` (``None`` unless
        ``config.compute_nash``).
    induced_cost / optimum_cost / nash_cost:
        Total costs ``C(S+T)``, ``C(O)`` and ``C(N)``.
    price_of_anarchy:
        ``C(N) / C(O)`` when the Nash equilibrium was computed.
    wall_time:
        Wall-clock seconds spent inside the strategy call.
    config:
        The :class:`~repro.api.config.SolveConfig` that produced the report.
    metadata:
        Strategy-specific, JSON-serialisable solver details (round traces,
        backend names, evaluation counts, ...).
    """

    strategy: str
    instance_kind: str
    instance: Dict[str, Any]
    alpha: float
    beta: Optional[float]
    leader_flows: Tuple[float, ...]
    induced_flows: Tuple[float, ...]
    optimum_flows: Tuple[float, ...]
    nash_flows: Optional[Tuple[float, ...]]
    induced_cost: float
    optimum_cost: float
    nash_cost: Optional[float]
    price_of_anarchy: Optional[float]
    wall_time: float = 0.0
    config: SolveConfig = field(default_factory=SolveConfig)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "instance", _jsonify(self.instance))
        object.__setattr__(self, "metadata", _jsonify(self.metadata))
        object.__setattr__(self, "alpha", float(self.alpha))
        object.__setattr__(self, "beta",
                           None if self.beta is None else float(self.beta))
        object.__setattr__(self, "leader_flows", _float_tuple(self.leader_flows))
        object.__setattr__(self, "induced_flows", _float_tuple(self.induced_flows))
        object.__setattr__(self, "optimum_flows", _float_tuple(self.optimum_flows))
        object.__setattr__(self, "nash_flows",
                           None if self.nash_flows is None
                           else _float_tuple(self.nash_flows))
        object.__setattr__(self, "induced_cost", float(self.induced_cost))
        object.__setattr__(self, "optimum_cost", float(self.optimum_cost))
        object.__setattr__(self, "nash_cost",
                           None if self.nash_cost is None
                           else float(self.nash_cost))
        object.__setattr__(self, "price_of_anarchy",
                           None if self.price_of_anarchy is None
                           else float(self.price_of_anarchy))
        object.__setattr__(self, "wall_time", float(self.wall_time))

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def cost_ratio(self) -> float:
        """A-posteriori ratio ``C(S+T) / C(O)`` (1.0 for a zero optimum)."""
        if self.optimum_cost <= 0.0:
            return 1.0
        return self.induced_cost / self.optimum_cost

    @property
    def attains_optimum(self) -> bool:
        """Whether the induced cost matches the optimum (to solver accuracy)."""
        scale = max(abs(self.optimum_cost), 1e-12)
        return abs(self.induced_cost - self.optimum_cost) / scale < 1e-6

    @property
    def controlled_flow(self) -> float:
        """Total flow routed by the Leader."""
        return float(sum(self.leader_flows))

    @property
    def profile(self) -> Optional[Dict[str, Any]]:
        """Per-phase kernel timings when the solve ran with
        ``SolveConfig(profile=True)`` (see :mod:`repro.obs.profiling`);
        ``None`` otherwise."""
        return self.metadata.get("profile")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        data = asdict(self)
        data["config"] = self.config.to_dict()
        return _jsonify(data)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveReport":
        """Reconstruct a report serialised by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise ModelError(f"invalid SolveReport payload: {data!r}")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ModelError(
                f"unknown SolveReport fields: {', '.join(sorted(unknown))}")
        payload = dict(data)
        payload["config"] = SolveConfig.from_dict(payload.get("config", {}))
        for name in ("leader_flows", "induced_flows", "optimum_flows"):
            payload[name] = _float_tuple(payload[name])
        if payload.get("nash_flows") is not None:
            payload["nash_flows"] = _float_tuple(payload["nash_flows"])
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise to JSON; ``from_json`` inverts this losslessly."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SolveReport":
        """Reconstruct a report serialised by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelError(f"invalid SolveReport JSON: {exc}") from exc
        return cls.from_dict(data)

    def summary(self) -> str:
        """One-line human-readable digest of the report."""
        beta = "-" if self.beta is None else f"{self.beta:.4f}"
        return (f"{self.strategy}[{self.instance_kind}] alpha={self.alpha:.4f} "
                f"beta={beta} C(S+T)={self.induced_cost:.6g} "
                f"C(O)={self.optimum_cost:.6g} ratio={self.cost_ratio:.6g}")
