"""Frank–Wolfe (conditional gradient) solver for network flows.

Both the Wardrop equilibrium (minimise the Beckmann potential) and the system
optimum (minimise the total cost) of a multicommodity instance are convex
programs over the polytope of feasible edge flows.  Frank–Wolfe alternates:

1. linearise the objective at the current flow (per-edge costs: latencies for
   the Beckmann objective, marginal costs for the total-cost objective),
2. solve the linearised problem — an all-or-nothing assignment that routes
   each commodity along its shortest path under those costs,
3. move towards the all-or-nothing flow with the step that minimises the true
   objective along the segment (golden-section line search; the restriction of
   a convex function to a segment is unimodal).

The *relative gap* ``costs . (f - y) / costs . f`` upper-bounds the relative
sub-optimality and is the stopping criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ModelError
from repro.network.instance import NetworkInstance
from repro.paths.dijkstra import shortest_path_edges
from repro.equilibrium.result import NetworkFlowResult
from repro.utils.optimize import golden_section_minimize

__all__ = ["FrankWolfeOptions", "all_or_nothing", "frank_wolfe"]


@dataclass(frozen=True)
class FrankWolfeOptions:
    """Tuning knobs for :func:`frank_wolfe`.

    Attributes
    ----------
    tolerance:
        Target relative gap.
    max_iterations:
        Iteration budget; exceeding it raises :class:`ConvergenceError` when
        ``raise_on_failure`` is set, otherwise the best iterate is returned
        with ``converged=False``.
    line_search_tol:
        Bracket width tolerance of the golden-section line search.
    raise_on_failure:
        Whether a missed tolerance is an error or a soft warning flag.
    """

    tolerance: float = 1e-8
    max_iterations: int = 20_000
    line_search_tol: float = 1e-12
    raise_on_failure: bool = False


def all_or_nothing(instance: NetworkInstance, edge_costs: np.ndarray) -> np.ndarray:
    """Route every commodity entirely along its shortest path under ``edge_costs``."""
    flows = np.zeros(instance.network.num_edges, dtype=float)
    for commodity in instance.commodities:
        path = shortest_path_edges(instance.network, commodity.source,
                                   commodity.sink, edge_costs)
        for idx in path:
            flows[idx] += commodity.demand
    return flows


def frank_wolfe(instance: NetworkInstance, kind: str,
                options: FrankWolfeOptions | None = None) -> NetworkFlowResult:
    """Compute the Nash equilibrium or system optimum of ``instance``.

    ``kind`` is ``"nash"`` (minimise the Beckmann potential; direction costs
    are the latencies) or ``"optimum"`` (minimise the total cost; direction
    costs are the marginal costs).
    """
    options = options or FrankWolfeOptions()
    if kind == "nash":
        direction_costs = instance.latencies_at
        objective = instance.beckmann
    elif kind == "optimum":
        direction_costs = instance.marginal_costs_at
        objective = instance.cost
    else:
        raise ModelError(f"unknown Frank-Wolfe kind {kind!r}")

    zero = np.zeros(instance.network.num_edges, dtype=float)
    flows = all_or_nothing(instance, direction_costs(zero))
    gap = float("inf")
    iteration = 0
    for iteration in range(1, options.max_iterations + 1):
        costs = direction_costs(flows)
        target = all_or_nothing(instance, costs)
        current_value = float(np.dot(costs, flows))
        target_value = float(np.dot(costs, target))
        gap = (current_value - target_value) / max(current_value, 1e-30)
        if gap <= options.tolerance:
            break
        direction = target - flows

        def objective_along(step: float) -> float:
            return objective(flows + step * direction)

        step, _ = golden_section_minimize(objective_along, 0.0, 1.0,
                                          tol=options.line_search_tol)
        if step <= 0.0:
            # Numerical stagnation: fall back to the classical 2/(k+2) step so
            # the method keeps its guaranteed O(1/k) convergence.
            step = 2.0 / (iteration + 2.0)
        flows = flows + step * direction
        np.clip(flows, 0.0, None, out=flows)

    converged = gap <= options.tolerance
    if not converged and options.raise_on_failure:
        raise ConvergenceError(
            f"Frank-Wolfe did not reach gap {options.tolerance!r} "
            f"within {options.max_iterations} iterations (gap={gap!r})",
            iterations=iteration, residual=gap)
    return NetworkFlowResult(
        edge_flows=flows,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind=kind,
        relative_gap=float(gap),
        iterations=iteration,
        converged=converged,
        solver="frank-wolfe",
    )
