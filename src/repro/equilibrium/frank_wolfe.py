"""Frank–Wolfe (conditional gradient) solver for network flows.

Both the Wardrop equilibrium (minimise the Beckmann potential) and the system
optimum (minimise the total cost) of a multicommodity instance are convex
programs over the polytope of feasible edge flows.  Frank–Wolfe alternates:

1. linearise the objective at the current flow (per-edge costs: latencies for
   the Beckmann objective, marginal costs for the total-cost objective),
2. solve the linearised problem — an all-or-nothing assignment that routes
   each commodity along its shortest path under those costs,
3. move towards the all-or-nothing flow with the step that minimises the true
   objective along the segment (the restriction of a convex function to a
   segment is unimodal).

The *relative gap* ``costs . (f - y) / costs . f`` upper-bounds the relative
sub-optimality and is the stopping criterion.

The hot loop is vectorized end to end (selectable via
``FrankWolfeOptions.kernel``):

* the all-or-nothing step groups commodities by source and answers all
  distinct sources with one `scipy.sparse.csgraph.dijkstra` call over the
  network's cached CSR adjacency (:class:`repro.paths.dijkstra.ShortestPathEngine`);
* edge costs are validated once per solve, not once per iteration;
* the line search solves ``g'(s) = 0`` by safeguarded Newton on the batched
  analytic derivatives whenever every edge family provides them
  (:attr:`repro.latency.batch.LatencyBatch.supports_newton`), falling back to
  golden-section on the batched objective otherwise.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConvergenceError, ModelError
from repro.latency.batch import LatencyBatch
from repro.network.instance import NetworkInstance
from repro.obs.profiling import active as _profiling_active
from repro.paths.dijkstra import (
    HAVE_SPARSE_DIJKSTRA,
    ShortestPathEngine,
    shortest_distances,
    validate_edge_costs,
    walk_tree_path,
)
from repro.equilibrium.result import NetworkFlowResult
from repro.utils.optimize import golden_section_minimize

__all__ = ["FrankWolfeOptions", "all_or_nothing", "frank_wolfe"]


@dataclass(frozen=True)
class FrankWolfeOptions:
    """Tuning knobs for :func:`frank_wolfe`.

    Attributes
    ----------
    tolerance:
        Target relative gap.
    max_iterations:
        Iteration budget; exceeding it raises :class:`ConvergenceError` when
        ``raise_on_failure`` is set, otherwise the best iterate is returned
        with ``converged=False``.
    line_search_tol:
        Step tolerance of the line search (bracket width for golden-section,
        step increment for Newton).
    raise_on_failure:
        Whether a missed tolerance is an error or a soft warning flag.
    kernel:
        ``"auto"``/``"vectorized"`` — CSR shortest paths plus the analytic
        Newton line search; ``"reference"`` — the scalar heap Dijkstra and
        golden-section search (the seed behaviour, kept for verification).
    """

    tolerance: float = 1e-8
    max_iterations: int = 20_000
    line_search_tol: float = 1e-12
    raise_on_failure: bool = False
    kernel: str = "auto"


def _commodities_by_source(instance: NetworkInstance,
                           ) -> "OrderedDict[object, List[Tuple[object, float]]]":
    """Group ``(sink, demand)`` pairs by source, preserving first-seen order."""
    groups: "OrderedDict[object, List[Tuple[object, float]]]" = OrderedDict()
    for commodity in instance.commodities:
        groups.setdefault(commodity.source, []).append(
            (commodity.sink, commodity.demand))
    return groups


def all_or_nothing(instance: NetworkInstance, edge_costs: np.ndarray,
                   *, validated: bool = False,
                   kernel: str = "auto") -> np.ndarray:
    """Route every commodity entirely along its shortest path under ``edge_costs``.

    Commodities sharing a source reuse one shortest-path tree, and with the
    vectorized kernel all distinct sources are answered by a single
    `scipy.sparse.csgraph.dijkstra` call.  ``validated=True`` marks the costs
    as already checked by :func:`repro.paths.dijkstra.validate_edge_costs`
    (the Frank–Wolfe loop validates once per solve, not per iteration).
    """
    network = instance.network
    costs = np.asarray(edge_costs, dtype=float) if validated \
        else validate_edge_costs(network, edge_costs)
    groups = _commodities_by_source(instance)
    flows = np.zeros(network.num_edges, dtype=float)
    if kernel != "reference" and HAVE_SPARSE_DIJKSTRA:
        engine = ShortestPathEngine(network, costs, validated=True)
        engine.run(list(groups))
        for source, pairs in groups.items():
            for sink, demand in pairs:
                for idx in engine.path_edges(source, sink):
                    flows[idx] += demand
    else:
        for source, pairs in groups.items():
            dist, pred = shortest_distances(network, source, costs,
                                            validated=True)
            for sink, demand in pairs:
                for idx in walk_tree_path(network, dist, pred, source, sink):
                    flows[idx] += demand
    return flows


def _newton_line_search(batch: LatencyBatch, flows: np.ndarray,
                        direction: np.ndarray, kind: str,
                        *, tol: float, max_iter: int = 100) -> float:
    """Minimise the convex restriction ``g(s) = objective(flows + s*direction)``.

    Solves the stationarity condition ``g'(s) = 0`` on ``[0, s_max]`` with
    Newton steps on the batched analytic derivatives, safeguarded by the
    bisection bracket (``g'`` is non-decreasing).  ``s_max`` stays strictly
    inside every finite latency domain (M/M/1 capacities) along the segment.
    """
    d = direction

    if kind == "nash":
        # g(s) is the Beckmann potential: g' = d . l(x), g'' = d^2 . l'(x).
        def gprime(s: float) -> float:
            return float(np.dot(d, batch.values(flows + s * d)))

        def gsecond(s: float) -> float:
            return float(np.dot(d * d, batch.derivs(flows + s * d)))
    else:
        # g(s) is the total cost: g' = d . mc(x), g'' = d^2 . mc'(x) with
        # mc'(x) = 2 l'(x) + x l''(x).
        def gprime(s: float) -> float:
            return float(np.dot(d, batch.marginals(flows + s * d)))

        def gsecond(s: float) -> float:
            x = flows + s * d
            return float(np.dot(d * d,
                                2.0 * batch.derivs(x) + x * batch.second_derivs(x)))

    hi = 1.0
    domain = batch.domain_upper
    capped = np.isfinite(domain) & (d > 0.0)
    if np.any(capped):
        headroom = (domain[capped] - flows[capped]) / d[capped]
        hi = min(hi, float(np.min(headroom)) * (1.0 - 1e-12))
        if hi <= 0.0:
            return 0.0

    lo = 0.0
    if gprime(lo) >= 0.0:
        return 0.0
    if gprime(hi) <= 0.0:
        return hi
    s = 0.5 * (lo + hi)
    for _ in range(max_iter):
        g = gprime(s)
        if g > 0.0:
            hi = s
        else:
            lo = s
        if hi - lo <= tol:
            break
        curvature = gsecond(s)
        step = s - g / curvature if curvature > 0.0 else 0.5 * (lo + hi)
        # Keep Newton inside the shrinking bracket; bisect when it escapes.
        s = step if lo < step < hi else 0.5 * (lo + hi)
    return 0.5 * (lo + hi)


def frank_wolfe(instance: NetworkInstance, kind: str,
                options: FrankWolfeOptions | None = None) -> NetworkFlowResult:
    """Compute the Nash equilibrium or system optimum of ``instance``.

    ``kind`` is ``"nash"`` (minimise the Beckmann potential; direction costs
    are the latencies) or ``"optimum"`` (minimise the total cost; direction
    costs are the marginal costs).

    When profiling is active (``SolveConfig(profile=True)`` or a tracing
    service batch) each call reports a ``frank_wolfe[<kind>]`` phase; the
    disabled cost is one ``is None`` check on the recorder lookup.
    """
    recorder = _profiling_active()
    if recorder is None:
        return _frank_wolfe(instance, kind, options)
    start = time.perf_counter()
    try:
        return _frank_wolfe(instance, kind, options)
    finally:
        recorder.note(f"frank_wolfe[{kind}]", time.perf_counter() - start)


def _frank_wolfe(instance: NetworkInstance, kind: str,
                 options: FrankWolfeOptions | None = None,
                 ) -> NetworkFlowResult:
    options = options or FrankWolfeOptions()
    if options.kernel not in ("auto", "vectorized", "reference"):
        raise ModelError(f"unknown Frank-Wolfe kernel {options.kernel!r}")
    if kind == "nash":
        direction_costs = instance.latencies_at
        objective = instance.beckmann
    elif kind == "optimum":
        direction_costs = instance.marginal_costs_at
        objective = instance.cost
    else:
        raise ModelError(f"unknown Frank-Wolfe kind {kind!r}")
    kernel = options.kernel
    batch = instance.network.latency_batch()
    use_newton = kernel != "reference" and batch.supports_newton

    zero = np.zeros(instance.network.num_edges, dtype=float)
    # Validate the cost vector once per solve; the per-iteration costs come
    # from the same latency batch over clipped flows, so shape and sign are
    # invariants of the loop, not per-iteration properties.
    initial_costs = validate_edge_costs(instance.network, direction_costs(zero))
    flows = all_or_nothing(instance, initial_costs, validated=True,
                           kernel=kernel)
    gap = float("inf")
    iteration = 0
    for iteration in range(1, options.max_iterations + 1):
        costs = direction_costs(flows)
        target = all_or_nothing(instance, costs, validated=True, kernel=kernel)
        current_value = float(np.dot(costs, flows))
        target_value = float(np.dot(costs, target))
        gap = (current_value - target_value) / max(current_value, 1e-30)
        if gap <= options.tolerance:
            break
        direction = target - flows

        if use_newton:
            step = _newton_line_search(batch, flows, direction, kind,
                                       tol=options.line_search_tol)
        else:
            def objective_along(step: float) -> float:
                return objective(flows + step * direction)

            step, _ = golden_section_minimize(objective_along, 0.0, 1.0,
                                              tol=options.line_search_tol)
        if step <= 0.0:
            # Numerical stagnation: fall back to the classical 2/(k+2) step so
            # the method keeps its guaranteed O(1/k) convergence.
            step = 2.0 / (iteration + 2.0)
        flows = flows + step * direction
        np.clip(flows, 0.0, None, out=flows)

    converged = gap <= options.tolerance
    if not converged and options.raise_on_failure:
        raise ConvergenceError(
            f"Frank-Wolfe did not reach gap {options.tolerance!r} "
            f"within {options.max_iterations} iterations (gap={gap!r})",
            iterations=iteration, residual=gap)
    return NetworkFlowResult(
        edge_flows=flows,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind=kind,
        relative_gap=float(gap),
        iterations=iteration,
        converged=converged,
        solver="frank-wolfe",
    )
