"""Verification of equilibrium and optimality conditions.

The tests and the experiment harness use these residuals to certify that the
flows produced by the solvers really satisfy the defining conditions of the
paper's model rather than merely being fixed points of our own iterations:

* Wardrop condition (Remark 4.1 / Section 4): every used link/path has
  latency no larger than any alternative.
* Optimality condition: every used link has marginal cost no larger than any
  alternative (KKT conditions of the convex cost minimisation).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.paths.dijkstra import shortest_distances

__all__ = [
    "parallel_wardrop_gap",
    "parallel_optimality_gap",
    "network_wardrop_gap",
]


def _support_violation(levels: np.ndarray, flows: np.ndarray,
                       *, flow_atol: float) -> float:
    """Largest amount by which a *used* entry exceeds the smallest level."""
    used = flows > flow_atol
    if not np.any(used):
        return 0.0
    return float(np.max(levels[used]) - np.min(levels))


def parallel_wardrop_gap(instance: ParallelLinkInstance, flows: Sequence[float],
                         *, flow_atol: float = 1e-9) -> float:
    """How far ``flows`` is from a Wardrop equilibrium.

    Returns the largest excess latency of a used link over the minimum latency
    across all links; a true Nash equilibrium has gap ~0.
    """
    arr = np.asarray(flows, dtype=float)
    latencies = instance.latencies_at(arr)
    return _support_violation(latencies, arr, flow_atol=flow_atol)


def parallel_optimality_gap(instance: ParallelLinkInstance, flows: Sequence[float],
                            *, flow_atol: float = 1e-9) -> float:
    """How far ``flows`` is from satisfying the optimum's KKT conditions.

    Returns the largest excess marginal cost of a used link over the minimum
    marginal cost across all links.
    """
    arr = np.asarray(flows, dtype=float)
    marginals = instance.marginal_costs_at(arr)
    return _support_violation(marginals, arr, flow_atol=flow_atol)


def network_wardrop_gap(instance: NetworkInstance, edge_flows: Sequence[float],
                        *, flow_atol: float = 1e-7) -> float:
    """Wardrop residual of a network flow.

    For each commodity the gap compares the latency of used paths against the
    shortest-path latency under the flow-induced edge costs.  Because path
    flows are not stored, the per-commodity residual is measured edge-wise on
    the shortest-path DAG: it is the largest violation of
    ``dist(tail) + l_e(f_e) >= dist(head)`` complementarity over edges carrying
    flow, i.e. how much a used edge "overshoots" the label of its head node.
    A Wardrop equilibrium has residual ~0; the converse holds for
    single-commodity instances (every used path then has minimal latency).
    """
    flows = np.asarray(edge_flows, dtype=float)
    costs = instance.latencies_at(flows)
    worst = 0.0
    for commodity in instance.commodities:
        dist, _ = shortest_distances(instance.network, commodity.source, costs)
        for idx, edge in enumerate(instance.network.edges):
            if flows[idx] <= flow_atol:
                continue
            du = dist.get(edge.tail, math.inf)
            dv = dist.get(edge.head, math.inf)
            if math.isinf(du) or math.isinf(dv):
                continue
            slack = du + costs[idx] - dv
            worst = max(worst, slack)
    return float(worst)
