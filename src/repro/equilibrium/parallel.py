"""Exact water-filling solvers for parallel-link instances.

A Nash (Wardrop) equilibrium on parallel links equalises *latencies* on used
links (Remark 4.1); a system optimum equalises *marginal costs* (the KKT
condition of minimising the convex cost ``sum_i x_i l_i(x_i)`` over the
simplex).  In both cases the flow on every strictly increasing link is a
non-decreasing function of the common level, so the level solves a monotone
scalar equation.

Two backends compute that level:

* ``"vectorized"`` (the default) works on a
  :class:`~repro.latency.batch.LatencyBatch`.  All-linear instances are
  solved *exactly* in O(m log m) by the sorted-breakpoint closed form
  (:func:`repro.utils.vectorized.piecewise_linear_level`) — no bisection at
  all.  Mixed families fall back to bracketing plus bisection, but every
  step evaluates all links in one array op instead of ``m`` Python calls.
* ``"reference"`` is the original scalar implementation (per-link Python
  lambdas inside the bisection); it remains selectable through
  ``SolveConfig(kernel_backend="reference")`` and anchors the equivalence
  test-suite.

Constant-latency links (the documented extension; Pigou's example uses one)
act as flow sinks: once the common level of the increasing links would exceed
the smallest constant, the corresponding links absorb the excess flow at that
fixed latency.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig

from repro.exceptions import ConvergenceError, ModelError
from repro.latency.base import LatencyFunction
from repro.latency.batch import LatencyBatch
from repro.network.parallel import ParallelLinkInstance
from repro.obs.profiling import active as _profiling_active
from repro.equilibrium.result import ParallelFlowResult
from repro.utils.rootfind import bisect_root, expand_upper_bracket
from repro.utils.vectorized import piecewise_linear_level

__all__ = ["parallel_nash", "parallel_optimum", "water_fill", "WATER_FILL_BACKENDS"]

#: Backends accepted by :func:`water_fill` (``"auto"`` means vectorized).
WATER_FILL_BACKENDS = ("auto", "vectorized", "reference")


def _link_level_and_inverse(kind: str) -> Tuple[Callable[[LatencyFunction, float], float],
                                                Callable[[LatencyFunction, float], float]]:
    """Per-link level function and its inverse for the requested solve kind."""
    if kind == "nash":
        return (lambda lat, x: float(lat.value(x)),
                lambda lat, y: float(lat.inverse_value(y)))
    if kind == "optimum":
        return (lambda lat, x: float(lat.marginal_cost(x)),
                lambda lat, y: float(lat.inverse_marginal(y)))
    raise ModelError(f"unknown water-filling kind {kind!r}")


def water_fill(latencies: Sequence[LatencyFunction], demand: float,
               kind: str, *, tol: float = 1e-12, backend: str = "auto",
               batch: Optional[LatencyBatch] = None) -> Tuple[np.ndarray, float]:
    """Distribute ``demand`` across ``latencies`` equalising the chosen level.

    ``kind`` is ``"nash"`` (equalise latencies) or ``"optimum"`` (equalise
    marginal costs).  ``backend`` selects the vectorized kernel (``"auto"`` /
    ``"vectorized"``) or the scalar ``"reference"`` implementation; a prebuilt
    ``batch`` over the same latencies avoids re-grouping on repeated solves.
    Returns ``(flows, common_level)`` where ``common_level`` is the equalised
    value on loaded links; unloaded links have a level at least as large.

    When profiling is active (``SolveConfig(profile=True)`` or a tracing
    service batch) each call reports a ``water_fill[<kind>]`` phase; when
    it is not — the default — the overhead is the one ``is None`` check
    on the recorder lookup.
    """
    recorder = _profiling_active()
    if recorder is None:
        return _water_fill(latencies, demand, kind, tol=tol,
                           backend=backend, batch=batch)
    start = time.perf_counter()
    try:
        return _water_fill(latencies, demand, kind, tol=tol,
                           backend=backend, batch=batch)
    finally:
        recorder.note(f"water_fill[{kind}]", time.perf_counter() - start)


def _water_fill(latencies: Sequence[LatencyFunction], demand: float,
                kind: str, *, tol: float = 1e-12, backend: str = "auto",
                batch: Optional[LatencyBatch] = None,
                ) -> Tuple[np.ndarray, float]:
    if backend not in WATER_FILL_BACKENDS:
        raise ModelError(
            f"unknown water_fill backend {backend!r}; expected one of "
            f"{', '.join(WATER_FILL_BACKENDS)}")
    if backend == "reference":
        return _water_fill_reference(latencies, demand, kind, tol=tol)
    _link_level_and_inverse(kind)  # validate ``kind`` before any work
    if batch is None:
        batch = LatencyBatch(latencies)
    m = batch.size
    if m == 0:
        raise ModelError("water_fill needs at least one link")
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")

    level_at_zero = batch.values_at_zero  # marginal cost at 0 equals l(0)
    flows = np.zeros(m, dtype=float)
    if demand == 0.0:
        return flows, float(level_at_zero.min())

    const_mask = batch.is_constant
    inc_mask = ~const_mask
    inverse = batch.inverse_values if kind == "nash" else batch.inverse_marginals

    constant_floor = float(level_at_zero[const_mask].min()) if const_mask.any() \
        else float("inf")

    if inc_mask.any():
        linear = batch.linear_increasing_params()
        if linear is not None:
            # Pure linear/affine instance: exact sorted-breakpoint solve.
            slopes, intercepts, _ = linear
            weights = 1.0 / slopes if kind == "nash" else 1.0 / (2.0 * slopes)
            level_star = piecewise_linear_level(weights, intercepts, demand)
        else:
            # Mixed families: bracket + bisect the level; each evaluation
            # inverts every increasing link in one batched call.
            lo = float(level_at_zero[inc_mask].min())

            def gap(level: float) -> float:
                return float(inverse(level)[inc_mask].sum()) - demand

            try:
                hi = expand_upper_bracket(gap, lo, initial=max(1.0, abs(lo)))
                level_star = bisect_root(gap, lo, hi, tol=tol)
            except (ModelError, ConvergenceError):
                level_star = float("inf")
    else:
        level_star = float("inf")

    if level_star <= constant_floor:
        # The strictly increasing links absorb everything below the cheapest
        # constant link; constants stay empty.
        flows[inc_mask] = inverse(level_star)[inc_mask]
        level = level_star
    else:
        # Constants at the floor latency absorb the excess flow.
        if not const_mask.any():
            raise ModelError(
                "demand cannot be routed: no constant links and the increasing "
                "links cannot absorb the demand")
        level = constant_floor
        if inc_mask.any():
            flows[inc_mask] = inverse(level)[inc_mask]
        leftover = max(0.0, demand - float(flows.sum()))
        sinks = const_mask & (level_at_zero <= constant_floor + 1e-12)
        flows[sinks] = leftover / int(np.count_nonzero(sinks))

    return _normalise_total(flows, demand), float(level)


def _normalise_total(flows: np.ndarray, demand: float) -> np.ndarray:
    """Spread tiny rounding over loaded links so flows sum exactly to demand."""
    total = float(flows.sum())
    if total > 0.0 and abs(total - demand) > 0.0:
        correction = demand - total
        loaded = flows > 0.0
        if np.any(loaded):
            flows[loaded] += correction * flows[loaded] / flows[loaded].sum()
    return np.clip(flows, 0.0, None)


def _water_fill_reference(latencies: Sequence[LatencyFunction], demand: float,
                          kind: str, *, tol: float = 1e-12,
                          ) -> Tuple[np.ndarray, float]:
    """The scalar water-filling solver (per-link Python calls; the seed code)."""
    latencies = list(latencies)
    m = len(latencies)
    if m == 0:
        raise ModelError("water_fill needs at least one link")
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    level_of, inverse_of = _link_level_and_inverse(kind)

    flows = np.zeros(m, dtype=float)
    if demand == 0.0:
        level = min(level_of(lat, 0.0) for lat in latencies)
        return flows, level

    increasing: List[int] = [i for i, lat in enumerate(latencies)
                             if not lat.is_constant]
    constants: List[int] = [i for i, lat in enumerate(latencies) if lat.is_constant]

    def filled_at(level: float) -> float:
        return sum(inverse_of(latencies[i], level) for i in increasing)

    constant_floor = min((level_of(latencies[i], 0.0) for i in constants),
                         default=float("inf"))

    if increasing:
        lo = min(level_of(latencies[i], 0.0) for i in increasing)
        # Bracket the level at which the increasing links alone absorb the demand.
        try:
            hi = expand_upper_bracket(lambda lv: filled_at(lv) - demand, lo,
                                      initial=max(1.0, abs(lo)))
            level_star = bisect_root(lambda lv: filled_at(lv) - demand, lo, hi, tol=tol)
        except (ModelError, ConvergenceError):
            level_star = float("inf")
    else:
        level_star = float("inf")

    if level_star <= constant_floor:
        # The strictly increasing links absorb everything below the cheapest
        # constant link; constants stay empty.
        for i in increasing:
            flows[i] = inverse_of(latencies[i], level_star)
        level = level_star
    else:
        # Constants at the floor latency absorb the excess flow.
        if not constants:
            raise ModelError(
                "demand cannot be routed: no constant links and the increasing "
                "links cannot absorb the demand")
        level = constant_floor
        for i in increasing:
            flows[i] = inverse_of(latencies[i], level)
        leftover = demand - float(flows.sum())
        if leftover < 0.0:
            leftover = 0.0
        sinks = [i for i in constants
                 if level_of(latencies[i], 0.0) <= constant_floor + 1e-12]
        share = leftover / len(sinks)
        for i in sinks:
            flows[i] = share

    return _normalise_total(flows, demand), float(level)


def _resolve_tol(tol: "float | None", config: "SolveConfig | None") -> float:
    """Water-filling tolerance: explicit ``tol`` wins, then config, then default."""
    if tol is not None:
        return tol
    if config is not None:
        return config.water_fill_tol
    return 1e-12


def _resolve_backend(backend: "str | None", config: "SolveConfig | None") -> str:
    """Kernel backend: explicit ``backend`` wins, then config, then vectorized."""
    if backend is not None:
        return backend
    if config is not None:
        return config.kernel_backend
    return "auto"


def parallel_nash(instance: ParallelLinkInstance, *, tol: "float | None" = None,
                  config: "SolveConfig | None" = None,
                  backend: "str | None" = None) -> ParallelFlowResult:
    """The Nash (Wardrop) equilibrium ``N`` of a parallel-link instance.

    All loaded links share the common latency ``L_N`` returned in
    ``common_value``; empty links have latency at least ``L_N`` (Remark 4.1).
    The flow is unique on strictly increasing links.  Settings may come from
    an explicit ``tol``/``backend`` or a :class:`repro.api.SolveConfig`.
    """
    tol = _resolve_tol(tol, config)
    backend = _resolve_backend(backend, config)
    flows, level = water_fill(
        instance.latencies, instance.demand, "nash", tol=tol, backend=backend,
        batch=None if backend == "reference" else instance.latency_batch())
    return ParallelFlowResult(
        flows=flows,
        common_value=level,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind="nash",
    )


def parallel_optimum(instance: ParallelLinkInstance, *, tol: "float | None" = None,
                     config: "SolveConfig | None" = None,
                     backend: "str | None" = None) -> ParallelFlowResult:
    """The system optimum ``O`` of a parallel-link instance.

    All loaded links share the common marginal cost returned in
    ``common_value``; empty links have marginal cost at least that value.
    Settings may come from an explicit ``tol``/``backend`` or a
    :class:`repro.api.SolveConfig`.
    """
    tol = _resolve_tol(tol, config)
    backend = _resolve_backend(backend, config)
    flows, level = water_fill(
        instance.latencies, instance.demand, "optimum", tol=tol, backend=backend,
        batch=None if backend == "reference" else instance.latency_batch())
    return ParallelFlowResult(
        flows=flows,
        common_value=level,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind="optimum",
    )
