"""Exact water-filling solvers for parallel-link instances.

A Nash (Wardrop) equilibrium on parallel links equalises *latencies* on used
links (Remark 4.1); a system optimum equalises *marginal costs* (the KKT
condition of minimising the convex cost ``sum_i x_i l_i(x_i)`` over the
simplex).  In both cases the flow on every strictly increasing link is a
non-decreasing function of the common level, so the level solves a monotone
scalar equation.

Two backends compute that level:

* ``"vectorized"`` (the default) works on a
  :class:`~repro.latency.batch.LatencyBatch`.  All-linear instances are
  solved *exactly* in O(m log m) by the sorted-breakpoint closed form
  (:func:`repro.utils.vectorized.piecewise_linear_level`) — no bisection at
  all.  Mixed closed-form families (linear, M/M/1, power, monomial-like
  polynomial) go through the generic *sorted-breakpoint level engine*
  (:func:`repro.utils.vectorized.sorted_breakpoint_level`): the filled flow
  is evaluated on the grid of activation breakpoints in one broadcast, one
  ``searchsorted`` locates the active segment, and a few safeguarded Newton
  steps finish inside it.  Rows without a closed-form inverse (multi-term
  polynomials; shifted powers under marginal-cost equalisation) join the
  solve as a scalar ``extra`` term, and only instances with strictly
  increasing *generic*-bucket links fall back to the legacy bracket +
  bisection level solve.
* ``"reference"`` is the original scalar implementation (per-link Python
  lambdas inside the bisection); it remains selectable through
  ``SolveConfig(kernel_backend="reference")`` and anchors the equivalence
  test-suite.

:func:`water_fill_many` solves a whole batch of demands over one link system
(a coalesced service micro-batch, a ``StudySpec`` demand axis, an elastic
trace) in a single vectorized pass sharing the sorted breakpoints across
instances.

Constant-latency links (the documented extension; Pigou's example uses one)
act as flow sinks: once the common level of the increasing links would exceed
the smallest constant, the corresponding links absorb the excess flow at that
fixed latency.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig

from repro.exceptions import ConvergenceError, ModelError
from repro.latency.base import LatencyFunction
from repro.latency.batch import LatencyBatch
from repro.network.parallel import ParallelLinkInstance
from repro.obs.profiling import active as _profiling_active
from repro.equilibrium.result import ParallelFlowResult
from repro.utils.rootfind import bisect_root, expand_upper_bracket
from repro.utils.vectorized import (
    piecewise_linear_level,
    piecewise_linear_levels,
    sorted_breakpoint_level,
    sorted_breakpoint_levels,
)

__all__ = ["parallel_nash", "parallel_optimum", "water_fill",
           "water_fill_many", "WATER_FILL_BACKENDS"]

#: Backends accepted by :func:`water_fill` (``"auto"`` means vectorized).
WATER_FILL_BACKENDS = ("auto", "vectorized", "reference")


def _link_level_and_inverse(kind: str) -> Tuple[Callable[[LatencyFunction, float], float],
                                                Callable[[LatencyFunction, float], float]]:
    """Per-link level function and its inverse for the requested solve kind."""
    if kind == "nash":
        return (lambda lat, x: float(lat.value(x)),
                lambda lat, y: float(lat.inverse_value(y)))
    if kind == "optimum":
        return (lambda lat, x: float(lat.marginal_cost(x)),
                lambda lat, y: float(lat.inverse_marginal(y)))
    raise ModelError(f"unknown water-filling kind {kind!r}")


def water_fill(latencies: Sequence[LatencyFunction], demand: float,
               kind: str, *, tol: float = 1e-12, backend: str = "auto",
               batch: Optional[LatencyBatch] = None) -> Tuple[np.ndarray, float]:
    """Distribute ``demand`` across ``latencies`` equalising the chosen level.

    ``kind`` is ``"nash"`` (equalise latencies) or ``"optimum"`` (equalise
    marginal costs).  ``backend`` selects the vectorized kernel (``"auto"`` /
    ``"vectorized"``) or the scalar ``"reference"`` implementation; a prebuilt
    ``batch`` over the same latencies avoids re-grouping on repeated solves.
    Returns ``(flows, common_level)`` where ``common_level`` is the equalised
    value on loaded links; unloaded links have a level at least as large.

    When profiling is active (``SolveConfig(profile=True)`` or a tracing
    service batch) each call reports a ``water_fill[<kind>]`` phase; when
    it is not — the default — the overhead is the one ``is None`` check
    on the recorder lookup.
    """
    recorder = _profiling_active()
    if recorder is None:
        return _water_fill(latencies, demand, kind, tol=tol,
                           backend=backend, batch=batch)
    start = time.perf_counter()
    try:
        return _water_fill(latencies, demand, kind, tol=tol,
                           backend=backend, batch=batch)
    finally:
        recorder.note(f"water_fill[{kind}]", time.perf_counter() - start)


def water_fill_many(latencies: Sequence[LatencyFunction],
                    demands: Sequence[float], kind: str, *,
                    tol: float = 1e-12, backend: str = "auto",
                    batch: Optional[LatencyBatch] = None,
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`water_fill`: many demands over one link system at once.

    Solves the water-filling problem for every entry of ``demands`` over the
    *same* latencies — the shape of a coalesced service micro-batch, a
    ``StudySpec`` demand axis or an elastic-demand trace.  Returns
    ``(flows, levels)`` with ``flows`` of shape ``(len(demands), m)`` and one
    common level per demand; row ``j`` equals
    ``water_fill(latencies, demands[j], kind)`` to solver tolerance.

    The vectorized backend shares all demand-independent structure across the
    batch: the family grouping, the sorted activation breakpoints and the
    grid of filled flows are computed once, segment location is one
    ``searchsorted`` over the whole demand vector, and the safeguarded Newton
    iterations run for all pending demands simultaneously.  Instances whose
    links need a numeric fallback (generic bucket, non-closed-form rows) and
    the ``"reference"`` backend fall back to a per-demand loop.

    Raises :class:`~repro.exceptions.ModelError` if *any* demand cannot be
    routed (no constant links and the increasing links saturate below it).
    """
    recorder = _profiling_active()
    if recorder is None:
        return _water_fill_many(latencies, demands, kind, tol=tol,
                                backend=backend, batch=batch)
    start = time.perf_counter()
    try:
        return _water_fill_many(latencies, demands, kind, tol=tol,
                                backend=backend, batch=batch)
    finally:
        recorder.note(f"water_fill_many[{kind}]", time.perf_counter() - start)


def _water_fill_many(latencies: Sequence[LatencyFunction],
                     demands: Sequence[float], kind: str, *,
                     tol: float = 1e-12, backend: str = "auto",
                     batch: Optional[LatencyBatch] = None,
                     ) -> Tuple[np.ndarray, np.ndarray]:
    if backend not in WATER_FILL_BACKENDS:
        raise ModelError(
            f"unknown water_fill backend {backend!r}; expected one of "
            f"{', '.join(WATER_FILL_BACKENDS)}")
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1:
        raise ModelError(
            f"water_fill_many needs a 1-d demand array, got shape "
            f"{demands.shape}")
    if np.any(demands < 0.0):
        raise ModelError("demands must be >= 0")
    if backend == "reference":
        latencies = list(latencies)
        flows = np.zeros((demands.shape[0], len(latencies)))
        levels = np.empty(demands.shape[0])
        for j, d in enumerate(demands):
            flows[j], levels[j] = _water_fill_reference(
                latencies, float(d), kind, tol=tol)
        return flows, levels

    _link_level_and_inverse(kind)  # validate ``kind`` before any work
    if batch is None:
        batch = LatencyBatch(latencies)
    m = batch.size
    if m == 0:
        raise ModelError("water_fill needs at least one link")
    count = demands.shape[0]
    flows = np.zeros((count, m), dtype=float)
    levels = np.empty(count, dtype=float)
    if count == 0:
        return flows, levels

    level_at_zero = batch.values_at_zero
    const_mask = batch.is_constant
    inc_mask = ~const_mask
    inverse = batch.inverse_values if kind == "nash" else batch.inverse_marginals
    constant_floor = float(level_at_zero[const_mask].min()) if const_mask.any() \
        else float("inf")
    min_level = float(level_at_zero.min())

    # Per-demand common level of the increasing links, solved batched when
    # every link admits a closed form; otherwise one scalar solve per demand.
    level_star = np.full(count, np.inf)
    positive = demands > 0.0
    if inc_mask.any() and positive.any():
        batched = False
        linear = batch.linear_increasing_params()
        if linear is not None:
            slopes, intercepts, _ = linear
            weights = 1.0 / slopes if kind == "nash" else 1.0 / (2.0 * slopes)
            level_star[positive] = piecewise_linear_levels(
                weights, intercepts, demands[positive])
            batched = True
        else:
            profile = batch.level_profile(kind)
            if profile is not None and not profile.has_numeric:
                try:
                    grid_levels, grid_flows = profile.grid()
                    level_star[positive] = sorted_breakpoint_levels(
                        grid_levels, demands[positive],
                        profile.flow_grid, profile.dflow_grid,
                        grid_flows=grid_flows,
                        flow_dflow_grid=profile.flow_dflow_grid, tol=tol)
                    batched = True
                except (ModelError, ConvergenceError):
                    batched = False  # e.g. one demand saturates the links
        if not batched:
            # Numeric/generic rows (or a failed shared bracket): per-demand
            # scalar solves, bit-identical to water_fill.
            for j in range(count):
                flows[j], levels[j] = _water_fill(
                    latencies, float(demands[j]), kind, tol=tol, batch=batch)
            return flows, levels

    for j in range(count):
        demand = float(demands[j])
        if demand == 0.0:
            levels[j] = min_level
            continue
        star = float(level_star[j])
        if star <= constant_floor:
            flows[j, inc_mask] = inverse(star)[inc_mask]
            levels[j] = star
        else:
            if not const_mask.any():
                raise ModelError(
                    "demand cannot be routed: no constant links and the "
                    "increasing links cannot absorb the demand")
            levels[j] = constant_floor
            if inc_mask.any():
                flows[j, inc_mask] = inverse(constant_floor)[inc_mask]
            leftover = max(0.0, demand - float(flows[j].sum()))
            sinks = const_mask & (level_at_zero <= constant_floor + 1e-12)
            flows[j, sinks] = leftover / int(np.count_nonzero(sinks))
        flows[j] = _normalise_total(flows[j], demand)
    return flows, levels


def _water_fill(latencies: Sequence[LatencyFunction], demand: float,
                kind: str, *, tol: float = 1e-12, backend: str = "auto",
                batch: Optional[LatencyBatch] = None,
                ) -> Tuple[np.ndarray, float]:
    if backend not in WATER_FILL_BACKENDS:
        raise ModelError(
            f"unknown water_fill backend {backend!r}; expected one of "
            f"{', '.join(WATER_FILL_BACKENDS)}")
    if backend == "reference":
        return _water_fill_reference(latencies, demand, kind, tol=tol)
    _link_level_and_inverse(kind)  # validate ``kind`` before any work
    if batch is None:
        batch = LatencyBatch(latencies)
    m = batch.size
    if m == 0:
        raise ModelError("water_fill needs at least one link")
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")

    level_at_zero = batch.values_at_zero  # marginal cost at 0 equals l(0)
    flows = np.zeros(m, dtype=float)
    if demand == 0.0:
        return flows, float(level_at_zero.min())

    const_mask = batch.is_constant
    inc_mask = ~const_mask
    inverse = batch.inverse_values if kind == "nash" else batch.inverse_marginals

    constant_floor = float(level_at_zero[const_mask].min()) if const_mask.any() \
        else float("inf")

    if inc_mask.any():
        linear = batch.linear_increasing_params()
        if linear is not None:
            # Pure linear/affine instance: exact sorted-breakpoint solve.
            slopes, intercepts, _ = linear
            weights = 1.0 / slopes if kind == "nash" else 1.0 / (2.0 * slopes)
            level_star = piecewise_linear_level(weights, intercepts, demand)
        else:
            profile = batch.level_profile(kind)
            if profile is not None:
                # Mixed closed-form families: sorted-breakpoint engine —
                # one broadcast over the activation grid, one searchsorted,
                # a few safeguarded Newton steps inside the active segment.
                try:
                    grid_levels, grid_flows = profile.grid()
                    level_star = sorted_breakpoint_level(
                        grid_levels, demand, profile.flow_grid,
                        grid_flows=grid_flows,
                        extra=profile.extra if profile.has_numeric else None,
                        flow_dflow=profile.flow_dflow, tol=tol)
                except (ModelError, ConvergenceError):
                    level_star = float("inf")
            else:
                # Strictly increasing generic-bucket links: no closed form
                # at all, so bracket + bisect the level; each evaluation
                # still inverts every increasing link in one batched call.
                lo = float(level_at_zero[inc_mask].min())

                def gap(level: float) -> float:
                    return float(inverse(level)[inc_mask].sum()) - demand

                try:
                    hi = expand_upper_bracket(gap, lo,
                                              initial=max(1.0, abs(lo)))
                    level_star = bisect_root(gap, lo, hi, tol=tol)
                except (ModelError, ConvergenceError):
                    level_star = float("inf")
    else:
        level_star = float("inf")

    if level_star <= constant_floor:
        # The strictly increasing links absorb everything below the cheapest
        # constant link; constants stay empty.
        flows[inc_mask] = inverse(level_star)[inc_mask]
        level = level_star
    else:
        # Constants at the floor latency absorb the excess flow.
        if not const_mask.any():
            raise ModelError(
                "demand cannot be routed: no constant links and the increasing "
                "links cannot absorb the demand")
        level = constant_floor
        if inc_mask.any():
            flows[inc_mask] = inverse(level)[inc_mask]
        leftover = max(0.0, demand - float(flows.sum()))
        sinks = const_mask & (level_at_zero <= constant_floor + 1e-12)
        flows[sinks] = leftover / int(np.count_nonzero(sinks))

    return _normalise_total(flows, demand), float(level)


def _normalise_total(flows: np.ndarray, demand: float) -> np.ndarray:
    """Spread tiny rounding over loaded links so flows sum exactly to demand."""
    total = float(flows.sum())
    if total > 0.0 and abs(total - demand) > 0.0:
        correction = demand - total
        loaded = flows > 0.0
        if np.any(loaded):
            flows[loaded] += correction * flows[loaded] / flows[loaded].sum()
    return np.clip(flows, 0.0, None)


def _water_fill_reference(latencies: Sequence[LatencyFunction], demand: float,
                          kind: str, *, tol: float = 1e-12,
                          ) -> Tuple[np.ndarray, float]:
    """The scalar water-filling solver (per-link Python calls; the seed code)."""
    latencies = list(latencies)
    m = len(latencies)
    if m == 0:
        raise ModelError("water_fill needs at least one link")
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    level_of, inverse_of = _link_level_and_inverse(kind)

    flows = np.zeros(m, dtype=float)
    if demand == 0.0:
        level = min(level_of(lat, 0.0) for lat in latencies)
        return flows, level

    increasing: List[int] = [i for i, lat in enumerate(latencies)
                             if not lat.is_constant]
    constants: List[int] = [i for i, lat in enumerate(latencies) if lat.is_constant]

    def filled_at(level: float) -> float:
        return sum(inverse_of(latencies[i], level) for i in increasing)

    constant_floor = min((level_of(latencies[i], 0.0) for i in constants),
                         default=float("inf"))

    if increasing:
        lo = min(level_of(latencies[i], 0.0) for i in increasing)
        # Bracket the level at which the increasing links alone absorb the demand.
        try:
            hi = expand_upper_bracket(lambda lv: filled_at(lv) - demand, lo,
                                      initial=max(1.0, abs(lo)))
            level_star = bisect_root(lambda lv: filled_at(lv) - demand, lo, hi, tol=tol)
        except (ModelError, ConvergenceError):
            level_star = float("inf")
    else:
        level_star = float("inf")

    if level_star <= constant_floor:
        # The strictly increasing links absorb everything below the cheapest
        # constant link; constants stay empty.
        for i in increasing:
            flows[i] = inverse_of(latencies[i], level_star)
        level = level_star
    else:
        # Constants at the floor latency absorb the excess flow.
        if not constants:
            raise ModelError(
                "demand cannot be routed: no constant links and the increasing "
                "links cannot absorb the demand")
        level = constant_floor
        for i in increasing:
            flows[i] = inverse_of(latencies[i], level)
        leftover = demand - float(flows.sum())
        if leftover < 0.0:
            leftover = 0.0
        sinks = [i for i in constants
                 if level_of(latencies[i], 0.0) <= constant_floor + 1e-12]
        share = leftover / len(sinks)
        for i in sinks:
            flows[i] = share

    return _normalise_total(flows, demand), float(level)


def _resolve_tol(tol: "float | None", config: "SolveConfig | None") -> float:
    """Water-filling tolerance: explicit ``tol`` wins, then config, then default."""
    if tol is not None:
        return tol
    if config is not None:
        return config.water_fill_tol
    return 1e-12


def _resolve_backend(backend: "str | None", config: "SolveConfig | None") -> str:
    """Kernel backend: explicit ``backend`` wins, then config, then vectorized."""
    if backend is not None:
        return backend
    if config is not None:
        return config.kernel_backend
    return "auto"


def parallel_nash(instance: ParallelLinkInstance, *, tol: "float | None" = None,
                  config: "SolveConfig | None" = None,
                  backend: "str | None" = None) -> ParallelFlowResult:
    """The Nash (Wardrop) equilibrium ``N`` of a parallel-link instance.

    All loaded links share the common latency ``L_N`` returned in
    ``common_value``; empty links have latency at least ``L_N`` (Remark 4.1).
    The flow is unique on strictly increasing links.  Settings may come from
    an explicit ``tol``/``backend`` or a :class:`repro.api.SolveConfig`.
    """
    tol = _resolve_tol(tol, config)
    backend = _resolve_backend(backend, config)
    flows, level = water_fill(
        instance.latencies, instance.demand, "nash", tol=tol, backend=backend,
        batch=None if backend == "reference" else instance.latency_batch())
    return ParallelFlowResult(
        flows=flows,
        common_value=level,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind="nash",
    )


def parallel_optimum(instance: ParallelLinkInstance, *, tol: "float | None" = None,
                     config: "SolveConfig | None" = None,
                     backend: "str | None" = None) -> ParallelFlowResult:
    """The system optimum ``O`` of a parallel-link instance.

    All loaded links share the common marginal cost returned in
    ``common_value``; empty links have marginal cost at least that value.
    Settings may come from an explicit ``tol``/``backend`` or a
    :class:`repro.api.SolveConfig`.
    """
    tol = _resolve_tol(tol, config)
    backend = _resolve_backend(backend, config)
    flows, level = water_fill(
        instance.latencies, instance.demand, "optimum", tol=tol, backend=backend,
        batch=None if backend == "reference" else instance.latency_batch())
    return ParallelFlowResult(
        flows=flows,
        common_value=level,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind="optimum",
    )
