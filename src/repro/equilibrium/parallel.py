"""Exact water-filling solvers for parallel-link instances.

A Nash (Wardrop) equilibrium on parallel links equalises *latencies* on used
links (Remark 4.1); a system optimum equalises *marginal costs* (the KKT
condition of minimising the convex cost ``sum_i x_i l_i(x_i)`` over the
simplex).  In both cases the flow on every strictly increasing link is a
non-decreasing function of the common level, so the level solves a monotone
scalar equation computed here by bracketing plus bisection.

Constant-latency links (the documented extension; Pigou's example uses one)
act as flow sinks: once the common level of the increasing links would exceed
the smallest constant, the corresponding links absorb the excess flow at that
fixed latency.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig

from repro.exceptions import ConvergenceError, ModelError
from repro.latency.base import LatencyFunction
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.result import ParallelFlowResult
from repro.utils.rootfind import bisect_root, expand_upper_bracket

__all__ = ["parallel_nash", "parallel_optimum", "water_fill"]


def _link_level_and_inverse(kind: str) -> Tuple[Callable[[LatencyFunction, float], float],
                                                Callable[[LatencyFunction, float], float]]:
    """Per-link level function and its inverse for the requested solve kind."""
    if kind == "nash":
        return (lambda lat, x: float(lat.value(x)),
                lambda lat, y: float(lat.inverse_value(y)))
    if kind == "optimum":
        return (lambda lat, x: float(lat.marginal_cost(x)),
                lambda lat, y: float(lat.inverse_marginal(y)))
    raise ModelError(f"unknown water-filling kind {kind!r}")


def water_fill(latencies: Sequence[LatencyFunction], demand: float,
               kind: str, *, tol: float = 1e-12) -> Tuple[np.ndarray, float]:
    """Distribute ``demand`` across ``latencies`` equalising the chosen level.

    ``kind`` is ``"nash"`` (equalise latencies) or ``"optimum"`` (equalise
    marginal costs).  Returns ``(flows, common_level)`` where ``common_level``
    is the equalised value on loaded links; unloaded links have a level at
    least as large.
    """
    latencies = list(latencies)
    m = len(latencies)
    if m == 0:
        raise ModelError("water_fill needs at least one link")
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    level_of, inverse_of = _link_level_and_inverse(kind)

    flows = np.zeros(m, dtype=float)
    if demand == 0.0:
        level = min(level_of(lat, 0.0) for lat in latencies)
        return flows, level

    increasing: List[int] = [i for i, lat in enumerate(latencies)
                             if not lat.is_constant]
    constants: List[int] = [i for i, lat in enumerate(latencies) if lat.is_constant]

    def filled_at(level: float) -> float:
        return sum(inverse_of(latencies[i], level) for i in increasing)

    constant_floor = min((level_of(latencies[i], 0.0) for i in constants),
                         default=float("inf"))

    if increasing:
        lo = min(level_of(latencies[i], 0.0) for i in increasing)
        # Bracket the level at which the increasing links alone absorb the demand.
        try:
            hi = expand_upper_bracket(lambda lv: filled_at(lv) - demand, lo,
                                      initial=max(1.0, abs(lo)))
            level_star = bisect_root(lambda lv: filled_at(lv) - demand, lo, hi, tol=tol)
        except (ModelError, ConvergenceError):
            level_star = float("inf")
    else:
        level_star = float("inf")

    if level_star <= constant_floor:
        # The strictly increasing links absorb everything below the cheapest
        # constant link; constants stay empty.
        for i in increasing:
            flows[i] = inverse_of(latencies[i], level_star)
        level = level_star
    else:
        # Constants at the floor latency absorb the excess flow.
        if not constants:
            raise ModelError(
                "demand cannot be routed: no constant links and the increasing "
                "links cannot absorb the demand")
        level = constant_floor
        for i in increasing:
            flows[i] = inverse_of(latencies[i], level)
        leftover = demand - float(flows.sum())
        if leftover < 0.0:
            leftover = 0.0
        sinks = [i for i in constants
                 if level_of(latencies[i], 0.0) <= constant_floor + 1e-12]
        share = leftover / len(sinks)
        for i in sinks:
            flows[i] = share

    # Normalise tiny rounding so the flows sum exactly to the demand.
    total = float(flows.sum())
    if total > 0.0 and abs(total - demand) > 0.0:
        # Spread the correction over loaded links proportionally.
        correction = demand - total
        loaded = flows > 0.0
        if np.any(loaded):
            flows[loaded] += correction * flows[loaded] / flows[loaded].sum()
    return np.clip(flows, 0.0, None), float(level)


def _resolve_tol(tol: "float | None", config: "SolveConfig | None") -> float:
    """Water-filling tolerance: explicit ``tol`` wins, then config, then default."""
    if tol is not None:
        return tol
    if config is not None:
        return config.water_fill_tol
    return 1e-12


def parallel_nash(instance: ParallelLinkInstance, *, tol: "float | None" = None,
                  config: "SolveConfig | None" = None) -> ParallelFlowResult:
    """The Nash (Wardrop) equilibrium ``N`` of a parallel-link instance.

    All loaded links share the common latency ``L_N`` returned in
    ``common_value``; empty links have latency at least ``L_N`` (Remark 4.1).
    The flow is unique on strictly increasing links.  Settings may come from
    an explicit ``tol`` or a :class:`repro.api.SolveConfig`.
    """
    tol = _resolve_tol(tol, config)
    flows, level = water_fill(instance.latencies, instance.demand, "nash", tol=tol)
    return ParallelFlowResult(
        flows=flows,
        common_value=level,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind="nash",
    )


def parallel_optimum(instance: ParallelLinkInstance, *, tol: "float | None" = None,
                     config: "SolveConfig | None" = None) -> ParallelFlowResult:
    """The system optimum ``O`` of a parallel-link instance.

    All loaded links share the common marginal cost returned in
    ``common_value``; empty links have marginal cost at least that value.
    Settings may come from an explicit ``tol`` or a
    :class:`repro.api.SolveConfig`.
    """
    tol = _resolve_tol(tol, config)
    flows, level = water_fill(instance.latencies, instance.demand, "optimum", tol=tol)
    return ParallelFlowResult(
        flows=flows,
        common_value=level,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind="optimum",
    )
