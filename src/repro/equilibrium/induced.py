"""Induced Nash equilibria under a Stackelberg strategy.

Given a Leader strategy ``S`` (flows pre-assigned per link or edge), the
Followers selfishly route the remaining flow facing the a-posteriori latencies
``l~(x) = l(x + s)`` (Section 4).  Their reaction ``T`` is the Nash/Wardrop
equilibrium of the shifted instance, and ``S + T`` is the Stackelberg
equilibrium whose cost the paper's guarantees speak about.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import StrategyError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.network import network_nash
from repro.equilibrium.parallel import parallel_nash
from repro.equilibrium.result import StackelbergOutcome

__all__ = ["induced_parallel_equilibrium", "induced_network_equilibrium"]


def _validate_parallel_strategy(instance: ParallelLinkInstance,
                                strategy_flows: Sequence[float]) -> np.ndarray:
    strategy = np.asarray(strategy_flows, dtype=float)
    if strategy.shape != (instance.num_links,):
        raise StrategyError(
            f"strategy must assign a flow to each of the {instance.num_links} links, "
            f"got shape {strategy.shape}")
    if np.any(strategy < -1e-9):
        raise StrategyError(f"strategy flows must be non-negative, got {strategy!r}")
    strategy = np.clip(strategy, 0.0, None)
    total = float(strategy.sum())
    if total > instance.demand * (1.0 + 1e-9) + 1e-12:
        raise StrategyError(
            f"strategy routes {total!r} flow but the instance only has "
            f"{instance.demand!r}")
    return strategy


def induced_parallel_equilibrium(instance: ParallelLinkInstance,
                                 strategy_flows: Sequence[float],
                                 *, tol: float = 1e-12,
                                 backend: str = "auto") -> StackelbergOutcome:
    """The Followers' reaction ``T`` to a Leader strategy on parallel links.

    Returns the full Stackelberg equilibrium ``S + T`` with its cost.  The
    Followers' common latency (Remark 4.2) is reported when they route a
    positive amount of flow.
    """
    strategy = _validate_parallel_strategy(instance, strategy_flows)
    followers_instance = instance.shifted(strategy)
    follower_result = parallel_nash(followers_instance, tol=tol, backend=backend)
    follower_flows = follower_result.flows
    combined = strategy + follower_flows
    cost = instance.cost(combined)
    common = follower_result.common_value if follower_result.demand > 0.0 else None
    return StackelbergOutcome(
        leader_flows=strategy,
        follower_flows=follower_flows,
        combined_flows=combined,
        cost=cost,
        follower_common_latency=common,
        follower_result=follower_result,
    )


def induced_network_equilibrium(instance: NetworkInstance,
                                strategy_edge_flows: Sequence[float],
                                remaining_demands: Sequence[float],
                                *, solver: str = "auto",
                                tolerance: float = 1e-9) -> StackelbergOutcome:
    """The Followers' reaction to a Leader edge pre-load on a network instance.

    ``strategy_edge_flows`` is the Leader's edge-flow vector (it must itself be
    a feasible routing of the controlled portion of every commodity);
    ``remaining_demands`` lists the uncontrolled demand per commodity.
    """
    strategy = instance.network.validate_edge_flows(strategy_edge_flows)
    if len(remaining_demands) != instance.num_commodities:
        raise StrategyError(
            f"expected {instance.num_commodities} remaining demands, "
            f"got {len(remaining_demands)}")
    for commodity, remaining in zip(instance.commodities, remaining_demands):
        if remaining < -1e-9 or remaining > commodity.demand * (1.0 + 1e-9) + 1e-12:
            raise StrategyError(
                f"remaining demand {remaining!r} is outside [0, {commodity.demand!r}] "
                f"for commodity ({commodity.source!r} -> {commodity.sink!r})")

    followers_instance = instance.shifted(strategy, remaining_demands)
    follower_result = network_nash(followers_instance, solver=solver,
                                   tolerance=tolerance)
    follower_flows = follower_result.edge_flows
    combined = strategy + follower_flows
    cost = instance.cost(combined)
    return StackelbergOutcome(
        leader_flows=strategy,
        follower_flows=follower_flows,
        combined_flows=combined,
        cost=cost,
        follower_common_latency=None,
        follower_result=follower_result,
    )
