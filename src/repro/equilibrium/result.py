"""Result containers for equilibrium computations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["ParallelFlowResult", "NetworkFlowResult", "StackelbergOutcome"]


@dataclass(frozen=True)
class ParallelFlowResult:
    """Outcome of a parallel-link Nash or optimum computation.

    Attributes
    ----------
    flows:
        Per-link flow vector (sums to the instance demand).
    common_value:
        The equalised level: the common latency ``L_N`` of used links for a
        Nash equilibrium (Remark 4.1), or the common marginal cost for the
        system optimum.
    cost:
        Total cost ``C(X) = sum_i x_i l_i(x_i)``.
    beckmann:
        Beckmann potential of the flow (the quantity a Nash flow minimises).
    kind:
        ``"nash"`` or ``"optimum"``.
    """

    flows: np.ndarray
    common_value: float
    cost: float
    beckmann: float
    kind: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "flows", np.asarray(self.flows, dtype=float))

    @property
    def demand(self) -> float:
        """Total routed flow."""
        return float(self.flows.sum())

    def flow_on(self, index: int) -> float:
        """Flow on link ``index``."""
        return float(self.flows[index])


@dataclass(frozen=True)
class NetworkFlowResult:
    """Outcome of a network Nash or optimum computation.

    ``relative_gap`` is the Frank–Wolfe convergence measure (zero for the
    exact path-based solver); ``iterations`` counts solver iterations.
    """

    edge_flows: np.ndarray
    cost: float
    beckmann: float
    kind: str
    relative_gap: float = 0.0
    iterations: int = 0
    converged: bool = True
    solver: str = "frank-wolfe"

    def __post_init__(self) -> None:
        object.__setattr__(self, "edge_flows",
                           np.asarray(self.edge_flows, dtype=float))

    def flow_on(self, index: int) -> float:
        """Flow on edge ``index``."""
        return float(self.edge_flows[index])


@dataclass(frozen=True)
class StackelbergOutcome:
    """A Stackelberg equilibrium ``S + T`` and its cost.

    Attributes
    ----------
    leader_flows:
        The Leader's strategy ``S`` (per link / edge).
    follower_flows:
        The induced Nash assignment ``T`` of the Followers.
    combined_flows:
        ``S + T``.
    cost:
        ``C(S + T)``.
    follower_common_latency:
        The common a-posteriori latency of links/paths used by the Followers
        (``L_S`` of Remark 4.2); ``None`` when the Followers route no flow.
    """

    leader_flows: np.ndarray
    follower_flows: np.ndarray
    combined_flows: np.ndarray
    cost: float
    follower_common_latency: Optional[float] = None
    follower_result: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "leader_flows",
                           np.asarray(self.leader_flows, dtype=float))
        object.__setattr__(self, "follower_flows",
                           np.asarray(self.follower_flows, dtype=float))
        object.__setattr__(self, "combined_flows",
                           np.asarray(self.combined_flows, dtype=float))

    @property
    def leader_share(self) -> float:
        """Fraction of the total flow controlled by the Leader."""
        total = float(self.combined_flows.sum())
        if total <= 0.0:
            return 0.0
        return float(self.leader_flows.sum()) / total
