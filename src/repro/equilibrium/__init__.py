"""Equilibrium and optimum flow solvers.

Two regimes:

* **Parallel links** — exact *water-filling* solvers.  The Nash (Wardrop)
  equilibrium equalises latencies on used links (Remark 4.1), the system
  optimum equalises marginal costs; both reduce to a one-dimensional monotone
  root-finding problem in the common level.  Constant latencies are handled as
  flow sinks at their fixed level (the documented model extension).
* **General networks** — iterative solvers.  :func:`network_nash` minimises the
  Beckmann potential, :func:`network_optimum` minimises the total cost, either
  with Frank–Wolfe (all-or-nothing direction + golden-section line search) or
  with an exact path-based formulation solved by SLSQP on small networks.

:func:`induced_parallel_equilibrium` / :func:`induced_network_equilibrium`
compute the Followers' reaction to a Stackelberg strategy by shifting every
latency by the Leader's pre-load and solving the residual Nash problem — the
a-posteriori equilibria of Section 4.
"""

from repro.equilibrium.result import (
    NetworkFlowResult,
    ParallelFlowResult,
    StackelbergOutcome,
)
from repro.equilibrium.parallel import (
    parallel_nash,
    parallel_optimum,
    water_fill,
    water_fill_many,
)
from repro.equilibrium.frank_wolfe import FrankWolfeOptions, frank_wolfe
from repro.equilibrium.pathbased import path_based_flow
from repro.equilibrium.network import network_nash, network_optimum
from repro.equilibrium.induced import (
    induced_network_equilibrium,
    induced_parallel_equilibrium,
)
from repro.equilibrium.verify import (
    parallel_optimality_gap,
    parallel_wardrop_gap,
    network_wardrop_gap,
)

__all__ = [
    "ParallelFlowResult",
    "NetworkFlowResult",
    "StackelbergOutcome",
    "parallel_nash",
    "parallel_optimum",
    "water_fill",
    "water_fill_many",
    "FrankWolfeOptions",
    "frank_wolfe",
    "path_based_flow",
    "network_nash",
    "network_optimum",
    "induced_parallel_equilibrium",
    "induced_network_equilibrium",
    "parallel_wardrop_gap",
    "parallel_optimality_gap",
    "network_wardrop_gap",
]
