"""High-level entry points for network Nash and optimum flows.

These wrappers choose between the exact path-based solver (small networks)
and Frank–Wolfe (everything else), and optionally polish a Frank–Wolfe
solution with the path-based solver seeded by the discovered support.
"""

from __future__ import annotations

from typing import Literal, Optional, TYPE_CHECKING, Tuple

from repro.exceptions import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig
from repro.network.instance import NetworkInstance
from repro.equilibrium.frank_wolfe import FrankWolfeOptions, frank_wolfe
from repro.equilibrium.pathbased import path_based_flow
from repro.equilibrium.result import NetworkFlowResult

__all__ = ["network_nash", "network_optimum"]

Solver = Literal["auto", "frank-wolfe", "path"]

#: Networks with at most this many edges are considered "small enough" for the
#: exact path-based solver when ``solver="auto"``.
_AUTO_PATH_EDGE_LIMIT = 60
_AUTO_PATH_LIMIT = 2000


def _solve(instance: NetworkInstance, kind: str, solver: Solver,
           tolerance: float, max_iterations: int,
           kernel: str = "auto") -> NetworkFlowResult:
    if solver not in ("auto", "frank-wolfe", "path"):
        raise ModelError(f"unknown solver {solver!r}")
    if solver == "path":
        return path_based_flow(instance, kind)
    if solver == "auto" and instance.network.num_edges <= _AUTO_PATH_EDGE_LIMIT:
        try:
            return path_based_flow(instance, kind, max_paths=_AUTO_PATH_LIMIT)
        except ModelError:
            pass  # too many paths -> fall through to Frank-Wolfe
    options = FrankWolfeOptions(tolerance=tolerance, max_iterations=max_iterations,
                                kernel=kernel)
    return frank_wolfe(instance, kind, options)


def _resolve_settings(solver: Optional[Solver], tolerance: Optional[float],
                      max_iterations: Optional[int],
                      config: "SolveConfig | None",
                      ) -> Tuple[Solver, float, int, str]:
    """Resolve solver settings: explicit kwargs win, then config, then defaults."""
    kernel = "auto"
    if config is not None:
        solver = config.network_solver() if solver is None else solver
        tolerance = config.tolerance if tolerance is None else tolerance
        max_iterations = (config.max_iterations if max_iterations is None
                          else max_iterations)
        kernel = config.kernel_backend
    return (solver if solver is not None else "auto",
            tolerance if tolerance is not None else 1e-9,
            max_iterations if max_iterations is not None else 20_000,
            kernel)


def network_nash(instance: NetworkInstance, *, solver: Optional[Solver] = None,
                 tolerance: Optional[float] = None,
                 max_iterations: Optional[int] = None,
                 config: "SolveConfig | None" = None) -> NetworkFlowResult:
    """Wardrop/Nash equilibrium edge flows of a network instance.

    The equilibrium minimises the Beckmann potential; for strictly increasing
    latencies the edge flows are unique ([41, Cor 2.6.4], Remark 2.5).
    Settings may come from explicit keywords or a
    :class:`repro.api.SolveConfig`.
    """
    solver, tolerance, max_iterations, kernel = _resolve_settings(
        solver, tolerance, max_iterations, config)
    return _solve(instance, "nash", solver, tolerance, max_iterations, kernel)


def network_optimum(instance: NetworkInstance, *, solver: Optional[Solver] = None,
                    tolerance: Optional[float] = None,
                    max_iterations: Optional[int] = None,
                    config: "SolveConfig | None" = None) -> NetworkFlowResult:
    """System-optimum edge flows of a network instance (minimum total cost).

    Settings may come from explicit keywords or a
    :class:`repro.api.SolveConfig`.
    """
    solver, tolerance, max_iterations, kernel = _resolve_settings(
        solver, tolerance, max_iterations, config)
    return _solve(instance, "optimum", solver, tolerance, max_iterations, kernel)
