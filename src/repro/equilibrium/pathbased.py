"""Exact path-based solver for small networks.

On networks small enough to enumerate all simple source–sink paths, both the
Nash equilibrium (Beckmann potential) and the system optimum (total cost) can
be solved directly as smooth convex programs over path flows with SLSQP.
The path formulation gives much tighter accuracy than Frank–Wolfe on the
canonical 4-node examples, which matters when MOP compares the induced cost
against the optimum cost at tolerance 1e-6.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy import optimize as sciopt

from repro.exceptions import ConvergenceError, ModelError
from repro.network.instance import NetworkInstance
from repro.paths.enumeration import all_simple_paths
from repro.equilibrium.result import NetworkFlowResult

__all__ = ["path_based_flow", "enumerate_commodity_paths"]


def enumerate_commodity_paths(instance: NetworkInstance,
                              *, max_paths: int = 5000) -> List[List[Tuple[int, ...]]]:
    """All simple paths of every commodity (one list per commodity)."""
    result = []
    for commodity in instance.commodities:
        paths = all_simple_paths(instance.network, commodity.source,
                                 commodity.sink, max_paths=max_paths)
        if not paths:
            raise ModelError(
                f"commodity ({commodity.source!r} -> {commodity.sink!r}) has no path")
        result.append(paths)
    return result


def _edge_incidence(instance: NetworkInstance,
                    commodity_paths: List[List[Tuple[int, ...]]]) -> np.ndarray:
    """0/1 matrix mapping path-flow variables to edge flows."""
    num_edges = instance.network.num_edges
    total_paths = sum(len(paths) for paths in commodity_paths)
    incidence = np.zeros((num_edges, total_paths), dtype=float)
    col = 0
    for paths in commodity_paths:
        for path in paths:
            for idx in path:
                incidence[idx, col] += 1.0
            col += 1
    return incidence


def path_based_flow(instance: NetworkInstance, kind: str,
                    *, max_paths: int = 5000, tol: float = 1e-12,
                    max_iterations: int = 800) -> NetworkFlowResult:
    """Solve the Nash or optimum flow via the explicit path formulation.

    ``kind`` is ``"nash"`` or ``"optimum"``.  Raises :class:`ModelError` when
    a commodity has more than ``max_paths`` simple paths (use Frank–Wolfe for
    such instances) and :class:`ConvergenceError` when SLSQP fails.
    """
    if kind not in ("nash", "optimum"):
        raise ModelError(f"unknown path-based kind {kind!r}")
    commodity_paths = enumerate_commodity_paths(instance, max_paths=max_paths)
    incidence = _edge_incidence(instance, commodity_paths)
    num_vars = incidence.shape[1]

    # Start from an even split of every commodity across its paths.
    x0 = np.zeros(num_vars)
    col = 0
    for commodity, paths in zip(instance.commodities, commodity_paths):
        share = commodity.demand / len(paths)
        x0[col:col + len(paths)] = share
        col += len(paths)

    def edge_flows_of(path_flows: np.ndarray) -> np.ndarray:
        return incidence @ path_flows

    if kind == "nash":
        def objective(path_flows: np.ndarray) -> float:
            return instance.beckmann(edge_flows_of(path_flows))

        def gradient(path_flows: np.ndarray) -> np.ndarray:
            latencies = instance.latencies_at(edge_flows_of(path_flows))
            return incidence.T @ latencies
    else:
        def objective(path_flows: np.ndarray) -> float:
            return instance.cost(edge_flows_of(path_flows))

        def gradient(path_flows: np.ndarray) -> np.ndarray:
            marginals = instance.marginal_costs_at(edge_flows_of(path_flows))
            return incidence.T @ marginals

    # One equality constraint per commodity: its path flows sum to its demand.
    constraints = []
    col = 0
    for commodity, paths in zip(instance.commodities, commodity_paths):
        indices = np.arange(col, col + len(paths))

        def make_constraint(idx: np.ndarray, demand: float):
            return {
                "type": "eq",
                "fun": lambda x, idx=idx, demand=demand: float(x[idx].sum() - demand),
                "jac": lambda x, idx=idx: _indicator(num_vars, idx),
            }

        constraints.append(make_constraint(indices, commodity.demand))
        col += len(paths)

    bounds = [(0.0, None)] * num_vars
    solution = sciopt.minimize(
        objective, x0, jac=gradient, bounds=bounds, constraints=constraints,
        method="SLSQP", options={"maxiter": max_iterations, "ftol": tol})
    if not solution.success:
        raise ConvergenceError(
            f"path-based {kind} solve failed: {solution.message}",
            iterations=int(solution.get("nit", 0)))
    path_flows = np.clip(solution.x, 0.0, None)
    flows = edge_flows_of(path_flows)
    return NetworkFlowResult(
        edge_flows=flows,
        cost=instance.cost(flows),
        beckmann=instance.beckmann(flows),
        kind=kind,
        relative_gap=0.0,
        iterations=int(solution.nit),
        converged=True,
        solver="path-based",
    )


def _indicator(size: int, indices: np.ndarray) -> np.ndarray:
    row = np.zeros(size)
    row[indices] = 1.0
    return row
