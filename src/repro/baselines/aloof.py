"""Aloof — the null Stackelberg strategy (the Leader routes nothing).

Against the Aloof strategy the Followers simply reach the plain Nash
equilibrium of the instance, so its induced cost is ``C(N)`` and its
a-posteriori anarchy cost equals the ordinary price of anarchy.  It serves as
the "do nothing" baseline of every comparison benchmark.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import StrategyError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.core.strategy import NetworkStackelbergStrategy, ParallelStackelbergStrategy

__all__ = ["aloof"]


def aloof(instance: Union[ParallelLinkInstance, NetworkInstance],
          ) -> Union[ParallelStackelbergStrategy, NetworkStackelbergStrategy]:
    """The strategy that controls zero flow."""
    if isinstance(instance, ParallelLinkInstance):
        return ParallelStackelbergStrategy(
            flows=np.zeros(instance.num_links), total_demand=instance.demand)
    if isinstance(instance, NetworkInstance):
        return NetworkStackelbergStrategy(
            edge_flows=np.zeros(instance.network.num_edges),
            controlled_demands=tuple(0.0 for _ in instance.commodities),
            total_demand=instance.total_demand)
    raise StrategyError(
        f"aloof expects a ParallelLinkInstance or NetworkInstance, "
        f"got {type(instance).__name__}")
