"""SCALE — the scaled-optimum Stackelberg strategy ``S = alpha * O``.

SCALE routes an ``alpha`` fraction of the optimum flow on every link or edge.
It is well defined on arbitrary networks (unlike LLF, whose natural habitat is
parallel links) and is the strategy whose general-network guarantees were
subsequently studied by Karakostas–Kolliopoulos and Swamy — the follow-up work
the paper's related-work section discusses.
"""

from __future__ import annotations

from typing import Union

from repro.exceptions import StrategyError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.network import network_optimum
from repro.equilibrium.parallel import parallel_optimum
from repro.core.strategy import NetworkStackelbergStrategy, ParallelStackelbergStrategy

__all__ = ["scale"]


def scale(instance: Union[ParallelLinkInstance, NetworkInstance], alpha: float,
          *, solver: str = "auto",
          ) -> Union[ParallelStackelbergStrategy, NetworkStackelbergStrategy]:
    """The SCALE strategy controlling an ``alpha`` portion of the flow."""
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    if isinstance(instance, ParallelLinkInstance):
        optimum = parallel_optimum(instance)
        return ParallelStackelbergStrategy(
            flows=alpha * optimum.flows, total_demand=instance.demand)
    if isinstance(instance, NetworkInstance):
        optimum = network_optimum(instance, solver=solver)
        controlled = tuple(alpha * com.demand for com in instance.commodities)
        return NetworkStackelbergStrategy(
            edge_flows=alpha * optimum.edge_flows,
            controlled_demands=controlled,
            total_demand=instance.total_demand)
    raise StrategyError(
        f"scale expects a ParallelLinkInstance or NetworkInstance, "
        f"got {type(instance).__name__}")
