"""LLF — Largest Latency First (Roughgarden, STOC 2001).

Given a Stackelberg scheduling instance ``(M, r, alpha)``, LLF computes the
optimum assignment ``O`` and lets the Leader saturate links at their optimum
flow in order of *decreasing* optimal latency ``l_i(o_i)`` until her budget
``alpha * r`` runs out (the last link may be filled partially).  Roughgarden
proved the induced cost satisfies ``C(S+T) <= (1/alpha) * C(O)`` for arbitrary
latencies, and ``C(S+T) <= (4 / (3 + alpha)) * C(O)`` for linear latencies —
the bounds benchmark E7 verifies empirically.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StrategyError
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_optimum
from repro.core.strategy import ParallelStackelbergStrategy

__all__ = ["llf"]


def llf(instance: ParallelLinkInstance, alpha: float) -> ParallelStackelbergStrategy:
    """The Largest-Latency-First strategy controlling an ``alpha`` portion."""
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    optimum = parallel_optimum(instance)
    opt_flows = optimum.flows
    latencies = instance.latencies_at(opt_flows)

    budget = alpha * instance.demand
    strategy = np.zeros(instance.num_links, dtype=float)
    # Saturate links by decreasing optimal latency; ties broken by index for
    # determinism.
    order = sorted(range(instance.num_links), key=lambda i: (-latencies[i], i))
    for i in order:
        if budget <= 0.0:
            break
        take = min(float(opt_flows[i]), budget)
        strategy[i] = take
        budget -= take
    return ParallelStackelbergStrategy(flows=strategy, total_demand=instance.demand)
