"""Network generalisations of the parallel-link baseline strategies.

The unified :mod:`repro.api` surface promises that every registered strategy
accepts both instance families.  LLF and the brute-force search were defined
on parallel links only; the generalisations here lift them to networks by
treating the *paths used by the optimum flow* as the analogue of links:

* :func:`network_llf` saturates optimum paths in order of decreasing path
  latency (at optimal loads) until the Leader budget runs out — exactly
  Roughgarden's Largest-Latency-First rule with paths in place of links;
* :func:`network_brute_force` grid-searches Leader assignments over the
  optimum path set (restricting to paths the optimum uses is the natural
  network analogue of the per-link grid: flow the Leader parks outside the
  optimum's support can only increase the induced cost it is trying to
  minimise).

Both are heuristic baselines, not algorithms of the paper; they exist so that
comparison sweeps run uniformly across instance kinds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StrategyError
from repro.network.instance import NetworkInstance
from repro.core.strategy import NetworkStackelbergStrategy
from repro.equilibrium.network import network_optimum
from repro.equilibrium.result import StackelbergOutcome
from repro.paths.decomposition import decompose_flow
from repro.baselines.brute_force import _compositions

__all__ = ["network_llf", "network_brute_force", "NetworkBruteForceResult"]


def network_llf(instance: NetworkInstance, alpha: float, *,
                solver: str = "auto",
                tolerance: float = 1e-9) -> NetworkStackelbergStrategy:
    """Largest-Latency-First on a network: saturate costly optimum paths first.

    Per commodity, the optimum flow is decomposed into paths; the Leader
    claims whole paths in order of decreasing path latency (under optimal
    loads) until her budget ``alpha * demand_i`` is exhausted, taking the last
    path partially.  With every edge a distinct s–t path this reduces to the
    parallel-link LLF.
    """
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    optimum = network_optimum(instance, solver=solver, tolerance=tolerance)
    costs = instance.latencies_at(optimum.edge_flows)

    remaining = optimum.edge_flows.copy()
    strategy_flows = np.zeros(instance.network.num_edges, dtype=float)
    controlled = []
    for commodity in instance.commodities:
        budget = alpha * commodity.demand
        taken = 0.0
        paths = decompose_flow(instance.network, remaining,
                               commodity.source, commodity.sink)
        # Decreasing path latency; ties broken by path edges for determinism.
        ordered = sorted(paths,
                         key=lambda pv: (-float(sum(costs[i] for i in pv[0])),
                                         pv[0]))
        for path, value in ordered:
            if budget - taken <= 1e-15:
                break
            take = min(float(value), budget - taken)
            for idx in path:
                strategy_flows[idx] += take
                remaining[idx] = max(0.0, remaining[idx] - take)
            taken += take
        controlled.append(taken)
    return NetworkStackelbergStrategy(
        edge_flows=strategy_flows,
        controlled_demands=tuple(controlled),
        total_demand=instance.total_demand,
    )


@dataclass(frozen=True)
class NetworkBruteForceResult:
    """Best grid strategy found by :func:`network_brute_force`."""

    strategy: NetworkStackelbergStrategy
    outcome: StackelbergOutcome
    cost: float
    evaluated: int


def network_brute_force(instance: NetworkInstance, alpha: float, *,
                        resolution: int = 8, solver: str = "auto",
                        tolerance: float = 1e-9) -> NetworkBruteForceResult:
    """Grid search over Leader assignments on the optimum's path support.

    The budget ``alpha * r`` is split into ``resolution`` quanta distributed
    over the paths of an optimum flow decomposition in every possible way;
    each candidate strategy is evaluated by its induced equilibrium cost.
    Single-commodity instances only (the grid over per-commodity splits would
    explode combinatorially).
    """
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    if resolution < 1:
        raise StrategyError(f"resolution must be >= 1, got {resolution!r}")
    if not instance.is_single_commodity:
        raise StrategyError(
            "network_brute_force supports single-commodity instances only")
    optimum = network_optimum(instance, solver=solver, tolerance=tolerance)
    paths = decompose_flow(instance.network, optimum.edge_flows,
                           instance.source, instance.sink)
    if not paths:
        raise StrategyError("the optimum flow decomposes into no s-t paths")

    demand = instance.total_demand
    budget = alpha * demand
    num_edges = instance.network.num_edges
    if budget <= 0.0:
        strategy = NetworkStackelbergStrategy(
            edge_flows=np.zeros(num_edges), controlled_demands=(0.0,),
            total_demand=demand)
        outcome = strategy.induce(instance, solver=solver, tolerance=tolerance)
        return NetworkBruteForceResult(strategy=strategy, outcome=outcome,
                                       cost=float(outcome.cost), evaluated=1)
    quantum = budget / resolution

    best: NetworkBruteForceResult | None = None
    count = 0
    for combo in _compositions(resolution, len(paths)):
        flows = np.zeros(num_edges, dtype=float)
        for (path, _), units in zip(paths, combo):
            if units == 0:
                continue
            amount = units * quantum
            for idx in path:
                flows[idx] += amount
        strategy = NetworkStackelbergStrategy(
            edge_flows=flows,
            controlled_demands=(budget,),
            total_demand=demand,
        )
        outcome = strategy.induce(instance, solver=solver, tolerance=tolerance)
        count += 1
        if best is None or outcome.cost < best.cost:
            best = NetworkBruteForceResult(strategy=strategy, outcome=outcome,
                                           cost=float(outcome.cost),
                                           evaluated=count)
    assert best is not None
    return NetworkBruteForceResult(strategy=best.strategy, outcome=best.outcome,
                                   cost=best.cost, evaluated=count)
