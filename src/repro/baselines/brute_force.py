"""Brute-force Stackelberg strategies on small parallel-link instances.

Computing the optimal Leader strategy is weakly NP-hard in general
(Roughgarden 2004), so no polynomial algorithm is expected; on *small*
instances, however, a grid search over the Leader's flow simplex approximates
the optimum arbitrarily well.  The tests use it to certify that

* OpTop's ``beta_M`` is minimal (no grid strategy with a smaller budget
  reaches the optimum cost), and
* the Theorem 2.4 strategy is optimal for its ``alpha`` (no grid strategy
  does better, up to grid resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import StrategyError
from repro.network.parallel import ParallelLinkInstance
from repro.core.strategy import ParallelStackelbergStrategy
from repro.equilibrium.result import StackelbergOutcome

__all__ = ["enumerate_strategies", "brute_force_strategy", "BruteForceResult"]


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All tuples of ``parts`` non-negative integers summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest


def enumerate_strategies(instance: ParallelLinkInstance, alpha: float,
                         resolution: int) -> Iterator[np.ndarray]:
    """Yield every grid strategy routing exactly ``alpha * r`` flow.

    The Leader budget is split into ``resolution`` equal quanta distributed
    over the links in all possible ways (``C(resolution + m - 1, m - 1)``
    strategies).
    """
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    if resolution < 1:
        raise StrategyError(f"resolution must be >= 1, got {resolution!r}")
    budget = alpha * instance.demand
    quantum = budget / resolution
    for combo in _compositions(resolution, instance.num_links):
        yield quantum * np.asarray(combo, dtype=float)


@dataclass(frozen=True)
class BruteForceResult:
    """Best grid strategy found by :func:`brute_force_strategy`."""

    strategy: ParallelStackelbergStrategy
    outcome: StackelbergOutcome
    cost: float
    evaluated: int


def brute_force_strategy(instance: ParallelLinkInstance, alpha: float,
                         *, resolution: int = 24) -> BruteForceResult:
    """Exhaustive grid search for the best strategy controlling ``alpha * r``.

    Intended for instances with at most ~5 links; the number of evaluated
    strategies grows as ``O(resolution^(m-1))``.
    """
    best_cost = float("inf")
    best_flows: np.ndarray | None = None
    best_outcome: StackelbergOutcome | None = None
    count = 0
    for flows in enumerate_strategies(instance, alpha, resolution):
        strategy = ParallelStackelbergStrategy(flows=flows,
                                               total_demand=instance.demand)
        outcome = strategy.induce(instance)
        count += 1
        if outcome.cost < best_cost:
            best_cost = outcome.cost
            best_flows = flows
            best_outcome = outcome
    assert best_flows is not None and best_outcome is not None
    return BruteForceResult(
        strategy=ParallelStackelbergStrategy(flows=best_flows,
                                             total_demand=instance.demand),
        outcome=best_outcome,
        cost=float(best_cost),
        evaluated=count,
    )
