"""Exact Stackelberg baseline: MILP certification of the leader problem.

The budgeted heuristics (``llf``, ``scale``, ``brute_force``) come with
worst-case guarantees but no per-instance certificate.  This module closes
that gap on parallel links with a mixed-integer linear program solved by
:func:`scipy.optimize.milp`:

**Formulation.**  For leader budget ``alpha`` on demand ``r``, decision
variables are the combined link flows ``x_i`` (written as piecewise-linear
segment fills ``delta_{i,k}``), the follower flows ``t_i``, usage binaries
``z_i`` and the followers' common latency level ``L``:

* ``x_i = sum_k delta_{i,k}``, ``sum_i x_i = r``, ``sum_i t_i = (1-alpha) r``,
  ``0 <= t_i <= x_i`` (the leader routes ``s_i = x_i - t_i``);
* Wardrop complementarity via big-M: ``t_i <= (1-alpha) r z_i``,
  ``lambda_i >= L - eps`` for every link and
  ``lambda_i <= L + eps + M_i (1 - z_i)`` for used links, where
  ``lambda_i = l_i(0) + sum_k gamma_{i,k} delta_{i,k}`` is the
  piecewise-linear latency;
* objective ``min sum_{i,k} sigma_{i,k} delta_{i,k}``, the piecewise-linear
  total cost ``sum_i x_i l_i(x_i)``.

**Linearisation error bound.**  Each link is linearised on ``K`` uniform
segments up to a per-link cap ``u_i`` chosen from a *cost argument*: any
strategy at least as good as mimicking Nash has total cost at most the Nash
cost ``C_N``, hence every link satisfies ``x_i l_i(x_i) <= C_N`` and
``u_i = min(r, (x l)^{-1}(C_N))`` cannot cut the true optimum off.  For a
convex function ``f`` the secant interpolant overestimates ``f``, and the
gap ``g = secant - f`` is concave with zeros at the segment endpoints, so
``max g <= 2 g(midpoint)`` — a computable certificate.  Applying it to the
latencies gives the Wardrop relaxation ``eps`` (the true optimum stays
MILP-feasible) and to the link costs the objective slack ``eps_cost``; the
reported lower bound is ``milp_objective - eps_cost``.  All built-in latency
families (linear, constant, monomial, polynomial with non-negative
coefficients, M/M/1) are convex with convex ``x l(x)``, so the bound is
exact; for exotic user latencies it degrades to a sampled estimate.

**Certified strategy.**  The returned strategy is the best of: the MILP
flow split ``s = x - t``, ``llf(alpha)``, ``scale(alpha)``,
``alpha``-scaled Nash mimicry (whose induced outcome is exactly the Nash
assignment, so ``exact`` never loses to ``aloof``), optionally polished by
SLSQP on the true induced cost over the leader simplex.  Because the
candidate set contains the heuristics themselves, the certified cost is by
construction no worse than any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize as sciopt

from repro.baselines.llf import llf
from repro.baselines.scale import scale
from repro.core.strategy import ParallelStackelbergStrategy
from repro.equilibrium.parallel import parallel_nash
from repro.equilibrium.result import StackelbergOutcome
from repro.exceptions import ReproError, StrategyError
from repro.network.parallel import ParallelLinkInstance

__all__ = ["ExactResult", "exact_strategy"]

#: Default number of piecewise-linear segments per link.
DEFAULT_SEGMENTS = 64


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact baseline on one ``(instance, alpha)`` pair.

    Attributes
    ----------
    strategy:
        The best certified leader strategy found.
    outcome:
        Its induced Stackelberg equilibrium (true, not linearised, costs).
    certification:
        JSON-serialisable certificate: the MILP objective, the linearisation
        error budget, the implied lower bound on the optimal induced cost,
        the certified cost and optimality gap of the returned strategy, the
        MILP status and the per-candidate cost table.
    """

    strategy: ParallelStackelbergStrategy
    outcome: StackelbergOutcome
    certification: Dict[str, Any]


# --------------------------------------------------------------------------- #
# Piecewise linearisation with certified error bounds
# --------------------------------------------------------------------------- #
def _link_cap(latency, cost_ref: float, demand: float) -> float:
    """Largest flow a link can carry in any candidate optimal solution.

    Solves ``x l(x) = cost_ref`` by bisection (``x l(x)`` is increasing);
    any solution with total cost below ``cost_ref`` keeps every link below
    this cap, so truncating the linearisation there cannot exclude the true
    optimum.  Bounded-domain latencies (M/M/1) bisect inside their pole.
    """
    upper = latency.domain_upper
    hi = demand if not np.isfinite(upper) else min(demand, upper * (1.0 - 1e-9))
    if float(latency.link_cost(hi)) <= cost_ref:
        return hi
    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if float(latency.link_cost(mid)) <= cost_ref:
            lo = mid
        else:
            hi = mid
    return lo


def _secant_gap(fn, a: float, b: float) -> float:
    """Certified max deviation of the secant of ``fn`` on ``[a, b]``.

    For convex ``fn`` the gap ``secant - fn`` is concave and vanishes at the
    endpoints, so its maximum is at most twice its midpoint value.  A coarse
    interior sample is folded in as a safety net for non-convex inputs.
    """
    fa, fb = float(fn(a)), float(fn(b))
    width = b - a
    if width <= 0.0:
        return 0.0
    gap = 0.0
    for frac in (0.25, 0.5, 0.75):
        x = a + frac * width
        secant = fa + (fb - fa) * frac
        gap = max(gap, abs(secant - float(fn(x))))
    return 2.0 * gap


@dataclass(frozen=True)
class _LinkPWL:
    """Piecewise linearisation of one link up to its cap."""

    cap: float
    widths: np.ndarray          # segment widths (K,)
    latency_slopes: np.ndarray  # gamma_{i,k}
    cost_slopes: np.ndarray     # sigma_{i,k}
    latency_error: float        # max |secant - l| over the segments
    cost_error: float           # max |secant - x l(x)| over the segments
    latency_at_zero: float
    latency_at_cap: float


def _adaptive_grid(latency, cap: float, num_segments: int) -> np.ndarray:
    """Breakpoint grid that equidistributes the secant error.

    Greedy refinement: starting from the single segment ``[0, cap]``,
    repeatedly split (at the midpoint) the segment whose combined
    latency/cost secant gap is largest.  Families with localised curvature —
    M/M/1 latencies exploding toward their pole — get their resolution
    concentrated where the error lives, shrinking the certified budget by
    orders of magnitude relative to a uniform grid.
    """
    import heapq

    def score(a: float, b: float) -> float:
        return max(_secant_gap(latency.value, a, b),
                   _secant_gap(latency.link_cost, a, b))

    heap = [(-score(0.0, cap), 0.0, cap)]
    while len(heap) < num_segments:
        neg, a, b = heapq.heappop(heap)
        if neg == 0.0:  # everything already exact (e.g. affine latencies)
            heapq.heappush(heap, (neg, a, b))
            break
        mid = 0.5 * (a + b)
        heapq.heappush(heap, (-score(a, mid), a, mid))
        heapq.heappush(heap, (-score(mid, b), mid, b))
    edges = sorted({0.0, cap} | {a for _, a, _ in heap})
    return np.array(edges)


def _linearise(latency, cap: float, num_segments: int) -> _LinkPWL:
    grid = _adaptive_grid(latency, cap, num_segments)
    lat = np.array([float(latency.value(x)) for x in grid])
    cost = np.array([float(latency.link_cost(x)) for x in grid])
    widths = np.diff(grid)
    safe = np.where(widths > 0.0, widths, 1.0)
    latency_slopes = np.diff(lat) / safe
    cost_slopes = np.diff(cost) / safe
    lat_err = max((_secant_gap(latency.value, float(a), float(b))
                   for a, b in zip(grid[:-1], grid[1:])), default=0.0)
    cost_err = max((_secant_gap(latency.link_cost, float(a), float(b))
                    for a, b in zip(grid[:-1], grid[1:])), default=0.0)
    return _LinkPWL(cap=float(cap), widths=widths,
                    latency_slopes=latency_slopes, cost_slopes=cost_slopes,
                    latency_error=float(lat_err), cost_error=float(cost_err),
                    latency_at_zero=float(lat[0]), latency_at_cap=float(lat[-1]))


# --------------------------------------------------------------------------- #
# The MILP
# --------------------------------------------------------------------------- #
def _solve_milp(instance: ParallelLinkInstance, alpha: float,
                pwl: List[_LinkPWL],
                ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray],
                           Dict[str, Any]]:
    """Solve the piecewise-linearised leader problem.

    Returns ``(combined_flows, follower_flows, info)``; the flow arrays are
    ``None`` when the solver fails.  ``info`` carries the raw objective, the
    error budget and the solver status for the certificate.
    """
    n = instance.num_links
    r = instance.demand
    follower_demand = (1.0 - alpha) * r
    segments = [len(p.widths) for p in pwl]
    eps_wardrop = max(p.latency_error for p in pwl)
    eps_cost = float(sum(p.cost_error for p in pwl))
    big_m = [p.latency_at_cap + eps_wardrop + 1.0 for p in pwl]
    level_max = max(p.latency_at_cap for p in pwl) + 1.0

    # Variable layout: [delta_{0,*}, ..., delta_{n-1,*}, t_0..t_{n-1},
    #                   z_0..z_{n-1}, L]; links may have different segment
    #                   counts (the adaptive grid leaves affine links with
    #                   a single exact segment).
    offsets = np.concatenate(([0], np.cumsum(segments)))
    num_delta = int(offsets[-1])
    num_vars = num_delta + 2 * n + 1
    t0 = num_delta
    z0 = num_delta + n
    level_idx = num_vars - 1

    def delta_slice(i: int) -> slice:
        return slice(int(offsets[i]), int(offsets[i + 1]))

    objective = np.zeros(num_vars)
    for i, p in enumerate(pwl):
        objective[delta_slice(i)] = p.cost_slopes

    lower = np.zeros(num_vars)
    upper = np.empty(num_vars)
    for i, p in enumerate(pwl):
        upper[delta_slice(i)] = p.widths
    upper[t0:t0 + n] = follower_demand
    upper[z0:z0 + n] = 1.0
    upper[level_idx] = level_max
    integrality = np.zeros(num_vars)
    integrality[z0:z0 + n] = 1.0

    rows: List[np.ndarray] = []
    lbs: List[float] = []
    ubs: List[float] = []

    def add(row: np.ndarray, lb: float, ub: float) -> None:
        rows.append(row)
        lbs.append(lb)
        ubs.append(ub)

    # (1) total combined flow equals the demand
    row = np.zeros(num_vars)
    row[:num_delta] = 1.0
    add(row, r, r)
    # (2) followers route exactly (1 - alpha) r
    row = np.zeros(num_vars)
    row[t0:t0 + n] = 1.0
    add(row, follower_demand, follower_demand)
    for i, p in enumerate(pwl):
        # (3) t_i <= x_i  (the leader share s_i = x_i - t_i is non-negative)
        row = np.zeros(num_vars)
        row[t0 + i] = 1.0
        row[delta_slice(i)] = -1.0
        add(row, -np.inf, 0.0)
        # (4) t_i <= (1 - alpha) r z_i
        row = np.zeros(num_vars)
        row[t0 + i] = 1.0
        row[z0 + i] = -follower_demand
        add(row, -np.inf, 0.0)
        # (5) lambda_i >= L (every link's latency at least the level)
        row = np.zeros(num_vars)
        row[delta_slice(i)] = p.latency_slopes
        row[level_idx] = -1.0
        add(row, -p.latency_at_zero - 1e-9, np.inf)
        # (6) lambda_i <= L + eps + M_i (1 - z_i) (used links pinned to L)
        row = np.zeros(num_vars)
        row[delta_slice(i)] = p.latency_slopes
        row[level_idx] = -1.0
        row[z0 + i] = big_m[i]
        add(row, -np.inf, eps_wardrop - p.latency_at_zero + big_m[i])

    result = sciopt.milp(
        c=objective,
        constraints=sciopt.LinearConstraint(np.vstack(rows),
                                            np.array(lbs), np.array(ubs)),
        integrality=integrality,
        bounds=sciopt.Bounds(lower, upper),
    )
    info: Dict[str, Any] = {
        "milp_status": int(result.status),
        "milp_message": str(result.message),
        "milp_success": bool(result.success),
        "wardrop_relaxation": float(eps_wardrop),
        "linearisation_error": eps_cost,
        "num_segments": segments,
        "link_caps": [p.cap for p in pwl],
    }
    if not result.success:
        info["milp_objective"] = None
        return None, None, info
    info["milp_objective"] = float(result.fun)
    solution = np.asarray(result.x)
    combined = np.array([float(solution[delta_slice(i)].sum())
                         for i in range(n)])
    followers = np.clip(solution[t0:t0 + n], 0.0, None)
    return combined, followers, info


# --------------------------------------------------------------------------- #
# Candidate evaluation + SLSQP polish of the true induced cost
# --------------------------------------------------------------------------- #
def _project_leader(flows: np.ndarray, budget: float,
                    caps: np.ndarray) -> np.ndarray:
    """Clip a tentative leader assignment into the feasible simplex slice."""
    s = np.clip(np.asarray(flows, dtype=float), 0.0, caps)
    total = float(s.sum())
    if total > budget > 0.0:
        s = s * (budget / total)
    return s


def _induced_cost(instance: ParallelLinkInstance, s: np.ndarray,
                  tol: float) -> Tuple[float, Optional[StackelbergOutcome]]:
    try:
        strategy = ParallelStackelbergStrategy(s, instance.demand)
        outcome = strategy.induce(instance, tol=tol)
        return float(outcome.cost), outcome
    except ReproError:
        return float("inf"), None


def exact_strategy(instance: ParallelLinkInstance, alpha: float, *,
                   num_segments: int = DEFAULT_SEGMENTS, tol: float = 1e-12,
                   polish: bool = True,
                   polish_maxiter: int = 40) -> ExactResult:
    """Certified (near-)exact leader strategy with budget ``alpha``.

    Solves the piecewise-linearised MILP for a certified lower bound, then
    returns the best of the MILP split, the budgeted heuristics and an
    optional SLSQP polish of the true induced cost — so the certified cost
    is never worse than ``llf`` / ``scale`` / ``aloof`` at the same budget.
    """
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    if num_segments < 1:
        raise StrategyError(
            f"num_segments must be >= 1, got {num_segments!r}")
    n = instance.num_links
    r = instance.demand
    budget = alpha * r

    nash = parallel_nash(instance, tol=tol)
    cost_ref = float(nash.cost) * (1.0 + 1e-9) + 1e-9
    pwl = [_linearise(lat, _link_cap(lat, cost_ref, r), num_segments)
           for lat in instance.latencies]
    combined, followers, info = _solve_milp(instance, alpha, pwl)
    caps = np.array([p.cap for p in pwl])

    candidates: Dict[str, np.ndarray] = {
        "mimic_nash": alpha * np.asarray(nash.flows, dtype=float),
        "llf": llf(instance, alpha).flows,
        "scale": scale(instance, alpha).flows,
    }
    if combined is not None:
        candidates["milp"] = combined - followers

    evaluated: Dict[str, float] = {}
    best_name, best_cost, best_s, best_outcome = "", float("inf"), None, None
    for name, raw in candidates.items():
        s = _project_leader(raw, budget, caps)
        cost, outcome = _induced_cost(instance, s, tol)
        evaluated[name] = cost
        if cost < best_cost:
            best_name, best_cost, best_s, best_outcome = name, cost, s, outcome
    if best_outcome is None:  # pragma: no cover - mimic_nash always induces
        raise StrategyError("no candidate leader strategy could be induced")

    if polish and budget > 0.0 and n > 1:
        def objective(s: np.ndarray) -> float:
            return _induced_cost(instance, _project_leader(s, budget, caps),
                                 tol)[0]

        bounds = [(0.0, float(min(budget, cap))) for cap in caps]
        res = sciopt.minimize(
            objective, best_s, method="SLSQP", bounds=bounds,
            constraints=[{"type": "eq",
                          "fun": lambda s: float(s.sum()) - budget}],
            options={"maxiter": polish_maxiter, "ftol": 1e-12})
        s = _project_leader(res.x, budget, caps)
        cost, outcome = _induced_cost(instance, s, tol)
        evaluated["polish"] = cost
        if cost < best_cost - 1e-15:
            best_name, best_cost, best_s, best_outcome = ("polish", cost, s,
                                                          outcome)

    eps_cost = info["linearisation_error"]
    milp_objective = info.get("milp_objective")
    lower_bound = (milp_objective - eps_cost if milp_objective is not None
                   else 0.0)
    certification = dict(info)
    certification.update({
        "lower_bound": float(lower_bound),
        "certified_cost": float(best_cost),
        "optimality_gap": float(max(0.0, best_cost - lower_bound)),
        "selected_candidate": best_name,
        "candidate_costs": {k: (v if np.isfinite(v) else None)
                            for k, v in evaluated.items()},
        "alpha": float(alpha),
    })
    strategy = ParallelStackelbergStrategy(best_s, r)
    return ExactResult(strategy=strategy, outcome=best_outcome,
                       certification=certification)
