"""Baseline Stackelberg strategies the paper compares against.

* :func:`llf` — Roughgarden's Largest-Latency-First heuristic, which achieves
  the ``1/alpha`` guarantee on parallel links but is not always optimal.
* :func:`scale` — the SCALE strategy ``S = alpha * O`` studied by Roughgarden
  and, on general networks, by Karakostas–Kolliopoulos and Swamy.
* :func:`aloof` — the null strategy (the Leader routes nothing); its outcome
  is the plain Nash equilibrium and anchors the price-of-anarchy comparisons.
* :func:`brute_force_strategy` — grid search over the Leader's simplex, used
  by the tests to certify optimality claims on small instances.
"""

from repro.baselines.llf import llf
from repro.baselines.scale import scale
from repro.baselines.aloof import aloof
from repro.baselines.brute_force import brute_force_strategy, enumerate_strategies
from repro.baselines.exact import ExactResult, exact_strategy
from repro.baselines.network_ext import (
    NetworkBruteForceResult,
    network_brute_force,
    network_llf,
)

__all__ = [
    "llf",
    "scale",
    "aloof",
    "brute_force_strategy",
    "enumerate_strategies",
    "exact_strategy",
    "ExactResult",
    "network_llf",
    "network_brute_force",
    "NetworkBruteForceResult",
]
