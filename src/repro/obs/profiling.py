"""Opt-in per-phase kernel profiling.

``SolveConfig(profile=True)`` makes :func:`repro.api.solve` wrap the
strategy call in a :func:`profiled` context; the equilibrium kernels
(:func:`repro.equilibrium.water_fill`, the Frank–Wolfe solver) report
their elapsed time into the active :class:`PhaseRecorder`, and the result
lands in ``SolveReport.metadata["profile"]``:

``{"phases": {name: {"calls": n, "seconds": s}}, "total_seconds": t}``

The recorder is **thread-local**: the active profile follows the thread
that executes the solve (the strategy function runs start-to-finish on
one thread — in the caller for in-process solves, in the pool worker for
process-pool solves, where :func:`repro.api.session._execute` re-arms it).

Overhead contract (see ``docs/subsystems/obs.md``): with profiling off —
the default — a kernel pays exactly one thread-local attribute read that
returns ``None``.  Recorders stack: nesting :func:`profiled` chains to
the enclosing recorder, so a service-level trace collection and a
user-requested ``profile=True`` can coexist without stealing each
other's phases.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = ["PhaseRecorder", "active", "phase", "profiled"]

_LOCAL = threading.local()


class PhaseRecorder:
    """Accumulates ``{phase name: calls + cumulative seconds}``.

    Not locked: a recorder is owned by the thread that installed it (and
    its ``parent`` chain lives on the same thread).
    """

    __slots__ = ("phases", "parent")

    def __init__(self, parent: Optional["PhaseRecorder"] = None) -> None:
        self.phases: Dict[str, Dict[str, float]] = {}
        self.parent = parent

    def note(self, name: str, seconds: float) -> None:
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = {"calls": 1, "seconds": float(seconds)}
        else:
            entry["calls"] += 1
            entry["seconds"] += float(seconds)
        if self.parent is not None:
            self.parent.note(name, seconds)

    def to_dict(self, *, total_seconds: Optional[float] = None
                ) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "phases": {name: dict(entry)
                       for name, entry in sorted(self.phases.items())}}
        if total_seconds is not None:
            data["total_seconds"] = float(total_seconds)
        return data


def active() -> Optional[PhaseRecorder]:
    """The recorder installed on this thread, or ``None`` (the hot-path
    check: kernels bail on ``None`` before doing any timing work)."""
    return getattr(_LOCAL, "recorder", None)


@contextmanager
def profiled() -> Iterator[PhaseRecorder]:
    """Install a fresh recorder on this thread for the ``with`` body.

    Chains to any enclosing recorder, and always restores it on exit.
    """
    recorder = PhaseRecorder(parent=active())
    _LOCAL.recorder = recorder
    try:
        yield recorder
    finally:
        _LOCAL.recorder = recorder.parent


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time the ``with`` body into the active recorder (no-op when off)."""
    recorder = active()
    if recorder is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        recorder.note(name, time.perf_counter() - start)
