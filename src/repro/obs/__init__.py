"""repro.obs — unified observability: metrics, tracing, profiling.

Three small, dependency-free pieces with one shared contract — **zero
cost when off**:

* :mod:`repro.obs.metrics` — a thread-safe registry (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram` with exponential latency buckets,
  labeled families) exporting JSON snapshots and the Prometheus text
  format;
* :mod:`repro.obs.tracing` — deterministic request tracing
  (:class:`Tracer`/:class:`Span`, ids from request digest + sequence,
  injectable clock, bounded ring buffer, Chrome ``trace_event`` export)
  propagated across processes via the ``x-repro-trace-id`` header;
* :mod:`repro.obs.profiling` — opt-in per-phase kernel timings behind
  ``SolveConfig(profile=True)``, landing in
  ``SolveReport.metadata["profile"]``.

:class:`Observability` bundles one registry + one tracer for a process
(a worker, the gateway); components accept it as an optional ``obs``
argument whose absence costs exactly one ``is None`` check on the hot
path.  :mod:`repro.obs.collect` projects the platform's legacy
``stats()`` counters onto the registry at exact numeric equality for the
``/metrics`` endpoints.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry,
                               histogram_quantile, parse_prometheus)
from repro.obs.profiling import PhaseRecorder, phase, profiled
from repro.obs.tracing import Span, Tracer, trace_id_for

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PhaseRecorder",
    "Span",
    "Tracer",
    "histogram_quantile",
    "parse_prometheus",
    "phase",
    "profiled",
    "trace_id_for",
]


class Observability:
    """One process's observability handle: a registry plus a tracer.

    Parameters
    ----------
    service:
        Identity stamped on spans and useful as an exposition label
        (``"gateway"``, ``"worker-<pid>"``).
    capacity:
        Span ring-buffer bound (oldest evicted first).
    clock:
        Injectable monotonic clock shared by the tracer; defaults to
        :func:`time.perf_counter`.  Tests pass a fake for exact timings.
    """

    def __init__(self, *, service: str, capacity: int = 4096,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.service = service
        self.registry = MetricsRegistry()
        self.tracer = Tracer(service=service, capacity=capacity,
                             clock=clock or time.perf_counter)

    def latency_histogram(self, name: str, help_text: str = "") -> Histogram:
        """A latency histogram on this process's registry with the fixed
        exponential bucket layout (get-or-create)."""
        return self.registry.histogram(name, help_text,
                                       buckets=DEFAULT_LATENCY_BUCKETS)

    def snapshot(self) -> Dict[str, Any]:
        """JSON snapshot of the live registry (not the legacy counters —
        endpoint handlers merge those in via :mod:`repro.obs.collect`)."""
        return self.registry.snapshot()
