"""Dependency-free, thread-safe metrics primitives.

This module is the quantitative half of :mod:`repro.obs`: a small
Prometheus-flavoured registry (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`, labeled families) that the layers above re-home their
ad-hoc accounting onto — without changing any public ``stats()`` API and
without taking a dependency.  Two export surfaces:

* :meth:`MetricsRegistry.snapshot` — a JSON-compatible dict, embedded in
  chaos reports and served by ``/metrics?format=json``;
* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (version 0.0.4), served by ``/metrics`` on workers and the gateway.

Design constraints, in order:

1. **Exactness** — counters are plain Python numbers under a lock; no
   sampling, no floating drift for integral series.  The collectors in
   :mod:`repro.obs.collect` map legacy ``stats()`` dicts onto this
   registry at *numeric identity*, which the test suite asserts
   key-by-key.
2. **Thread safety** — every mutation and every snapshot runs under the
   owning metric's lock; concurrent readers can never observe a torn
   histogram (``sum`` inconsistent with bucket counts).
3. **Zero cost when absent** — nothing in this module is imported on the
   serve/cluster hot paths unless observability is switched on; the hot
   paths guard with a single ``is None`` check (see
   ``docs/subsystems/obs.md`` for the contract).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "parse_prometheus",
]

#: Fixed exponential latency buckets (seconds): 0.5 ms doubling up to
#: ~16.4 s, 16 finite bounds + implicit +Inf.  Chosen to straddle the
#: serving stack's observed range — sub-millisecond tier-1 hits up to
#: multi-second cold cluster solves — with constant relative error.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    0.0005 * 2.0 ** i for i in range(16))


def _format_value(value: float) -> str:
    """Render a sample exactly: integral values without a decimal point."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(labels[key]))}"'
                     for key in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically non-decreasing sample (``*_total`` series).

    ``inc`` rejects negative amounts: monotonicity is the point — it is
    what makes rate computations and the bench/CI deltas meaningful.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters are monotonic; cannot add {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set_exact(self, value: float) -> None:
        """Set the absolute value (collector use: re-homing a legacy
        counter snapshot).  Still refuses to go backwards."""
        with self._lock:
            if value < self._value:
                raise ValueError(
                    f"counter would regress: {self._value!r} -> {value!r}")
            self._value = value


class Gauge:
    """A sample that can go both ways (queue depths, breaker state)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact ``sum``/``count`` accounting.

    Buckets are *upper bounds* of half-open intervals, cumulative in the
    exported form (Prometheus convention, ``le`` labels, implicit
    ``+Inf``).  ``observe`` and ``snapshot`` are each atomic, so a
    snapshot is always internally consistent.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, "
                             f"got {buckets!r}")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self._sum: float = 0.0
        self._count: int = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan: len(bounds) is ~16 and observations on the serving
        # path are rare compared to the work they measure.
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, Any]:
        """Atomic ``{"buckets": [[le, cumulative], ...], "sum", "count"}``."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = 0
            buckets: List[List[float]] = []
            for bound, count in zip(self.bounds, counts):
                acc += count
                buckets.append([bound, acc])
            buckets.append([math.inf, total])
            return {"buckets": buckets, "sum": self._sum, "count": total}

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by in-bucket interpolation."""
        return histogram_quantile(self.snapshot(), q)


def histogram_quantile(snapshot: Mapping[str, Any], q: float,
                       *, baseline: Optional[Mapping[str, Any]] = None
                       ) -> float:
    """Estimate a quantile from a :meth:`Histogram.snapshot` dict.

    With ``baseline`` (an earlier snapshot of the *same* histogram) the
    quantile is computed over the delta — how the cluster bench derives
    per-pass p50/p95/p99 from one cumulative histogram.  Returns ``nan``
    when the (delta) population is empty.  Standard Prometheus-style
    linear interpolation inside the containing bucket; the overflow
    bucket clamps to its lower bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    buckets = [list(pair) for pair in snapshot["buckets"]]
    count = int(snapshot["count"])
    if baseline is not None:
        base = {pair[0]: pair[1] for pair in baseline["buckets"]}
        for pair in buckets:
            pair[1] -= base.get(pair[0], 0)
        count -= int(baseline["count"])
    if count <= 0:
        return math.nan
    rank = q * count
    previous_bound, previous_cum = 0.0, 0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if math.isinf(bound):
                return previous_bound
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:  # pragma: no cover - defensive
                return bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cumulative
    return previous_bound  # pragma: no cover - count>0 guarantees a hit


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A labeled family: one metric instance per label-value combination."""

    __slots__ = ("name", "kind", "help", "label_names", "_children",
                 "_lock", "_buckets")

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        self._buckets = buckets

    def labels(self, **labels: str) -> Any:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._buckets
                                      or DEFAULT_LATENCY_BUCKETS)
                else:
                    child = _TYPES[self.kind]()
                self._children[key] = child
            return child

    def samples(self) -> List[Tuple[Dict[str, str], Any]]:
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.label_names, key)), child)
                for key, child in items]


class MetricsRegistry:
    """A named collection of metrics with JSON and Prometheus exports.

    ``counter``/``gauge``/``histogram`` are get-or-create and idempotent;
    re-registering a name with a different type or label set raises.
    With ``labels=()`` (the default) the bare metric is returned; with
    label names, a family whose ``.labels(...)`` yields the children.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def _family(self, name: str, kind: str, help_text: str,
                labels: Iterable[str],
                buckets: Optional[Sequence[float]] = None) -> _Family:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, label_names, buckets)
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names!r}, requested "
                    f"{kind}{label_names!r}")
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Iterable[str] = ()) -> Any:
        family = self._family(name, "counter", help_text, labels)
        return family if family.label_names else family.labels()

    def gauge(self, name: str, help_text: str = "",
              labels: Iterable[str] = ()) -> Any:
        family = self._family(name, "gauge", help_text, labels)
        return family if family.label_names else family.labels()

    def histogram(self, name: str, help_text: str = "",
                  labels: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Any:
        family = self._family(name, "histogram", help_text, labels, buckets)
        return family if family.label_names else family.labels()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump: ``{name: {type, help, samples: [...]}}``.

        Each sample is ``{"labels": {...}, "value": ...}`` (counters and
        gauges) or ``{"labels": {...}, **histogram_snapshot}``; the
        ``+Inf`` histogram bound is serialized as the string ``"+Inf"``.
        """
        with self._lock:
            families = sorted(self._families.items())
        out: Dict[str, Any] = {}
        for name, family in families:
            samples = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    data = child.snapshot()
                    data["buckets"] = [
                        ["+Inf" if math.isinf(bound) else bound, cum]
                        for bound, cum in data["buckets"]]
                    samples.append({"labels": labels, **data})
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[name] = {"type": family.kind, "help": family.help,
                         "samples": samples}
        return out

    def render_prometheus(self) -> str:
        """Text exposition (format 0.0.4), deterministic ordering."""
        with self._lock:
            families = sorted(self._families.items())
        lines: List[str] = []
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            samples = sorted(family.samples(),
                             key=lambda item: sorted(item[0].items()))
            for labels, child in samples:
                if family.kind == "histogram":
                    data = child.snapshot()
                    for bound, cumulative in data["buckets"]:
                        le = "+Inf" if math.isinf(bound) \
                            else _format_value(bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**labels, 'le': le})} "
                            f"{cumulative}")
                    lines.append(f"{name}_sum{_render_labels(labels)} "
                                 f"{_format_value(data['sum'])}")
                    lines.append(f"{name}_count{_render_labels(labels)} "
                                 f"{data['count']}")
                else:
                    lines.append(f"{name}{_render_labels(labels)} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse a text exposition back into ``{series: {labels_json: value}}``.

    The inverse of :meth:`MetricsRegistry.render_prometheus`, used by the
    CI cluster-smoke scrape and the equivalence tests.  ``series`` is the
    sample name (including ``_bucket``/``_sum``/``_count`` suffixes);
    keys of the inner dict are canonical JSON of the label dict.
    """
    out: Dict[str, Dict[str, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            sample, value_text = line.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels: Dict[str, str] = {}
        name = sample
        if sample.endswith("}"):
            brace = sample.index("{")
            name, inner = sample[:brace], sample[brace + 1:-1]
            for part in filter(None, _split_labels(inner)):
                key, _, quoted = part.partition("=")
                if not (quoted.startswith('"') and quoted.endswith('"')):
                    raise ValueError(f"bad label in line: {raw!r}")
                labels[key] = quoted[1:-1].replace(r"\n", "\n") \
                    .replace(r"\"", '"').replace(r"\\", "\\")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"bad sample value in line: {raw!r}")
        out.setdefault(name, {})[json.dumps(labels, sort_keys=True)] = value
    return out


def _split_labels(inner: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in inner:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    parts.append("".join(current))
    return parts
