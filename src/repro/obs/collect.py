"""Re-home the platform's legacy counters onto the metrics registry.

Every layer below :mod:`repro.obs` already keeps exact accounting behind
a public ``stats()`` API (:class:`repro.serve.ServiceStats`, the tiered
cache, :class:`repro.study.ArtifactStore`, the gateway's breaker/retry
counters, the supervisor).  Those APIs are load-bearing — tests, benches
and the chaos harness consume them — so rather than moving the counters,
the collectors here project a ``stats()`` snapshot onto canonically-named
registry metrics **at numeric identity**: the ``/metrics`` exposition on
a worker or the gateway reproduces every legacy counter exactly (asserted
key-by-key by ``tests/obs/test_collect.py``).

Naming scheme (see ``docs/subsystems/obs.md`` for the full table):

* ``repro_*`` — per-shard :class:`~repro.serve.SolveService` counters
  (``repro_requests_total``, ``repro_cache_hits_total{tier=...}``, ...);
* ``repro_tiered_cache_*`` / ``repro_memory_cache_*`` /
  ``repro_store_*`` — the cache tiers and the artifact store;
* ``repro_gateway_*`` — gateway retry/breaker accounting, plus per-node
  ``repro_worker_*{node="host:port"}`` series;
* ``repro_supervisor_*`` — respawn budget accounting.

Monotonic legacy counters land on :class:`~repro.obs.metrics.Counter`
via ``set_exact`` (which refuses to regress); point-in-time values
(queue peaks, breaker state, liveness) land on gauges.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "collect_cluster_stats",
    "collect_service_stats",
    "merged_snapshot",
    "render_merged",
]

#: ServiceStats counter -> (metric name, kind).  ``tier1_hits`` and
#: ``tier2_hits`` are special-cased into one labeled family below.
_SERVICE_SERIES = (
    ("requests", "repro_requests_total", "counter",
     "Requests accepted by the shard's SolveService"),
    ("coalesced", "repro_coalesced_total", "counter",
     "Requests folded into an identical in-flight computation"),
    ("enqueued", "repro_enqueued_total", "counter",
     "Requests that missed every cache tier and entered the batch queue"),
    ("rejected", "repro_rejected_total", "counter",
     "Requests refused by backpressure (queue full or service closed)"),
    ("probing", "repro_probing", "gauge",
     "Requests currently probing the store tier"),
    ("batches", "repro_batches_total", "counter",
     "Solver batches executed"),
    ("batched_requests", "repro_batched_requests_total", "counter",
     "Requests executed inside solver batches"),
    ("batch_failures", "repro_batch_failures_total", "counter",
     "Solver batches that raised"),
    ("cache_put_failures", "repro_cache_put_failures_total", "counter",
     "Write-through cache puts that raised"),
    ("pool_restarts", "repro_pool_restarts_total", "counter",
     "Process-pool restarts after a broken pool"),
    ("worker_restarts", "repro_worker_restarts_total", "counter",
     "Dispatch worker thread restarts"),
    ("timeouts", "repro_timeouts_total", "counter",
     "Requests failed because their deadline expired before execution"),
    ("shutdown_timeouts", "repro_shutdown_timeouts_total", "counter",
     "Requests failed by shutdown before execution"),
    ("queue_peak", "repro_queue_peak", "gauge",
     "High-water mark of the batch queue"),
    ("pending", "repro_pending", "gauge",
     "Requests currently queued or executing"),
)

_TIERED_SERIES = (
    ("lookups", "repro_tiered_cache_lookups_total",
     "Tiered-cache lookups (memory probes + store probes that settled)"),
    ("misses", "repro_tiered_cache_misses_total",
     "Tiered-cache lookups that missed every tier"),
    ("puts", "repro_tiered_cache_puts_total",
     "Write-through puts into the tiered cache"),
    ("store_errors", "repro_tiered_cache_store_errors_total",
     "Store-tier probes that raised and were treated as misses"),
)

_MEMORY_SERIES = (
    ("hits", "repro_memory_cache_hits_total", "counter"),
    ("misses", "repro_memory_cache_misses_total", "counter"),
    ("evictions", "repro_memory_cache_evictions_total", "counter"),
    ("size", "repro_memory_cache_size", "gauge"),
    ("max_entries", "repro_memory_cache_max_entries", "gauge"),
)

_STORE_SERIES = (
    ("hits", "repro_store_hits_total"),
    ("misses", "repro_store_misses_total"),
    ("writes", "repro_store_writes_total"),
    ("skipped_writes", "repro_store_skipped_writes_total"),
    ("corrupt", "repro_store_corrupt_total"),
)

_GATEWAY_SERIES = (
    ("requests", "repro_gateway_requests_total"),
    ("completed", "repro_gateway_completed_total"),
    ("remote_errors", "repro_gateway_remote_errors_total"),
    ("overload_retries", "repro_gateway_overload_retries_total"),
    ("reroutes", "repro_gateway_reroutes_total"),
    ("failures", "repro_gateway_failures_total"),
    ("timeouts", "repro_gateway_timeouts_total"),
    ("breaker_opens", "repro_gateway_breaker_opens_total"),
    ("breaker_closes", "repro_gateway_breaker_closes_total"),
    ("unavailable_waits", "repro_gateway_unavailable_waits_total"),
    ("worker_respawns", "repro_gateway_worker_respawns_total"),
)


def _stats_dict(stats: Any) -> Mapping[str, Any]:
    if hasattr(stats, "to_dict"):
        return stats.to_dict()
    return stats


def collect_service_stats(stats: Any,
                          registry: Optional[MetricsRegistry] = None
                          ) -> MetricsRegistry:
    """Project one :class:`~repro.serve.ServiceStats` snapshot (object or
    ``to_dict()`` mapping) onto a registry, at numeric identity."""
    data = _stats_dict(stats)
    registry = registry or MetricsRegistry()

    for key, name, kind, help_text in _SERVICE_SERIES:
        value = data.get(key, 0)
        if kind == "counter":
            registry.counter(name, help_text).set_exact(value)
        else:
            registry.gauge(name, help_text).set(value)
    hits = registry.counter(
        "repro_cache_hits_total",
        "Requests served from a cache tier, by tier", labels=("tier",))
    hits.labels(tier="tier1").set_exact(data.get("tier1_hits", 0))
    hits.labels(tier="tier2").set_exact(data.get("tier2_hits", 0))

    extra = data.get("extra") or {}
    if extra:
        family = registry.counter(
            "repro_extra_total",
            "Side counters carried through mixed-version stat merges",
            labels=("counter",))
        for key in sorted(extra):
            family.labels(counter=key).set_exact(extra[key])

    cache = data.get("cache") or {}
    if cache:
        _collect_tiered_cache(cache, registry)
    return registry


def _collect_tiered_cache(cache: Mapping[str, Any],
                          registry: MetricsRegistry) -> None:
    for key, name, help_text in _TIERED_SERIES:
        registry.counter(name, help_text).set_exact(cache.get(key, 0))
    tier_hits = registry.counter(
        "repro_tiered_cache_hits_total",
        "Tiered-cache hits, by serving tier", labels=("tier",))
    tier_hits.labels(tier="memory").set_exact(cache.get("memory_hits", 0))
    tier_hits.labels(tier="store").set_exact(cache.get("store_hits", 0))

    memory = cache.get("memory") or {}
    for key, name, kind in _MEMORY_SERIES:
        if kind == "counter":
            registry.counter(name).set_exact(memory.get(key, 0))
        else:
            registry.gauge(name).set(memory.get(key, 0))

    store = cache.get("store")
    if store:
        for key, name in _STORE_SERIES:
            registry.counter(name).set_exact(store.get(key, 0))


def collect_cluster_stats(stats: Mapping[str, Any],
                          registry: Optional[MetricsRegistry] = None
                          ) -> MetricsRegistry:
    """Project a gateway/cluster ``stats()`` mapping (the shape returned
    by :meth:`repro.cluster.ClusterGateway.stats`, optionally with the
    launcher's ``supervisor`` section) onto a registry.

    The ``merged`` cross-shard :class:`~repro.serve.ServiceStats` section
    lands via :func:`collect_service_stats`, so a gateway ``/metrics``
    scrape answers cluster-wide questions (``repro_requests_total`` is
    the fleet total) while per-node state stays addressable through the
    ``node`` label.
    """
    registry = registry or MetricsRegistry()
    gateway = stats.get("gateway") or {}
    for key, name in _GATEWAY_SERIES:
        registry.counter(name).set_exact(gateway.get(key, 0))

    workers = stats.get("workers") or {}
    if workers:
        alive = registry.gauge("repro_worker_alive",
                               "Worker liveness as seen by the gateway",
                               labels=("node",))
        breaker = registry.gauge("repro_worker_breaker_open",
                                 "Whether the node's circuit breaker is open",
                                 labels=("node",))
        forwarded = registry.counter("repro_worker_forwarded_total",
                                     "Requests forwarded to the node",
                                     labels=("node",))
        respawns = registry.counter("repro_worker_respawns_total",
                                    "Process respawns recorded for the node",
                                    labels=("node",))
        for node, entry in sorted(workers.items()):
            alive.labels(node=node).set(1 if entry.get("alive") else 0)
            breaker.labels(node=node).set(
                1 if entry.get("breaker_open") else 0)
            forwarded.labels(node=node).set_exact(entry.get("forwarded", 0))
            respawns.labels(node=node).set_exact(entry.get("respawns", 0))

    supervisor = stats.get("supervisor") or {}
    if supervisor:
        registry.gauge("repro_supervisor_enabled").set(
            1 if supervisor.get("enabled") else 0)
        registry.gauge("repro_supervisor_max_respawns").set(
            supervisor.get("max_respawns", 0))
        registry.counter("repro_supervisor_respawns_total").set_exact(
            supervisor.get("worker_respawns", 0))
        registry.counter("repro_supervisor_respawn_failures_total").set_exact(
            supervisor.get("respawn_failures", 0))

    merged = stats.get("merged")
    if merged:
        collect_service_stats(merged, registry)
    return registry


def render_merged(*registries: Optional[MetricsRegistry]) -> str:
    """Concatenate expositions from disjoint registries (e.g. the scrape
    built from legacy ``stats()`` plus a live latency-histogram registry).
    """
    parts = [registry.render_prometheus()
             for registry in registries if registry is not None]
    return "".join(parts) if parts else "\n"


def merged_snapshot(*registries: Optional[MetricsRegistry]
                    ) -> Dict[str, Any]:
    """Merge JSON snapshots of disjoint registries into one mapping."""
    out: Dict[str, Any] = {}
    for registry in registries:
        if registry is not None:
            out.update(registry.snapshot())
    return out
