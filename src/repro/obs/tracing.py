"""Deterministic request tracing with a bounded in-memory ring buffer.

The qualitative half of :mod:`repro.obs`: where did one request spend its
time across ``gateway -> shard -> batch -> kernel``?  Each process that
opts in owns a :class:`Tracer`; spans carry a **trace id** propagated over
the wire via the ``x-repro-trace-id`` header
(:data:`repro.cluster.protocol.TRACE_HEADER`), so the gateway can stitch a
cross-process view together by fetching every worker's ``/trace`` ring.

Determinism is a design requirement, not an accident:

* trace ids derive from ``(request digest, per-gateway sequence)`` via
  SHA-256 — replaying the same workload yields the same ids;
* span ids are a per-tracer counter, not random;
* the clock is injectable, so tests assert exact timestamps/durations
  with a fake monotonic clock instead of sleeping.

The ring buffer (``capacity`` spans, oldest evicted first) bounds memory
for arbitrarily long-lived workers.  Export is Chrome ``trace_event``
JSON (``chrome://tracing`` / Perfetto compatible): complete events
(``"ph": "X"``) with microsecond ``ts``/``dur``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["Span", "Tracer", "trace_id_for"]


def trace_id_for(digest: str, sequence: int) -> str:
    """The deterministic 16-hex-digit trace id for a request.

    ``digest`` is the request's content digest (already deterministic);
    ``sequence`` is the issuing gateway's request counter, which keeps
    repeated submissions of the same instance distinguishable.
    """
    raw = hashlib.sha256(f"{digest}:{int(sequence)}".encode("ascii"))
    return raw.hexdigest()[:16]


class Span:
    """One timed operation, open until :meth:`finish` (or ``with`` exit).

    Spans self-register with their tracer's ring buffer when finished —
    an unfinished span is never exported, so a crash mid-span cannot leak
    a nonsense duration.  ``annotate`` attaches JSON-compatible context
    (``retry=2``, ``strategy="optop"``, ...).
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "start", "duration", "annotations", "_finished")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 annotations: Optional[Dict[str, Any]]) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = tracer.clock()
        self.duration: Optional[float] = None
        self.annotations: Dict[str, Any] = dict(annotations or {})
        self._finished = False

    def annotate(self, key: str, value: Any) -> "Span":
        self.annotations[key] = value
        return self

    def finish(self) -> "Span":
        if not self._finished:
            self._finished = True
            self.duration = self.tracer.clock() - self.start
            self.tracer._record(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if exc_info[0] is not None:
            self.annotations.setdefault("error", exc_info[0].__name__)
        self.finish()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id, "span_id": self.span_id,
            "parent_id": self.parent_id, "name": self.name,
            "service": self.tracer.service, "start": self.start,
            "duration": self.duration,
            "annotations": dict(self.annotations),
        }


class Tracer:
    """Per-process span factory + bounded ring buffer.

    Parameters
    ----------
    service:
        Process identity stamped on every span (``"gateway"``,
        ``"worker-<pid>"``); becomes the ``pid`` of the Chrome export.
    capacity:
        Ring buffer bound; the oldest finished span is evicted first.
    clock:
        Monotonic float clock.  Defaults to :func:`time.perf_counter`;
        tests inject a counter to make timings exact.
    """

    def __init__(self, *, service: str, capacity: int = 4096,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if int(capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.service = service
        self.clock: Callable[[], float] = clock or time.perf_counter
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=int(capacity))
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #
    def next_sequence(self) -> int:
        """The next request sequence number (feeds :func:`trace_id_for`)."""
        with self._lock:
            self._sequence += 1
            return self._sequence

    def span(self, name: str, *, trace_id: str,
             parent_id: Optional[str] = None,
             **annotations: Any) -> Span:
        """Open a span; finish it via ``with`` or :meth:`Span.finish`."""
        with self._lock:
            self._sequence += 1
            span_id = f"{self.service}:{self._sequence}"
        return Span(self, name, trace_id, span_id, parent_id, annotations)

    def record_complete(self, name: str, *, trace_id: str,
                        start: float, duration: float,
                        parent_id: Optional[str] = None,
                        **annotations: Any) -> Dict[str, Any]:
        """Record an already-timed operation (profiler phases, remote
        spans folded into an aggregate view) without opening a live span.
        """
        with self._lock:
            self._sequence += 1
            span_id = f"{self.service}:{self._sequence}"
        record = {
            "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "name": name, "service": self.service,
            "start": float(start), "duration": float(duration),
            "annotations": dict(annotations),
        }
        with self._lock:
            self._ring.append(record)
        return record

    def _record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span.to_dict())

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def spans(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Finished spans, oldest first; ``last`` keeps only the newest N."""
        with self._lock:
            records = list(self._ring)
        if last is not None:
            records = records[-int(last):] if int(last) > 0 else []
        return [dict(record, annotations=dict(record["annotations"]))
                for record in records]

    def chrome_trace(self, last: Optional[int] = None) -> Dict[str, Any]:
        """Chrome ``trace_event`` export: ``{"traceEvents": [...]}``."""
        return {"traceEvents": [span_to_chrome_event(record)
                                for record in self.spans(last)]}

    def clear(self) -> int:
        """Drop every buffered span; returns how many were dropped."""
        with self._lock:
            dropped = len(self._ring)
            self._ring.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def span_to_chrome_event(record: Dict[str, Any]) -> Dict[str, Any]:
    """Map one span record onto a Chrome complete event (``"ph": "X"``)."""
    args = dict(record.get("annotations") or {})
    args["trace_id"] = record["trace_id"]
    if record.get("parent_id"):
        args["parent_id"] = record["parent_id"]
    return {
        "name": record["name"],
        "cat": record["trace_id"],
        "ph": "X",
        "ts": round(float(record["start"]) * 1e6, 3),
        "dur": round(float(record.get("duration") or 0.0) * 1e6, 3),
        "pid": record.get("service", "repro"),
        "tid": record["span_id"],
        "args": args,
    }
