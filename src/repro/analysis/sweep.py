"""Parameter sweeps: a-posteriori cost versus alpha, beta statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_nash, parallel_optimum
from repro.baselines.llf import llf
from repro.baselines.scale import scale
from repro.core.optop import optop
from repro.core.linear_optimal import optimal_restricted_strategy
from repro.exceptions import ModelError

__all__ = ["AlphaSweepRow", "alpha_sweep", "beta_statistics", "beta_demand_sweep"]


@dataclass(frozen=True)
class AlphaSweepRow:
    """Ratio ``C(S+T)/C(O)`` of each strategy at one value of alpha."""

    alpha: float
    ratios: Dict[str, float]


_STRATEGY_BUILDERS: Dict[str, Callable] = {
    "llf": llf,
    "scale": scale,
}


def alpha_sweep(instance: ParallelLinkInstance, alphas: Sequence[float],
                *, strategies: Sequence[str] = ("llf", "scale"),
                include_optimal_restricted: bool = False) -> List[AlphaSweepRow]:
    """Sweep the Leader's share alpha and record each strategy's cost ratio.

    ``strategies`` selects among the named baselines (``"llf"``, ``"scale"``);
    ``include_optimal_restricted`` additionally runs the Theorem 2.4 optimal
    strategy (only valid for common-slope linear instances).
    """
    optimum_cost = parallel_optimum(instance).cost
    if optimum_cost <= 0.0:
        raise ModelError("the instance has zero optimum cost; sweep is meaningless")
    rows: List[AlphaSweepRow] = []
    for alpha in alphas:
        ratios: Dict[str, float] = {}
        for name in strategies:
            builder = _STRATEGY_BUILDERS.get(name)
            if builder is None:
                raise ModelError(f"unknown strategy {name!r} in alpha_sweep")
            strategy = builder(instance, float(alpha))
            ratios[name] = strategy.induce(instance).cost / optimum_cost
        if include_optimal_restricted:
            restricted = optimal_restricted_strategy(instance, float(alpha))
            ratios["optimal"] = restricted.cost / optimum_cost
        rows.append(AlphaSweepRow(alpha=float(alpha), ratios=ratios))
    return rows


@dataclass(frozen=True)
class BetaStatistics:
    """Summary statistics of the Price of Optimum over an instance family."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    mean_poa: float

    @classmethod
    def from_samples(cls, betas: Sequence[float],
                     poas: Sequence[float]) -> "BetaStatistics":
        arr = np.asarray(betas, dtype=float)
        return cls(count=int(arr.size), mean=float(arr.mean()),
                   std=float(arr.std()), minimum=float(arr.min()),
                   maximum=float(arr.max()),
                   mean_poa=float(np.mean(np.asarray(poas, dtype=float))))


@dataclass(frozen=True)
class BetaDemandPoint:
    """The Price of Optimum and anarchy gap of one demand level."""

    demand: float
    beta: float
    price_of_anarchy: float
    nash_cost: float
    optimum_cost: float


def beta_demand_sweep(instance: ParallelLinkInstance,
                      demands: Sequence[float]) -> List[BetaDemandPoint]:
    """How the Price of Optimum varies with the congestion level.

    Re-solves the instance at each total flow in ``demands`` and records beta
    together with the price of anarchy.  Useful to see where Stackelberg
    control matters: at very low and very high congestion the Nash equilibrium
    often coincides with the optimum (beta ~ 0), with a worst case in between.
    """
    points: List[BetaDemandPoint] = []
    for demand in demands:
        if demand <= 0.0:
            raise ModelError(f"demands must be > 0, got {demand!r}")
        scaled = instance.with_demand(float(demand))
        result = optop(scaled)
        nash_cost = parallel_nash(scaled).cost
        poa = nash_cost / result.optimum_cost if result.optimum_cost > 0 else 1.0
        points.append(BetaDemandPoint(
            demand=float(demand), beta=result.beta, price_of_anarchy=poa,
            nash_cost=nash_cost, optimum_cost=result.optimum_cost))
    return points


def beta_statistics(instances: Iterable[ParallelLinkInstance]) -> Tuple[BetaStatistics,
                                                                        List[float]]:
    """Run OpTop over an instance family and summarise the observed betas.

    Returns ``(statistics, betas)``; the per-instance price of anarchy is also
    aggregated so benchmarks can relate "how bad selfishness is" to "how much
    control restores the optimum".
    """
    betas: List[float] = []
    poas: List[float] = []
    for instance in instances:
        result = optop(instance)
        betas.append(result.beta)
        nash_cost = parallel_nash(instance).cost
        optimum_cost = result.optimum_cost
        poas.append(nash_cost / optimum_cost if optimum_cost > 0 else 1.0)
    if not betas:
        raise ModelError("beta_statistics needs at least one instance")
    return BetaStatistics.from_samples(betas, poas), betas
