"""Parameter sweeps: a-posteriori cost versus alpha, beta statistics.

All sweeps run through the :mod:`repro.api` registry — a strategy name in a
sweep is a registry name, so externally registered strategies participate in
comparisons without touching this module.  Instance families are executed
with :func:`repro.api.solve_many`, which dedupes structurally equal instances
through the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.config import SolveConfig
from repro.api.registry import REGISTRY
from repro.api.session import solve, solve_many
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_optimum
from repro.core.linear_optimal import optimal_restricted_strategy
from repro.exceptions import ModelError

__all__ = ["AlphaSweepRow", "alpha_sweep", "beta_statistics", "beta_demand_sweep"]


@dataclass(frozen=True)
class AlphaSweepRow:
    """Ratio ``C(S+T)/C(O)`` of each strategy at one value of alpha."""

    alpha: float
    ratios: Dict[str, float]


def _sweep_config(config: Optional[SolveConfig]) -> SolveConfig:
    return SolveConfig(compute_nash=False) if config is None else config


def alpha_sweep(instance: ParallelLinkInstance, alphas: Sequence[float],
                *, strategies: Sequence[str] = ("llf", "scale"),
                include_optimal_restricted: bool = False,
                config: Optional[SolveConfig] = None) -> List[AlphaSweepRow]:
    """Sweep the Leader's share alpha and record each strategy's cost ratio.

    ``strategies`` selects registered :mod:`repro.api` strategies by name
    (the default compares the ``"llf"`` and ``"scale"`` baselines);
    ``include_optimal_restricted`` additionally runs the Theorem 2.4 optimal
    strategy (only valid for common-slope linear instances).
    """
    for name in strategies:
        if name not in REGISTRY:
            raise ModelError(f"unknown strategy {name!r} in alpha_sweep; "
                             f"registered: {', '.join(REGISTRY.names())}")
    base = _sweep_config(config)
    optimum_cost = parallel_optimum(instance, config=base).cost
    if optimum_cost <= 0.0:
        raise ModelError("the instance has zero optimum cost; sweep is meaningless")
    rows: List[AlphaSweepRow] = []
    for alpha in alphas:
        at_alpha = base.with_alpha(float(alpha))
        ratios: Dict[str, float] = {}
        for name in strategies:
            ratios[name] = solve(instance, name, config=at_alpha).cost_ratio
        if include_optimal_restricted:
            restricted = optimal_restricted_strategy(instance, float(alpha))
            ratios["optimal"] = restricted.cost / optimum_cost
        rows.append(AlphaSweepRow(alpha=float(alpha), ratios=ratios))
    return rows


@dataclass(frozen=True)
class BetaStatistics:
    """Summary statistics of the Price of Optimum over an instance family."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    mean_poa: float

    @classmethod
    def from_samples(cls, betas: Sequence[float],
                     poas: Sequence[float]) -> "BetaStatistics":
        arr = np.asarray(betas, dtype=float)
        return cls(count=int(arr.size), mean=float(arr.mean()),
                   std=float(arr.std()), minimum=float(arr.min()),
                   maximum=float(arr.max()),
                   mean_poa=float(np.mean(np.asarray(poas, dtype=float))))


@dataclass(frozen=True)
class BetaDemandPoint:
    """The Price of Optimum and anarchy gap of one demand level."""

    demand: float
    beta: float
    price_of_anarchy: float
    nash_cost: float
    optimum_cost: float


def beta_demand_sweep(instance: ParallelLinkInstance,
                      demands: Sequence[float],
                      *, config: Optional[SolveConfig] = None,
                      ) -> List[BetaDemandPoint]:
    """How the Price of Optimum varies with the congestion level.

    Re-solves the instance at each total flow in ``demands`` and records beta
    together with the price of anarchy.  Useful to see where Stackelberg
    control matters: at very low and very high congestion the Nash equilibrium
    often coincides with the optimum (beta ~ 0), with a worst case in between.
    """
    base = SolveConfig() if config is None else config
    points: List[BetaDemandPoint] = []
    for demand in demands:
        if demand <= 0.0:
            raise ModelError(f"demands must be > 0, got {demand!r}")
        report = solve(instance.with_demand(float(demand)), "optop", config=base)
        points.append(BetaDemandPoint(
            demand=float(demand), beta=report.beta,
            price_of_anarchy=(report.price_of_anarchy
                              if report.price_of_anarchy is not None else 1.0),
            nash_cost=report.nash_cost, optimum_cost=report.optimum_cost))
    return points


def beta_statistics(instances: Iterable[ParallelLinkInstance],
                    *, config: Optional[SolveConfig] = None,
                    max_workers: Optional[int] = 0) -> Tuple[BetaStatistics,
                                                             List[float]]:
    """Run OpTop over an instance family and summarise the observed betas.

    Executes the family through :func:`repro.api.solve_many` (sequentially by
    default; pass ``max_workers`` to fan out across processes).  Returns
    ``(statistics, betas)``; the per-instance price of anarchy is also
    aggregated so benchmarks can relate "how bad selfishness is" to "how much
    control restores the optimum".
    """
    batch = list(instances)
    if not batch:
        raise ModelError("beta_statistics needs at least one instance")
    base = SolveConfig() if config is None else config
    reports = solve_many(batch, "optop", config=base, max_workers=max_workers)
    betas = [report.beta for report in reports]
    poas = [report.price_of_anarchy if report.price_of_anarchy is not None
            else 1.0 for report in reports]
    return BetaStatistics.from_samples(betas, poas), betas
