"""Parameter sweeps: a-posteriori cost versus alpha, beta statistics.

All sweeps are defined as declarative :class:`~repro.study.spec.StudySpec`
plans over the ``"literal"`` generator (the user-supplied instance serialised
into the cell params) and executed through :func:`repro.study.run_study` —
so every sweep inherits the study pipeline's batch execution, result cache,
process-pool fan-out and, when a ``store`` is passed, resumable
content-addressed artifacts.  A strategy name in a sweep is a registry name,
so externally registered strategies participate in comparisons without
touching this module.

:func:`alpha_sweep` accepts both parallel-link and network instances
(dispatch via :func:`repro.api.dispatch.resolve_instance_kind`); only the
Theorem 2.4 ``include_optimal_restricted`` option is restricted to
common-slope parallel links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.config import SolveConfig
from repro.api.dispatch import PARALLEL, resolve_instance_kind
from repro.api.registry import REGISTRY
from repro.core.linear_optimal import optimal_restricted_strategy
from repro.equilibrium.network import network_optimum
from repro.equilibrium.parallel import parallel_optimum
from repro.exceptions import ModelError
from repro.network.parallel import ParallelLinkInstance
from repro.serialization import instance_to_dict
from repro.study.report import StudyReport
from repro.study.runner import run_study
from repro.study.spec import GeneratorAxis, StudySpec
from repro.study.store import ArtifactStore

__all__ = ["AlphaSweepRow", "alpha_sweep", "beta_statistics",
           "beta_demand_sweep"]


@dataclass(frozen=True)
class AlphaSweepRow:
    """Ratio ``C(S+T)/C(O)`` of each strategy at one value of alpha."""

    alpha: float
    ratios: Dict[str, float]


def _sweep_config(config: Optional[SolveConfig]) -> SolveConfig:
    return SolveConfig(compute_nash=False) if config is None else config


def _literal_axis(instance, label: str = "", **extra) -> GeneratorAxis:
    """A study axis holding the serialised ``instance`` itself."""
    return GeneratorAxis("literal", {"instance": instance_to_dict(instance)},
                         label=label, **extra)


def alpha_sweep(instance, alphas: Sequence[float],
                *, strategies: Sequence[str] = ("llf", "scale"),
                include_optimal_restricted: bool = False,
                config: Optional[SolveConfig] = None,
                store: Optional[ArtifactStore] = None,
                max_workers: Optional[int] = 0) -> List[AlphaSweepRow]:
    """Sweep the Leader's share alpha and record each strategy's cost ratio.

    Accepts any parallel-link or network instance — dispatch is structural,
    matching :func:`repro.price_of_optimum`.  ``strategies`` selects
    registered :mod:`repro.api` strategies by name (the default compares the
    ``"llf"`` and ``"scale"`` baselines); ``include_optimal_restricted``
    additionally runs the Theorem 2.4 optimal strategy (only valid for
    common-slope linear *parallel-link* instances).  ``store`` makes the
    sweep resumable through the content-addressed artifact store.
    """
    kind = resolve_instance_kind(instance)
    for name in strategies:
        if name not in REGISTRY:
            raise ModelError(f"unknown strategy {name!r} in alpha_sweep; "
                             f"registered: {', '.join(REGISTRY.names())}")
    if include_optimal_restricted and kind != PARALLEL:
        raise ModelError("include_optimal_restricted needs a parallel-link "
                         "instance (Theorem 2.4 covers common-slope links)")
    base = _sweep_config(config)
    # Fail fast on degenerate instances before any sweep cell is solved.
    if kind == PARALLEL:
        optimum_cost = parallel_optimum(instance, config=base).cost
    else:
        optimum_cost = network_optimum(instance, config=base).cost
    if optimum_cost <= 0.0:
        raise ModelError("the instance has zero optimum cost; sweep is "
                         "meaningless")
    alphas = [float(alpha) for alpha in alphas]
    spec = StudySpec(
        "alpha-sweep",
        [_literal_axis(instance)],
        strategies=tuple(strategies),
        configs=tuple(base.with_alpha(alpha) for alpha in alphas),
        description="A-posteriori cost ratio of each strategy vs alpha.")
    study = run_study(spec, store=store, max_workers=max_workers)

    by_strategy = {name: study.select(strategy=name) for name in strategies}
    rows: List[AlphaSweepRow] = []
    for i, alpha in enumerate(alphas):
        ratios: Dict[str, float] = {}
        for name in strategies:
            ratios[name] = by_strategy[name][i].report.cost_ratio
        if include_optimal_restricted:
            restricted = optimal_restricted_strategy(instance, alpha)
            ratios["optimal"] = restricted.cost / optimum_cost
        rows.append(AlphaSweepRow(alpha=alpha, ratios=ratios))
    return rows


@dataclass(frozen=True)
class BetaStatistics:
    """Summary statistics of the Price of Optimum over an instance family."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    mean_poa: float

    @classmethod
    def from_samples(cls, betas: Sequence[float],
                     poas: Sequence[float]) -> "BetaStatistics":
        arr = np.asarray(betas, dtype=float)
        return cls(count=int(arr.size), mean=float(arr.mean()),
                   std=float(arr.std()), minimum=float(arr.min()),
                   maximum=float(arr.max()),
                   mean_poa=float(np.mean(np.asarray(poas, dtype=float))))


@dataclass(frozen=True)
class BetaDemandPoint:
    """The Price of Optimum and anarchy gap of one demand level."""

    demand: float
    beta: float
    price_of_anarchy: float
    nash_cost: float
    optimum_cost: float


def beta_demand_sweep(instance: ParallelLinkInstance,
                      demands: Sequence[float],
                      *, config: Optional[SolveConfig] = None,
                      store: Optional[ArtifactStore] = None,
                      max_workers: Optional[int] = 0,
                      ) -> List[BetaDemandPoint]:
    """How the Price of Optimum varies with the congestion level.

    Defined as a study over the ``"literal"`` generator with a ``demand``
    grid: the instance is re-solved with OpTop at each total flow in
    ``demands`` and beta is recorded together with the price of anarchy.
    Useful to see where Stackelberg control matters: at very low and very
    high congestion the Nash equilibrium often coincides with the optimum
    (beta ~ 0), with a worst case in between.
    """
    base = SolveConfig() if config is None else config
    demand_values = [float(d) for d in demands]
    for demand in demand_values:
        if demand <= 0.0:
            raise ModelError(f"demands must be > 0, got {demand!r}")
    spec = StudySpec(
        "beta-demand-sweep",
        [_literal_axis(instance, grid={"demand": demand_values})],
        strategies=("optop",), configs=(base,),
        description="The Price of Optimum across congestion levels.")
    study = run_study(spec, store=store, max_workers=max_workers)
    points: List[BetaDemandPoint] = []
    for demand, result in zip(demand_values, study.results):
        report = result.report
        points.append(BetaDemandPoint(
            demand=demand, beta=report.beta,
            price_of_anarchy=(report.price_of_anarchy
                              if report.price_of_anarchy is not None else 1.0),
            nash_cost=report.nash_cost, optimum_cost=report.optimum_cost))
    return points


def beta_statistics(instances: Iterable[ParallelLinkInstance],
                    *, config: Optional[SolveConfig] = None,
                    store: Optional[ArtifactStore] = None,
                    max_workers: Optional[int] = 0) -> Tuple[BetaStatistics,
                                                             List[float]]:
    """Run OpTop over an instance family and summarise the observed betas.

    The family becomes one study (one ``"literal"`` axis per instance) and
    executes through :func:`repro.study.run_study` — sequentially by
    default; pass ``max_workers`` to fan out across processes, ``store`` to
    resume from the artifact store.  Returns ``(statistics, betas)``; the
    per-instance price of anarchy is also aggregated so benchmarks can
    relate "how bad selfishness is" to "how much control restores the
    optimum".
    """
    batch = list(instances)
    if not batch:
        raise ModelError("beta_statistics needs at least one instance")
    base = SolveConfig() if config is None else config
    spec = StudySpec(
        "beta-statistics",
        [_literal_axis(inst) for inst in batch],
        strategies=("optop",), configs=(base,),
        description="Beta statistics of OpTop over an instance family.")
    study: StudyReport = run_study(spec, store=store, max_workers=max_workers)
    reports = study.reports()
    betas = [report.beta for report in reports]
    poas = [report.price_of_anarchy if report.price_of_anarchy is not None
            else 1.0 for report in reports]
    return BetaStatistics.from_samples(betas, poas), betas
