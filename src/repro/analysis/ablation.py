"""Ablations of the reproduction's own design choices.

DESIGN.md makes three implementation choices that the paper leaves open (it
only says "efficiently computable"); the ablations here quantify that none of
them drives the results:

* **Solver choice** — the exact path-based solver versus Frank–Wolfe must
  agree on equilibrium/optimum costs (within the Frank–Wolfe gap).
* **Free-flow computation** — MOP's max-flow free flow versus a naive greedy
  path-decomposition classification: the max-flow choice can only give a
  smaller (never larger) Price of Optimum, and both induce the optimum.
* **Shortest-path tolerance** — the edge-classification slack
  ``shortest_path_atol`` must not change beta over several orders of
  magnitude once it is above the solver noise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.reporting import ExperimentRecord
from repro.core.mop import mop
from repro.equilibrium.frank_wolfe import FrankWolfeOptions, frank_wolfe
from repro.equilibrium.pathbased import path_based_flow
from repro.instances.braess import roughgarden_example
from repro.instances.random_networks import grid_network, layered_network
from repro.paths.decomposition import decompose_flow
from repro.paths.dijkstra import shortest_distances
from repro.utils.numeric import relative_gap

__all__ = [
    "ablation_solver_agreement",
    "ablation_free_flow_rule",
    "ablation_shortest_path_tolerance",
]


def ablation_solver_agreement(*, seeds: Sequence[int] = (0, 1, 2),
                              fw_tolerance: float = 1e-7) -> ExperimentRecord:
    """Path-based SLSQP and Frank–Wolfe agree on Nash and optimum costs."""
    record = ExperimentRecord(
        "A1", "Ablation: exact path-based solver vs Frank-Wolfe",
        headers=("instance", "kind", "path-based cost", "Frank-Wolfe cost",
                 "relative gap"))
    worst = 0.0
    for seed in seeds:
        instance = grid_network(3, 3, demand=2.0, seed=seed)
        for kind in ("nash", "optimum"):
            exact = path_based_flow(instance, kind)
            iterative = frank_wolfe(instance, kind,
                                    FrankWolfeOptions(tolerance=fw_tolerance))
            gap = relative_gap(iterative.cost, exact.cost)
            worst = max(worst, gap)
            record.add_row(f"grid 3x3 (seed {seed})", kind, exact.cost,
                           iterative.cost, gap)
    record.add_claim("Both solvers compute the same flows/costs "
                     "(the choice is an implementation detail)",
                     f"worst relative cost gap {worst:.2e}", worst < 1e-4)
    return record


def _greedy_free_flow(instance, result) -> float:
    """Free flow according to a naive greedy path decomposition of the optimum.

    Decomposes the optimum into paths and counts as *free* only the flow on
    decomposed paths whose latency equals the shortest-path distance.  This is
    the obvious alternative to the max-flow rule; it depends on the (arbitrary)
    decomposition and can only under-estimate the free flow.
    """
    costs = instance.latencies_at(result.optimum.edge_flows)
    free_total = 0.0
    remaining = result.optimum.edge_flows.copy()
    for commodity in instance.commodities:
        dist, _ = shortest_distances(instance.network, commodity.source, costs)
        target = dist[commodity.sink]
        paths = decompose_flow(instance.network, remaining, commodity.source,
                               commodity.sink)
        shipped = 0.0
        for path, value in paths:
            take = min(value, commodity.demand - shipped)
            if take <= 0.0:
                break
            length = float(sum(costs[idx] for idx in path))
            if length <= target + 1e-6:
                free_total += take
            for idx in path:
                remaining[idx] -= take
            shipped += take
    return free_total


def ablation_free_flow_rule(*, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentRecord:
    """MOP's max-flow free flow is never smaller than a greedy decomposition's."""
    record = ExperimentRecord(
        "A2", "Ablation: max-flow free flow vs greedy path-decomposition",
        headers=("instance", "beta (max-flow)", "beta (greedy)",
                 "induced = optimum"))
    consistent = True
    induced_ok = True
    cases = [("roughgarden", roughgarden_example())]
    for seed in seeds:
        cases.append((f"grid 3x3 (seed {seed})",
                      grid_network(3, 3, demand=2.0, seed=seed)))
        cases.append((f"layered (seed {seed})",
                      layered_network(3, 3, demand=2.0, seed=seed)))
    for name, instance in cases:
        result = mop(instance)
        greedy_free = _greedy_free_flow(instance, result)
        greedy_beta = 1.0 - greedy_free / instance.total_demand
        reaches_optimum = relative_gap(result.induced_cost,
                                       result.optimum_cost) < 1e-5
        record.add_row(name, result.beta, greedy_beta,
                       "yes" if reaches_optimum else "NO")
        if result.beta > greedy_beta + 1e-6:
            consistent = False
        if not reaches_optimum:
            induced_ok = False
    record.add_claim("The max-flow rule never demands more control than the "
                     "greedy decomposition rule",
                     "beta(max-flow) <= beta(greedy) on every instance",
                     consistent)
    record.add_claim("The max-flow strategy still induces the optimum cost",
                     "holds on every instance", induced_ok)
    return record


def ablation_shortest_path_tolerance(
        *, tolerances: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3),
        seeds: Sequence[int] = (0, 1)) -> ExperimentRecord:
    """beta is insensitive to the shortest-path classification slack."""
    record = ExperimentRecord(
        "A3", "Ablation: sensitivity of beta to shortest_path_atol",
        headers=("instance",) + tuple(f"atol={tol:g}" for tol in tolerances))
    stable = True
    cases = [("roughgarden", roughgarden_example())]
    for seed in seeds:
        cases.append((f"grid 3x3 (seed {seed})",
                      grid_network(3, 3, demand=2.0, seed=seed)))
    for name, instance in cases:
        betas = [mop(instance, shortest_path_atol=tol, compute_induced=False).beta
                 for tol in tolerances]
        record.add_row(name, *betas)
        if max(betas) - min(betas) > 1e-3:
            stable = False
    record.add_claim("beta varies by < 1e-3 across three orders of magnitude "
                     "of the tolerance", "holds on every instance", stable)
    return record
