"""Ablations of the reproduction's own design choices: Study-API wrappers.

DESIGN.md makes three implementation choices that the paper leaves open (it
only says "efficiently computable"); the ablations quantify that none of
them drives the results:

* **Solver choice** (A1) — the exact path-based solver versus Frank–Wolfe
  must agree on equilibrium/optimum costs (within the Frank–Wolfe gap).
* **Free-flow computation** (A2) — MOP's max-flow free flow versus a naive
  greedy path-decomposition classification: the max-flow choice can only
  give a smaller (never larger) Price of Optimum, and both induce the
  optimum.
* **Shortest-path tolerance** (A3) — the edge-classification slack
  ``shortest_path_atol`` must not change beta over several orders of
  magnitude once it is above the solver noise.

.. deprecated::
    The ablations are defined as declarative plans ``"A1"``/``"A2"``/``"A3"``
    in :mod:`repro.analysis.studies` (A3's tolerance sweep runs as study
    cells through the artifact store); these wrappers delegate to
    :func:`repro.analysis.studies.run_experiment` and emit
    :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import ExperimentRecord
from repro.analysis.studies import run_experiment
from repro.analysis.studies import warn_deprecated_wrapper as _deprecated

__all__ = [
    "ablation_solver_agreement",
    "ablation_free_flow_rule",
    "ablation_shortest_path_tolerance",
]


def ablation_solver_agreement(*, seeds: Sequence[int] = (0, 1, 2),
                              fw_tolerance: float = 1e-7) -> ExperimentRecord:
    """Path-based SLSQP and Frank–Wolfe agree on Nash and optimum costs.

    .. deprecated:: use ``run_experiment("A1", ...)``.
    """
    _deprecated("ablation_solver_agreement", "A1")
    return run_experiment("A1", seeds=seeds, fw_tolerance=fw_tolerance)


def ablation_free_flow_rule(*, seeds: Sequence[int] = (0, 1, 2),
                            ) -> ExperimentRecord:
    """MOP's max-flow free flow is never smaller than a greedy decomposition's.

    .. deprecated:: use ``run_experiment("A2", seeds=...)``.
    """
    _deprecated("ablation_free_flow_rule", "A2")
    return run_experiment("A2", seeds=seeds)


def ablation_shortest_path_tolerance(
        *, tolerances: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3),
        seeds: Sequence[int] = (0, 1)) -> ExperimentRecord:
    """beta is insensitive to the shortest-path classification slack.

    .. deprecated:: use ``run_experiment("A3", ...)``.
    """
    _deprecated("ablation_shortest_path_tolerance", "A3")
    return run_experiment("A3", tolerances=tolerances, seeds=seeds)
