"""Study-backed definitions of the paper experiments (E1-E14, A1-A3).

Every evidence-producing function of the repo is defined here as an
:class:`ExperimentPlan`: a declarative :class:`~repro.study.spec.StudySpec`
(which instances, which strategies, which configs) plus a summariser that
turns the executed :class:`~repro.study.report.StudyReport` into the
familiar :class:`~repro.analysis.reporting.ExperimentRecord` of tables and
paper-vs-measured claims.

Because the solver work flows through :func:`repro.study.run_study`, every
experiment inherits the study pipeline's properties for free: batch
execution through :func:`repro.api.solve_many`, the instance-digest result
cache, process-pool fan-out, and — when an
:class:`~repro.study.store.ArtifactStore` is passed — resumable,
content-addressed artifacts, so re-running an experiment re-solves nothing.

A handful of *structural* checks (Theorem 2.4 restricted strategies, random
useless/freezing strategies, thresholds, commodity splits, solver-internal
ablations) exercise internals the flat :class:`~repro.api.report.SolveReport`
deliberately does not expose; their summarisers consume the spec's instances
directly.  Dependent follow-up solves (e.g. "brute force just below the
measured beta") go through :func:`repro.study.solve_cell` so they resume
through the same store.

The legacy ``experiment_*`` functions in :mod:`repro.analysis.experiments`
are thin deprecated wrappers over :func:`run_experiment`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import ExperimentRecord
from repro.api.config import SolveConfig
from repro.baselines.brute_force import brute_force_strategy
from repro.core.commodity_split import commodity_control_split
from repro.core.frozen import induced_flow_on_frozen_links, is_useless_strategy
from repro.core.linear_optimal import optimal_restricted_strategy
from repro.core.mop import mop
from repro.core.thresholds import minimum_useful_control
from repro.equilibrium.frank_wolfe import FrankWolfeOptions, frank_wolfe
from repro.equilibrium.induced import induced_parallel_equilibrium
from repro.equilibrium.pathbased import path_based_flow
from repro.exceptions import ModelError
from repro.instances.pigou import pigou
from repro.paths.decomposition import decompose_flow
from repro.paths.dijkstra import shortest_distances
from repro.study.report import StudyReport
from repro.study.runner import run_study, solve_cell
from repro.study.spec import GeneratorAxis, StudySpec
from repro.study.store import ArtifactStore
from repro.utils.numeric import relative_gap

__all__ = [
    "ExperimentPlan",
    "EXPERIMENTS",
    "experiment_ids",
    "experiment_title",
    "build_experiment",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentPlan:
    """A declarative experiment: its study spec plus the summarising step."""

    experiment_id: str
    title: str
    spec: StudySpec
    summarize: Callable[[StudyReport, Optional[ArtifactStore]],
                        ExperimentRecord]

    def run(self, *, store: Optional[ArtifactStore] = None,
            max_workers: Optional[int] = 0) -> ExperimentRecord:
        """Execute the spec through the study runner and summarise."""
        study = run_study(self.spec, store=store, max_workers=max_workers)
        return self.summarize(study, store)


def _quick() -> SolveConfig:
    return SolveConfig(compute_nash=False)


# --------------------------------------------------------------------------- #
# E1 — Figures 1–3: Pigou's example
# --------------------------------------------------------------------------- #
def _build_e1() -> ExperimentPlan:
    spec = StudySpec(
        "E1", [GeneratorAxis("pigou")], strategies=("optop",),
        description="Pigou's example: flows, anarchy cost, price of optimum.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        report = study.one(generator="pigou").report
        nash = report.nash_flows
        optimum = report.optimum_flows
        poa = report.price_of_anarchy

        record = ExperimentRecord(
            "E1",
            "Pigou example (Figs 1-3): flows, anarchy cost and price of optimum",
            headers=("quantity", "link M1", "link M2", "cost"))
        record.add_row("Nash N", nash[0], nash[1], report.nash_cost)
        record.add_row("Optimum O", optimum[0], optimum[1], report.optimum_cost)
        record.add_row("Leader strategy S", report.leader_flows[0],
                       report.leader_flows[1], "-")
        record.add_row("Induced S+T", report.induced_flows[0],
                       report.induced_flows[1], report.induced_cost)

        record.add_claim("Nash floods the fast link: N = <1, 0>",
                         f"N = <{nash[0]:.6f}, {nash[1]:.6f}>",
                         abs(nash[0] - 1.0) < 1e-9 and abs(nash[1]) < 1e-9)
        record.add_claim("Optimum balances the links: O = <1/2, 1/2>",
                         f"O = <{optimum[0]:.6f}, {optimum[1]:.6f}>",
                         abs(optimum[0] - 0.5) < 1e-9
                         and abs(optimum[1] - 0.5) < 1e-9)
        record.add_claim("Worst-case anarchy cost 4/3", f"{poa:.6f}",
                         abs(poa - 4.0 / 3.0) < 1e-9)
        record.add_claim("Price of Optimum beta = 1/2", f"{report.beta:.6f}",
                         abs(report.beta - 0.5) < 1e-9)
        record.add_claim("Strategy S = <0, 1/2> induces the optimum cost",
                         f"C(S+T) = {report.induced_cost:.6f} vs "
                         f"C(O) = {report.optimum_cost:.6f}",
                         relative_gap(report.induced_cost,
                                      report.optimum_cost) < 1e-9)
        return record

    return ExperimentPlan("E1", "Pigou example (Figs 1-3)", spec, summarize)


# --------------------------------------------------------------------------- #
# E2 — Figures 4–6: the five-link OpTop walk-through
# --------------------------------------------------------------------------- #
def _build_e2() -> ExperimentPlan:
    spec = StudySpec(
        "E2", [GeneratorAxis("figure4")], strategies=("optop",),
        description="Five-link OpTop walk-through (Figs 4-6).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        result = study.one(generator="figure4")
        report = result.report
        instance = result.cell.make_instance()

        record = ExperimentRecord(
            "E2", "Five-link OpTop walk-through (Figs 4-6)",
            headers=("link", "latency", "nash flow", "optimum flow",
                     "leader flow"))
        descriptions = ("x", "1.5x", "2x", "2.5x + 1/6", "0.7")
        for i in range(instance.num_links):
            record.add_row(instance.names[i], descriptions[i],
                           report.nash_flows[i], report.optimum_flows[i],
                           report.leader_flows[i])

        frozen_rounds = report.metadata["frozen_links"]
        num_rounds = report.metadata["num_rounds"]
        frozen_first_round = tuple(frozen_rounds[0]) if frozen_rounds else ()
        expected_beta = 8.0 / 75.0 + 27.0 / 200.0  # o4 + o5 = 29/120
        record.add_claim(
            "Round 1 freezes exactly the under-loaded links M4, M5",
            f"frozen links (0-indexed): {frozen_first_round}",
            frozen_first_round == (3, 4))
        record.add_claim(
            "OpTop terminates after freezing once (Fig. 6)",
            f"{num_rounds} rounds (last detects no under-loaded link)",
            num_rounds == 2 and frozen_rounds[1] == [])
        record.add_claim(
            "Price of Optimum beta = o4 + o5 = 29/120",
            f"beta = {report.beta:.9f} (29/120 = {expected_beta:.9f})",
            abs(report.beta - expected_beta) < 1e-9)
        record.add_claim(
            "Remaining selfish flow induces the optimum on M1-M3",
            f"C(S+T) = {report.induced_cost:.9f} vs "
            f"C(O) = {report.optimum_cost:.9f}",
            relative_gap(report.induced_cost, report.optimum_cost) < 1e-9)
        return record

    return ExperimentPlan("E2", "Five-link OpTop walk-through (Figs 4-6)",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E3 — Figure 7: the Roughgarden Example 6.5.1 graph
# --------------------------------------------------------------------------- #
def _build_e3(epsilon: float = 0.0) -> ExperimentPlan:
    epsilon = float(epsilon)
    spec = StudySpec(
        "E3", [GeneratorAxis("roughgarden", {"epsilon": epsilon})],
        strategies=("mop",),
        description="Roughgarden Example 6.5.1 graph (Fig 7) under MOP.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        report = study.one(generator="roughgarden").report
        optimum_flows = report.optimum_flows
        edge_names = ("s->v", "s->w", "v->w", "v->t", "w->t")
        expected = (0.75 - epsilon, 0.25 + epsilon, 0.5 - 2 * epsilon,
                    0.25 + epsilon, 0.75 - epsilon)

        record = ExperimentRecord(
            "E3",
            "Roughgarden Example 6.5.1 graph (Fig 7): MOP and the price of optimum",
            headers=("edge", "paper optimum flow", "measured optimum flow",
                     "leader flow"))
        for i, name in enumerate(edge_names):
            record.add_row(name, expected[i], optimum_flows[i],
                           report.leader_flows[i])

        flows_match = all(abs(optimum_flows[i] - expected[i]) < 1e-5
                          for i in range(5))
        record.add_claim(
            "Optimal edge flows match Fig. 7 (3/4-e, 1/4+e, 1/2-2e, ...)",
            "max deviation "
            f"{max(abs(optimum_flows[i] - expected[i]) for i in range(5)):.2e}",
            flows_match)
        expected_beta = 0.5 + 2 * epsilon
        record.add_claim(
            "Price of Optimum beta_G = 1 - O_P0 / r = 1/2 + 2 eps",
            f"beta_G = {report.beta:.6f} (expected {expected_beta:.6f})",
            abs(report.beta - expected_beta) < 1e-4)
        record.add_claim(
            "MOP's strategy induces the optimum cost (guarantee 1 <= 1/alpha)",
            f"C(S+T) = {report.induced_cost:.9f} vs "
            f"C(O) = {report.optimum_cost:.9f}",
            relative_gap(report.induced_cost, report.optimum_cost) < 1e-6)
        nash_cost = (report.nash_cost if report.nash_cost is not None
                     else float("nan"))
        record.add_claim(
            "Selfish routing alone is strictly worse than the optimum",
            f"C(N) = {nash_cost:.6f} vs C(O) = {report.optimum_cost:.6f}",
            nash_cost > report.optimum_cost + 1e-9)
        return record

    return ExperimentPlan("E3", "Roughgarden Example 6.5.1 graph (Fig 7)",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E4 — Corollary 2.2 on random parallel-link families
# --------------------------------------------------------------------------- #
_E4_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("linear", "random_linear_parallel"),
    ("common-slope", "random_affine_common_slope"),
    ("polynomial", "random_polynomial_parallel"),
    ("mixed", "random_mixed_parallel"),
)


def _build_e4(*, num_instances: int = 5, num_links: int = 6,
              minimality_resolution: int = 12) -> ExperimentPlan:
    axes = [GeneratorAxis(generator,
                          {"num_links": int(num_links), "demand": 2.0},
                          seeds=range(int(num_instances)), label=label)
            for label, generator in _E4_FAMILIES]
    axes.append(GeneratorAxis("random_linear_parallel",
                              {"num_links": 3, "demand": 1.5},
                              seeds=(11,), label="minimality"))
    spec = StudySpec(
        "E4", axes, strategies=("optop",),
        description="OpTop on random parallel-link families (Cor. 2.2).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E4", "OpTop on random parallel-link families (Cor. 2.2)",
            headers=("family", "mean beta", "min beta", "max beta", "mean PoA",
                     "optimum induced"))
        all_induce_optimum = True
        for label, _ in _E4_FAMILIES:
            reports = [r.report for r in study.select(label=label)]
            induce_ok = all(
                relative_gap(r.induced_cost, r.optimum_cost) <= 1e-6
                for r in reports)
            betas = np.asarray([r.beta for r in reports], dtype=float)
            poas = np.asarray(
                [r.price_of_anarchy if r.price_of_anarchy is not None else 1.0
                 for r in reports], dtype=float)
            all_induce_optimum = all_induce_optimum and induce_ok
            record.add_row(label, float(betas.mean()), float(betas.min()),
                           float(betas.max()), float(poas.mean()),
                           "yes" if induce_ok else "NO")

        record.add_claim(
            "OpTop's strategy always induces C(O) (a-posteriori ratio 1)",
            "every random instance reached the optimum cost",
            all_induce_optimum)

        # Minimality spot-check: grid search with control just below beta.
        small = study.one(label="minimality")
        small_report = small.report
        below = max(0.0, small_report.beta - 0.08)
        brute = solve_cell(
            small.cell.make_instance(), "brute_force",
            SolveConfig(alpha=below,
                        brute_force_resolution=int(minimality_resolution),
                        compute_nash=False),
            store=store)
        minimality_holds = (brute.induced_cost
                            > small_report.optimum_cost * (1.0 + 1e-6))
        record.add_claim(
            "No strategy controlling alpha < beta_M reaches C(O) "
            "(grid search on a 3-link instance)",
            f"best grid cost {brute.induced_cost:.6f} > C(O) = "
            f"{small_report.optimum_cost:.6f}",
            minimality_holds)
        return record

    return ExperimentPlan("E4", "OpTop on random parallel-link families",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E5 — Corollary 2.3 / Theorem 2.1 on s–t and k-commodity networks
# --------------------------------------------------------------------------- #
def _build_e5(*, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentPlan:
    seeds = tuple(int(s) for s in seeds)
    axes = [
        GeneratorAxis("grid_network", {"rows": 3, "cols": 3, "demand": 2.0},
                      seeds=seeds, label="grid 3x3"),
        GeneratorAxis("layered_network",
                      {"num_layers": 3, "width": 3, "demand": 2.0},
                      seeds=seeds, label="layered 3x3"),
        GeneratorAxis("random_multicommodity",
                      {"rows": 3, "cols": 3, "num_commodities": 2},
                      seeds=seeds, label="2-commodity grid"),
        GeneratorAxis("braess", label="braess"),
    ]
    spec = StudySpec("E5", axes, strategies=("mop",), configs=(_quick(),),
                     description="MOP on random networks (Cor. 2.3 / Thm 2.1).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E5", "MOP on random networks (Cor. 2.3 / Thm 2.1)",
            headers=("network", "nodes", "edges", "commodities", "beta",
                     "C(O)", "C(S+T)", "relative gap"))
        worst_gap = 0.0
        for seed in seeds:
            for label in ("grid 3x3", "layered 3x3", "2-commodity grid"):
                result = study.one(label=label, seed=seed)
                report = result.report
                instance = result.cell.make_instance()
                gap = relative_gap(report.induced_cost, report.optimum_cost)
                worst_gap = max(worst_gap, gap)
                record.add_row(label, instance.network.num_nodes,
                               instance.network.num_edges,
                               instance.num_commodities, report.beta,
                               report.optimum_cost, report.induced_cost, gap)
        record.add_claim(
            "MOP's strategy induces the optimum cost on every network",
            f"worst relative gap {worst_gap:.2e}", worst_gap < 1e-5)

        braess_report = study.one(label="braess").report
        record.add_claim(
            "On the classic Braess graph the Leader must control everything "
            "(beta = 1) to enforce the optimum",
            f"beta = {braess_report.beta:.6f}",
            abs(braess_report.beta - 1.0) < 1e-9)
        return record

    return ExperimentPlan("E5", "MOP on random networks", spec, summarize)


# --------------------------------------------------------------------------- #
# E6 — Theorem 2.4: optimal strategy below beta on common-slope linear links
# --------------------------------------------------------------------------- #
def _build_e6(*, num_links: int = 4, demand: float = 2.0, seed: int = 3,
              brute_resolution: int = 18) -> ExperimentPlan:
    spec = StudySpec(
        "E6",
        [GeneratorAxis("random_affine_common_slope",
                       {"num_links": int(num_links), "demand": float(demand)},
                       seeds=(int(seed),))],
        strategies=("optop",),
        description="Optimal restricted strategies (Thm 2.4).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        result = study.results[0]
        report = result.report
        instance = result.cell.make_instance()
        beta = report.beta
        nash_cost = report.nash_cost
        optimum_cost = report.optimum_cost

        record = ExperimentRecord(
            "E6",
            "Optimal restricted strategies on common-slope linear links (Thm 2.4)",
            headers=("alpha / beta", "alpha", "Thm 2.4 cost",
                     "brute-force cost", "C(N)", "C(O)"))
        all_within = True
        all_below_nash = True
        for fraction in (0.25, 0.5, 0.75):
            alpha = fraction * beta
            restricted = optimal_restricted_strategy(instance, alpha)
            brute = brute_force_strategy(instance, alpha,
                                         resolution=int(brute_resolution))
            record.add_row(fraction, alpha, restricted.cost, brute.cost,
                           nash_cost, optimum_cost)
            # The grid strategy can never beat the true optimum by more than
            # the grid resolution allows; conversely Theorem 2.4 must not
            # lose to it.
            if restricted.cost > brute.cost * (1.0 + 1e-6):
                all_within = False
            if restricted.cost > nash_cost * (1.0 + 1e-9):
                all_below_nash = False
        record.add_claim(
            "Theorem 2.4 strategy is never worse than exhaustive grid search",
            "holds at alpha/beta in {0.25, 0.5, 0.75}", all_within)
        record.add_claim("Controlling flow never hurts: cost <= C(N)",
                         "holds at every alpha", all_below_nash)

        full = optimal_restricted_strategy(instance, beta)
        record.add_claim(
            "At alpha = beta_M the optimal strategy recovers C(O)",
            f"cost {full.cost:.9f} vs C(O) {optimum_cost:.9f}",
            relative_gap(full.cost, optimum_cost) < 1e-6)
        return record

    return ExperimentPlan("E6", "Optimal restricted strategies (Thm 2.4)",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E7 — Expression (2) bounds: LLF / SCALE over an alpha sweep
# --------------------------------------------------------------------------- #
def _build_e7(*, num_links: int = 6, demand: float = 3.0, seed: int = 7,
              alphas: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
              ) -> ExperimentPlan:
    alphas = tuple(float(a) for a in alphas)
    params = {"num_links": int(num_links), "demand": float(demand)}
    sweep_configs = tuple(SolveConfig(compute_nash=False, alpha=a)
                          for a in alphas)
    axes = [
        GeneratorAxis("random_linear_parallel", params, seeds=(int(seed),),
                      label="sweep", strategies=("llf", "scale"),
                      configs=sweep_configs),
        GeneratorAxis("random_linear_parallel", params, seeds=(int(seed),),
                      label="optop", strategies=("optop",),
                      configs=(SolveConfig(),)),
    ]
    spec = StudySpec("E7", axes, strategies=("llf", "scale"),
                     description="A-posteriori anarchy cost vs alpha "
                                 "(Expr. (2) bounds).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E7", "A-posteriori anarchy cost vs alpha (Expr. (2) bounds)",
            headers=("alpha", "LLF ratio", "SCALE ratio", "1/alpha bound",
                     "4/(3+alpha) bound"))
        general_ok = True
        linear_ok = True
        llf_results = study.select(label="sweep", strategy="llf")
        scale_results = study.select(label="sweep", strategy="scale")
        for alpha, llf_result, scale_result in zip(alphas, llf_results,
                                                   scale_results):
            llf_ratio = llf_result.report.cost_ratio
            scale_ratio = scale_result.report.cost_ratio
            general_bound = math.inf if alpha == 0.0 else 1.0 / alpha
            linear_bound = 4.0 / (3.0 + alpha)
            record.add_row(alpha, llf_ratio, scale_ratio, general_bound,
                           linear_bound)
            if llf_ratio > general_bound * (1.0 + 1e-9):
                general_ok = False
            if llf_ratio > linear_bound * (1.0 + 1e-9):
                linear_ok = False
        record.add_claim("LLF ratio <= 1/alpha (arbitrary latencies, Thm 6.4.4)",
                         "holds on the sweep", general_ok)
        record.add_claim("LLF ratio <= 4/(3+alpha) (linear latencies, Thm 6.4.5)",
                         "holds on the sweep", linear_ok)

        optop_result = study.one(label="optop")
        optop_report = optop_result.report
        alpha_above = min(1.0, optop_report.beta)
        llf_at_beta = solve_cell(
            optop_result.cell.make_instance(), "llf",
            SolveConfig(compute_nash=False, alpha=alpha_above),
            store=store).induced_cost
        record.add_claim(
            "For alpha >= beta_M the factor is exactly 1 via OpTop's strategy",
            f"OpTop induced/optimum = "
            f"{optop_report.induced_cost / optop_report.optimum_cost:.9f}",
            relative_gap(optop_report.induced_cost,
                         optop_report.optimum_cost) < 1e-6)
        record.add_claim(
            "LLF is not always optimal (footnote 6 of [37]): at alpha = "
            "beta_M it may exceed C(O) or merely match it",
            f"LLF cost {llf_at_beta:.6f} vs C(O) "
            f"{optop_report.optimum_cost:.6f}",
            llf_at_beta >= optop_report.optimum_cost - 1e-9)
        return record

    return ExperimentPlan("E7", "A-posteriori anarchy cost vs alpha",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E8 — M/M/1 systems: beta can be small (remark after Cor. 2.2)
# --------------------------------------------------------------------------- #
_E8_FARMS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("moderate fast group",
     {"num_fast": 2, "num_slow": 6, "fast_capacity": 4.0,
      "slow_capacity": 2.0, "utilisation": 0.6}),
    ("highly appealing fast group",
     {"num_fast": 2, "num_slow": 6, "fast_capacity": 20.0,
      "slow_capacity": 2.0, "utilisation": 0.6}),
    ("identical links",
     {"num_fast": 0, "num_slow": 8, "slow_capacity": 3.0,
      "utilisation": 0.6}),
)


def _build_e8() -> ExperimentPlan:
    axes = [GeneratorAxis("mm1_server_farm", params, label=label)
            for label, params in _E8_FARMS]
    spec = StudySpec(
        "E8", axes, strategies=("optop",),
        description="Price of Optimum on M/M/1 server farms.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E8",
            "Price of Optimum on M/M/1 server farms (remark after Cor. 2.2)",
            headers=("farm", "num links", "beta", "PoA"))
        results: Dict[str, float] = {}
        for label, _ in _E8_FARMS:
            report = study.one(label=label).report
            results[label] = report.beta
            record.add_row(label, len(report.leader_flows), report.beta,
                           report.price_of_anarchy)

        record.add_claim(
            "Highly appealing fast links shrink beta versus a moderate farm",
            f"{results['highly appealing fast group']:.4f} < "
            f"{results['moderate fast group']:.4f}",
            results["highly appealing fast group"]
            < results["moderate fast group"])
        record.add_claim(
            "A farm of identical links needs no control at all (beta = 0)",
            f"beta = {results['identical links']:.6f}",
            results["identical links"] < 1e-9)
        return record

    return ExperimentPlan("E8", "Price of Optimum on M/M/1 server farms",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E9 — Proposition 7.1: Nash flows are monotone in the demand
# --------------------------------------------------------------------------- #
_E9_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("linear", "random_linear_parallel"),
    ("polynomial", "random_polynomial_parallel"),
    ("mixed", "random_mixed_parallel"),
)


def _build_e9(*, num_links: int = 6, seed: int = 5,
              num_demands: int = 12) -> ExperimentPlan:
    demands = [float(d) for d in np.linspace(0.1, 4.0, int(num_demands))]
    axes = [GeneratorAxis(generator, {"num_links": int(num_links)},
                          grid={"demand": demands}, seeds=(int(seed),),
                          label=label)
            for label, generator in _E9_FAMILIES]
    spec = StudySpec(
        "E9", axes, strategies=("aloof",),
        description="Monotonicity of Nash flows in the demand (Prop. 7.1).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E9", "Monotonicity of Nash flows in the demand (Prop. 7.1)",
            headers=("family", "largest observed decrease"))
        worst_overall = 0.0
        for label, _ in _E9_FAMILIES:
            results = study.select(label=label)
            by_demand = sorted(
                results, key=lambda r: r.cell.params_dict["demand"])
            worst = 0.0
            previous: Optional[np.ndarray] = None
            for result in by_demand:
                flows = np.asarray(result.report.nash_flows, dtype=float)
                if previous is not None:
                    worst = max(worst, float(np.max(previous - flows)))
                previous = flows
            worst_overall = max(worst_overall, worst)
            record.add_row(label, worst)
        record.add_claim("No link's Nash flow decreases as r grows",
                         f"largest decrease {worst_overall:.2e}",
                         worst_overall < 1e-6)
        return record

    return ExperimentPlan("E9", "Monotonicity of Nash flows in the demand",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E10 — Theorems 7.2 / 7.4 / Lemma 7.5: useless strategies and frozen links
# --------------------------------------------------------------------------- #
def _build_e10(*, num_links: int = 5, seed: int = 9,
               trials: int = 6) -> ExperimentPlan:
    spec = StudySpec(
        "E10",
        [GeneratorAxis("random_linear_parallel",
                       {"num_links": int(num_links), "demand": 2.0},
                       seeds=(int(seed),))],
        strategies=("aloof",),
        description="Useless strategies and frozen links (Thm 7.2 / 7.4).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        result = study.results[0]
        instance = result.cell.make_instance()
        nash_flows = np.asarray(result.report.nash_flows, dtype=float)
        nash_cost = float(result.report.nash_cost)
        rng = np.random.default_rng(int(seed))
        links = int(num_links)

        record = ExperimentRecord(
            "E10",
            "Useless strategies and frozen links (Thm 7.2, Thm 7.4, Lemma 7.5)",
            headers=("trial", "strategy kind", "|C(S+T) - C(N)|",
                     "max induced flow on frozen links"))

        useless_ok = True
        frozen_ok = True
        for trial in range(int(trials)):
            # A useless strategy: a random sub-Nash assignment (s_i <= n_i).
            useless = nash_flows * rng.uniform(0.0, 1.0, size=links)
            assert is_useless_strategy(instance, useless)
            outcome = induced_parallel_equilibrium(instance, useless)
            nash_gap = abs(outcome.cost - nash_cost)
            if nash_gap > 1e-6 * max(1.0, nash_cost):
                useless_ok = False
            record.add_row(trial, "useless (s_i <= n_i)", nash_gap, 0.0)

            # A freezing strategy: overload a random subset of links.
            mask = rng.uniform(size=links) < 0.5
            freezing = np.where(
                mask, nash_flows * rng.uniform(1.0, 1.3, size=links), 0.0)
            total = float(freezing.sum())
            if total > instance.demand:
                freezing *= instance.demand / (total * (1.0 + 1e-9))
            leak = induced_flow_on_frozen_links(instance, freezing)
            if leak > 1e-6:
                frozen_ok = False
            record.add_row(trial, "freezing (s_i >= n_i or 0)", 0.0, leak)

        record.add_claim(
            "Every useless strategy induces S+T identical to N (Thm 7.2)",
            "cost differences below 1e-6", useless_ok)
        record.add_claim(
            "Frozen links receive no induced selfish flow (Thm 7.4 / L. 7.5)",
            "max leak below 1e-6", frozen_ok)
        return record

    return ExperimentPlan("E10", "Useless strategies and frozen links",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E11 — Polynomial-time claims: runtime scaling
# --------------------------------------------------------------------------- #
def _build_e11(*, optop_sizes: Sequence[int] = (8, 16, 32, 64),
               mop_sides: Sequence[int] = (3, 4, 5)) -> ExperimentPlan:
    optop_sizes = tuple(int(m) for m in optop_sizes)
    mop_sides = tuple(int(side) for side in mop_sides)
    # Timing cells disable the result cache so every run — including
    # pytest-benchmark rounds — measures a fresh solve; the recorded
    # wall_time covers the full strategy call (for MOP that includes the
    # induced equilibrium the uniform report always carries).
    axes = [GeneratorAxis("random_linear_parallel",
                          {"num_links": m, "demand": 5.0}, seeds=(m,),
                          label="optop", strategies=("optop",),
                          configs=(SolveConfig(cache=False),))
            for m in optop_sizes]
    axes += [GeneratorAxis("grid_network",
                           {"rows": side, "cols": side, "demand": 2.0},
                           seeds=(side,), label="mop", strategies=("mop",),
                           configs=(SolveConfig(cache=False,
                                                compute_nash=False),))
             for side in mop_sides]
    spec = StudySpec("E11", axes, strategies=("optop",),
                     description="Runtime scaling of OpTop and MOP.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E11", "Runtime scaling of OpTop and MOP (polynomial-time claims)",
            headers=("algorithm", "size", "seconds", "beta"))
        for result in study.select(label="optop"):
            record.add_row("OpTop (m links)",
                           result.cell.params_dict["num_links"],
                           result.report.wall_time, result.report.beta)
        for result in study.select(label="mop"):
            record.add_row("MOP (side x side grid)",
                           result.cell.params_dict["rows"],
                           result.report.wall_time, result.report.beta)
        record.add_claim(
            "Both algorithms complete in well under a second per instance "
            "at these sizes", "see table",
            all(row[2] < 10.0 for row in record.rows))
        return record

    return ExperimentPlan("E11", "Runtime scaling of OpTop and MOP",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E12 — Footnote 6 / Sharma–Williamson threshold
# --------------------------------------------------------------------------- #
def _build_e12(*, num_links: int = 5,
               seeds: Sequence[int] = (1, 2, 3, 4)) -> ExperimentPlan:
    seeds = tuple(int(s) for s in seeds)
    spec = StudySpec(
        "E12",
        [GeneratorAxis("random_linear_parallel",
                       {"num_links": int(num_links), "demand": 2.0},
                       seeds=seeds)],
        strategies=("optop",),
        description="Minimum useful control vs the Price of Optimum.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E12", "Minimum useful control vs the Price of Optimum (footnote 6)",
            headers=("seed", "threshold flow", "threshold fraction", "beta",
                     "improvable"))
        consistent = True
        for seed in seeds:
            result = study.one(seed=seed)
            threshold = minimum_useful_control(result.cell.make_instance())
            beta = result.report.beta
            record.add_row(seed, threshold.flow, threshold.fraction, beta,
                           threshold.is_improvable)
            if threshold.fraction > beta + 1e-9:
                consistent = False
        record.add_claim("threshold fraction <= beta_M on every instance",
                         "holds for all seeds", consistent)

        pigou_threshold = minimum_useful_control(pigou())
        record.add_claim(
            "On Pigou the threshold is 0: any positive control helps",
            f"threshold = {pigou_threshold.flow:.6f}",
            pigou_threshold.flow < 1e-12 and pigou_threshold.is_improvable)
        return record

    return ExperimentPlan("E12", "Minimum useful control vs beta",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E13 — Section 4: weak vs strong Stackelberg strategies on k commodities
# --------------------------------------------------------------------------- #
def _build_e13(*, seeds: Sequence[int] = (0, 1, 2, 3)) -> ExperimentPlan:
    seeds = tuple(int(s) for s in seeds)
    axes = [
        GeneratorAxis("random_multicommodity",
                      {"rows": 3, "cols": 3, "num_commodities": 3},
                      seeds=seeds, label="3x3 grid"),
        GeneratorAxis("roughgarden", label="roughgarden"),
    ]
    # The commodity split is a structural decomposition the flat report does
    # not expose; the spec only enumerates instances (zero solver cells).
    spec = StudySpec("E13", axes, strategies=(),
                     description="Weak vs strong Stackelberg strategies "
                                 "(Section 4).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E13", "Weak vs strong Stackelberg strategies on k-commodity "
                   "instances (Section 4)",
            headers=("instance", "commodities", "strong beta", "weak beta",
                     "coordination gain"))
        consistent = True
        any_gain = False
        splits = {}
        for axis, params, seed, instance in study.spec.instances():
            splits[(axis.label, seed)] = commodity_control_split(instance)
        for seed in seeds:
            split = splits[("3x3 grid", seed)]
            record.add_row(f"3x3 grid (seed {seed})", split.num_commodities,
                           split.strong_beta, split.weak_beta,
                           split.coordination_gain)
            if split.weak_beta < split.strong_beta - 1e-9:
                consistent = False
            if split.coordination_gain > 1e-6:
                any_gain = True
        single = splits[("roughgarden", 0)]
        record.add_row("roughgarden (single commodity)", 1, single.strong_beta,
                       single.weak_beta, single.coordination_gain)
        record.add_claim(
            "The weak Price of Optimum is never below the strong one",
            "weak beta >= strong beta on every instance", consistent)
        record.add_claim(
            "Strong strategies genuinely help on asymmetric instances "
            "(positive coordination gain somewhere)",
            "at least one instance has a positive gain", any_gain)
        record.add_claim(
            "On single-commodity instances weak and strong coincide",
            f"gain = {single.coordination_gain:.2e}",
            abs(single.coordination_gain) < 1e-9)
        return record

    return ExperimentPlan("E13", "Weak vs strong Stackelberg strategies",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E14 — the Price of Optimum as a function of the congestion level
# --------------------------------------------------------------------------- #
def _build_e14(*, num_points: int = 8) -> ExperimentPlan:
    demands = [float(d) for d in np.linspace(0.25, 2.5, int(num_points))]
    axes = [
        GeneratorAxis("pigou", grid={"demand": demands}, label="pigou"),
        GeneratorAxis("figure4", grid={"demand": demands}, label="figure 4"),
    ]
    spec = StudySpec("E14", axes, strategies=("optop",),
                     description="Price of Optimum vs total demand.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E14", "Price of Optimum vs total demand (congestion level)",
            headers=("instance", "demand", "beta", "price of anarchy"))
        consistent = True
        for label in ("pigou", "figure 4"):
            for result in study.select(label=label):
                report = result.report
                demand = result.cell.params_dict["demand"]
                poa = (report.price_of_anarchy
                       if report.price_of_anarchy is not None else 1.0)
                record.add_row(label, demand, report.beta, poa)
                # beta > 0 exactly when the Nash equilibrium is suboptimal.
                gap = report.nash_cost - report.optimum_cost
                if report.beta > 1e-7 and gap <= 1e-9:
                    consistent = False
                if (gap > 1e-5 * max(1.0, report.optimum_cost)
                        and report.beta <= 1e-9):
                    consistent = False
        record.add_claim(
            "beta is positive exactly at demand levels where selfish "
            "routing is suboptimal",
            "holds at every sampled demand", consistent)
        return record

    return ExperimentPlan("E14", "Price of Optimum vs total demand",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# E15 — elastic demand: the realised rate, surplus and beta across curves
# --------------------------------------------------------------------------- #
def _build_e15(*, price_offsets: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
               slope: float = 1.0) -> ExperimentPlan:
    from repro.scenarios import LinearDemandCurve, solve_elastic, wardrop_level

    axes = [
        GeneratorAxis("pigou", label="pigou"),
        GeneratorAxis("figure4", label="figure 4"),
    ]
    spec = StudySpec("E15", axes, strategies=(),
                     description="Elastic demand: realised rate, consumer "
                                 "surplus and beta vs the demand intercept.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E15", "Elastic demand: rate, price, beta and surplus across "
                   "demand-curve intercepts",
            headers=("instance", "intercept", "rate", "price", "beta",
                     "price of anarchy", "surplus"))
        rates_monotone = True
        surplus_ok = True
        for axis, _params, _seed, instance in spec.instances():
            zero = wardrop_level(instance, 0.0)
            prev_rate = 0.0
            prev_surplus = 0.0
            for offset in price_offsets:
                curve = LinearDemandCurve(intercept=zero + float(offset),
                                          slope=float(slope))
                elastic = solve_elastic(instance, curve, "optop",
                                        store=store)
                poa = (elastic.price_of_anarchy
                       if elastic.price_of_anarchy is not None else 1.0)
                record.add_row(axis.label, curve.intercept,
                               elastic.realised_rate, elastic.price,
                               elastic.beta, poa, elastic.consumer_surplus)
                if elastic.realised_rate < prev_rate - 1e-9:
                    rates_monotone = False
                if (elastic.consumer_surplus < -1e-12
                        or elastic.consumer_surplus < prev_surplus - 1e-9):
                    surplus_ok = False
                prev_rate = elastic.realised_rate
                prev_surplus = elastic.consumer_surplus
        record.add_claim(
            "the realised rate is non-decreasing in the demand-curve "
            "intercept (the equilibrium level problem is monotone)",
            "monotone on every instance and intercept step", rates_monotone)
        record.add_claim(
            "consumer surplus is non-negative and non-decreasing in the "
            "intercept",
            "holds on every instance and intercept step", surplus_ok)
        return record

    return ExperimentPlan("E15", "Elastic demand: PoA and beta across "
                          "demand curves", spec, summarize)


# --------------------------------------------------------------------------- #
# E16 — a diurnal demand trace solved step by step through the study pipeline
# --------------------------------------------------------------------------- #
def _build_e16(*, num_steps: int = 24, base: float = 2.0,
               amplitude: float = 1.0) -> ExperimentPlan:
    from repro.scenarios import DemandTrace, TraceAxis

    trace = DemandTrace.from_process(
        "diurnal", {"num_steps": int(num_steps), "base": float(base),
                    "amplitude": float(amplitude)})
    axes = [TraceAxis("figure4", trace=trace, label="figure 4")]
    spec = StudySpec("E16", axes, strategies=("optop",),
                     description="A diurnal demand trace solved step by step "
                                 "(per-step content-addressed artifacts).")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "E16", "Diurnal demand trace: the re-optimised leader share "
                   "per step",
            headers=("step", "demand", "beta", "price of anarchy",
                     "attains optimum"))
        by_demand = {result.cell.params_dict["demand"]: result.report
                     for result in study.select(label="figure 4")}
        all_optimal = True
        for step, level in enumerate(trace.levels):
            report = by_demand[level]
            poa = (report.price_of_anarchy
                   if report.price_of_anarchy is not None else 1.0)
            record.add_row(step, level, report.beta, poa,
                           "yes" if report.attains_optimum else "NO")
            all_optimal = all_optimal and report.attains_optimum
        record.add_claim(
            "re-optimising the leader share restores the system optimum at "
            "every step of the trace",
            f"OpTop attains the optimum at all {len(trace)} steps",
            all_optimal)
        record.add_claim(
            "the quantised diurnal trace revisits demand levels, so "
            "per-step artifacts are shared",
            f"{len(by_demand)} distinct levels cover {len(trace)} steps",
            len(by_demand) < len(trace))
        return record

    return ExperimentPlan("E16", "Diurnal demand trace replay", spec,
                          summarize)


# --------------------------------------------------------------------------- #
# A1 — Ablation: exact path-based solver vs Frank–Wolfe
# --------------------------------------------------------------------------- #
def _build_a1(*, seeds: Sequence[int] = (0, 1, 2),
              fw_tolerance: float = 1e-7) -> ExperimentPlan:
    seeds = tuple(int(s) for s in seeds)
    spec = StudySpec(
        "A1",
        [GeneratorAxis("grid_network", {"rows": 3, "cols": 3, "demand": 2.0},
                       seeds=seeds, label="grid 3x3")],
        strategies=(),
        description="Ablation: path-based solver vs Frank-Wolfe.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "A1", "Ablation: exact path-based solver vs Frank-Wolfe",
            headers=("instance", "kind", "path-based cost", "Frank-Wolfe cost",
                     "relative gap"))
        worst = 0.0
        for _, params, seed, instance in study.spec.instances():
            for kind in ("nash", "optimum"):
                exact = path_based_flow(instance, kind)
                iterative = frank_wolfe(
                    instance, kind,
                    FrankWolfeOptions(tolerance=float(fw_tolerance)))
                gap = relative_gap(iterative.cost, exact.cost)
                worst = max(worst, gap)
                record.add_row(f"grid 3x3 (seed {seed})", kind, exact.cost,
                               iterative.cost, gap)
        record.add_claim(
            "Both solvers compute the same flows/costs "
            "(the choice is an implementation detail)",
            f"worst relative cost gap {worst:.2e}", worst < 1e-4)
        return record

    return ExperimentPlan("A1", "Ablation: path-based vs Frank-Wolfe",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# A2 — Ablation: max-flow free flow vs greedy path decomposition
# --------------------------------------------------------------------------- #
def _greedy_free_flow(instance, result) -> float:
    """Free flow according to a naive greedy decomposition of the optimum.

    Decomposes the optimum into paths and counts as *free* only the flow on
    decomposed paths whose latency equals the shortest-path distance — the
    obvious alternative to the max-flow rule; it depends on the (arbitrary)
    decomposition and can only under-estimate the free flow.
    """
    costs = instance.latencies_at(result.optimum.edge_flows)
    free_total = 0.0
    remaining = result.optimum.edge_flows.copy()
    for commodity in instance.commodities:
        dist, _ = shortest_distances(instance.network, commodity.source, costs)
        target = dist[commodity.sink]
        paths = decompose_flow(instance.network, remaining, commodity.source,
                               commodity.sink)
        shipped = 0.0
        for path, value in paths:
            take = min(value, commodity.demand - shipped)
            if take <= 0.0:
                break
            length = float(sum(costs[idx] for idx in path))
            if length <= target + 1e-6:
                free_total += take
            for idx in path:
                remaining[idx] -= take
            shipped += take
    return free_total


def _build_a2(*, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentPlan:
    seeds = tuple(int(s) for s in seeds)
    axes = [GeneratorAxis("roughgarden", label="roughgarden")]
    axes += [GeneratorAxis("grid_network",
                           {"rows": 3, "cols": 3, "demand": 2.0},
                           seeds=seeds, label="grid 3x3"),
             GeneratorAxis("layered_network",
                           {"num_layers": 3, "width": 3, "demand": 2.0},
                           seeds=seeds, label="layered")]
    spec = StudySpec("A2", axes, strategies=(),
                     description="Ablation: max-flow free flow vs greedy "
                                 "path decomposition.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "A2", "Ablation: max-flow free flow vs greedy path-decomposition",
            headers=("instance", "beta (max-flow)", "beta (greedy)",
                     "induced = optimum"))
        consistent = True
        induced_ok = True
        instances = {(axis.label, seed): instance
                     for axis, _, seed, instance in study.spec.instances()}
        cases = [("roughgarden", instances[("roughgarden", 0)])]
        for seed in seeds:
            cases.append((f"grid 3x3 (seed {seed})",
                          instances[("grid 3x3", seed)]))
            cases.append((f"layered (seed {seed})",
                          instances[("layered", seed)]))
        for name, instance in cases:
            result = mop(instance)
            greedy_free = _greedy_free_flow(instance, result)
            greedy_beta = 1.0 - greedy_free / instance.total_demand
            reaches_optimum = relative_gap(result.induced_cost,
                                           result.optimum_cost) < 1e-5
            record.add_row(name, result.beta, greedy_beta,
                           "yes" if reaches_optimum else "NO")
            if result.beta > greedy_beta + 1e-6:
                consistent = False
            if not reaches_optimum:
                induced_ok = False
        record.add_claim(
            "The max-flow rule never demands more control than the greedy "
            "decomposition rule",
            "beta(max-flow) <= beta(greedy) on every instance", consistent)
        record.add_claim("The max-flow strategy still induces the optimum cost",
                         "holds on every instance", induced_ok)
        return record

    return ExperimentPlan("A2", "Ablation: free-flow rule", spec, summarize)


# --------------------------------------------------------------------------- #
# A3 — Ablation: sensitivity of beta to shortest_path_atol
# --------------------------------------------------------------------------- #
def _build_a3(*, tolerances: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3),
              seeds: Sequence[int] = (0, 1)) -> ExperimentPlan:
    tolerances = tuple(float(tol) for tol in tolerances)
    seeds = tuple(int(s) for s in seeds)
    # Unlike the legacy direct mop(..., compute_induced=False) calls, the
    # uniform strategy protocol always reports the induced equilibrium; the
    # betas the ablation compares are unaffected.
    configs = tuple(SolveConfig(shortest_path_atol=tol, compute_nash=False)
                    for tol in tolerances)
    axes = [GeneratorAxis("roughgarden", label="roughgarden")]
    if seeds:
        axes.append(GeneratorAxis("grid_network",
                                  {"rows": 3, "cols": 3, "demand": 2.0},
                                  seeds=seeds, label="grid 3x3"))
    spec = StudySpec("A3", axes, strategies=("mop",), configs=configs,
                     description="Ablation: sensitivity of beta to "
                                 "shortest_path_atol.")

    def summarize(study: StudyReport,
                  store: Optional[ArtifactStore]) -> ExperimentRecord:
        record = ExperimentRecord(
            "A3", "Ablation: sensitivity of beta to shortest_path_atol",
            headers=("instance",) + tuple(f"atol={tol:g}"
                                          for tol in tolerances))
        stable = True
        cases = [("roughgarden", "roughgarden", 0)]
        for seed in seeds:
            cases.append((f"grid 3x3 (seed {seed})", "grid 3x3", seed))
        for name, label, seed in cases:
            results = study.select(label=label, seed=seed)
            betas = [result.report.beta for result in results]
            record.add_row(name, *betas)
            if max(betas) - min(betas) > 1e-3:
                stable = False
        record.add_claim(
            "beta varies by < 1e-3 across three orders of magnitude of the "
            "tolerance", "holds on every instance", stable)
        return record

    return ExperimentPlan("A3", "Ablation: shortest-path tolerance",
                          spec, summarize)


# --------------------------------------------------------------------------- #
# Registry and entry points
# --------------------------------------------------------------------------- #
#: Builders of every declarative experiment (id -> keyword-taking factory).
EXPERIMENTS: Dict[str, Callable[..., ExperimentPlan]] = {
    "E1": _build_e1,
    "E2": _build_e2,
    "E3": _build_e3,
    "E4": _build_e4,
    "E5": _build_e5,
    "E6": _build_e6,
    "E7": _build_e7,
    "E8": _build_e8,
    "E9": _build_e9,
    "E10": _build_e10,
    "E11": _build_e11,
    "E12": _build_e12,
    "E13": _build_e13,
    "E14": _build_e14,
    "E15": _build_e15,
    "E16": _build_e16,
    "A1": _build_a1,
    "A2": _build_a2,
    "A3": _build_a3,
}

#: Display titles, available without building a plan.
EXPERIMENT_TITLES: Dict[str, str] = {
    "E1": "Pigou example (Figs 1-3)",
    "E2": "Five-link OpTop walk-through (Figs 4-6)",
    "E3": "Roughgarden Example 6.5.1 graph (Fig 7)",
    "E4": "OpTop on random parallel-link families (Cor. 2.2)",
    "E5": "MOP on random networks (Cor. 2.3 / Thm 2.1)",
    "E6": "Optimal restricted strategies (Thm 2.4)",
    "E7": "A-posteriori anarchy cost vs alpha (Expr. (2) bounds)",
    "E8": "Price of Optimum on M/M/1 server farms",
    "E9": "Monotonicity of Nash flows in the demand (Prop. 7.1)",
    "E10": "Useless strategies and frozen links (Thm 7.2 / 7.4)",
    "E11": "Runtime scaling of OpTop and MOP",
    "E12": "Minimum useful control vs the Price of Optimum",
    "E13": "Weak vs strong Stackelberg strategies (Section 4)",
    "E14": "Price of Optimum vs total demand",
    "E15": "Elastic demand: PoA and beta across demand curves",
    "E16": "Diurnal demand trace replay",
    "A1": "Ablation: path-based solver vs Frank-Wolfe",
    "A2": "Ablation: max-flow free flow vs greedy decomposition",
    "A3": "Ablation: sensitivity of beta to shortest_path_atol",
}


def _sort_key(experiment_id: str) -> Tuple[str, int]:
    return (experiment_id[0], int(experiment_id[1:]))


def experiment_ids() -> List[str]:
    """All experiment ids in canonical order (E1..E14, then A1..A3)."""
    ordered = sorted((eid for eid in EXPERIMENTS if eid.startswith("E")),
                     key=_sort_key)
    ordered += sorted((eid for eid in EXPERIMENTS if eid.startswith("A")),
                      key=_sort_key)
    return ordered


def experiment_title(experiment_id: str) -> str:
    """The display title of one experiment id."""
    return EXPERIMENT_TITLES.get(experiment_id, experiment_id)


def build_experiment(experiment_id: str, **kwargs) -> ExperimentPlan:
    """Build the :class:`ExperimentPlan` of ``experiment_id``.

    Keyword arguments parameterise the plan exactly like the legacy
    ``experiment_*`` signatures (e.g. ``build_experiment("E3",
    epsilon=0.02)``).
    """
    try:
        builder = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise ModelError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None
    return builder(**kwargs)


def warn_deprecated_wrapper(name: str, experiment_id: str) -> None:
    """Emit the deprecation warning of a legacy ``experiment_*`` wrapper."""
    import warnings

    warnings.warn(
        f"{name}() is deprecated; use repro.analysis.studies."
        f"run_experiment({experiment_id!r}) (optionally with an "
        f"ArtifactStore for resumable runs)",
        DeprecationWarning, stacklevel=3)


def run_experiment(experiment_id: str, *,
                   store: Optional[ArtifactStore] = None,
                   max_workers: Optional[int] = 0,
                   **kwargs) -> ExperimentRecord:
    """Run one experiment through the study pipeline and summarise it.

    With a ``store``, all solver cells resume from (and land in) the
    content-addressed artifact store, so a re-run performs no solver work.
    """
    return build_experiment(experiment_id, **kwargs).run(
        store=store, max_workers=max_workers)
