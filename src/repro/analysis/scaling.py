"""Empirical runtime scaling of OpTop and MOP (polynomial-time claims).

Both curves are defined as study specs (one axis per instance size) and run
through :func:`repro.study.run_study` with the result cache disabled, so
every repeat is a genuine solver execution; the measured seconds are the
``wall_time`` recorded in each cell's
:class:`~repro.api.report.SolveReport`.  Both accept a
:class:`repro.api.SolveConfig`, so the same harness can contrast kernel
backends (``SolveConfig(kernel_backend="reference")`` against the default
vectorized kernels) — :mod:`scripts.bench_perf` builds its speedup
trajectory this way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.api.config import SolveConfig
from repro.study.runner import run_study
from repro.study.spec import GeneratorAxis, StudySpec

__all__ = ["ScalingPoint", "optop_scaling", "mop_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One measured point of a runtime-scaling curve."""

    size: int
    seconds: float
    beta: float


def _timing_config(config: Optional[SolveConfig], *,
                   compute_nash: bool) -> SolveConfig:
    """The run config for a timing curve: caching off, fresh solves only."""
    base = SolveConfig() if config is None else config
    return replace(base, cache=False, compute_nash=compute_nash)


def _run_curve(spec: StudySpec, sizes: Sequence[int],
               repeats: int) -> List[ScalingPoint]:
    """Execute a scaling spec ``repeats`` times and average the wall times."""
    repeats = max(1, int(repeats))
    runs = [run_study(spec) for _ in range(repeats)]
    points: List[ScalingPoint] = []
    for i, size in enumerate(sizes):
        seconds = sum(run.results[i].report.wall_time
                      for run in runs) / repeats
        points.append(ScalingPoint(size=int(size), seconds=seconds,
                                   beta=runs[-1].results[i].report.beta))
    return points


def optop_scaling(sizes: Sequence[int], *, demand: float = 5.0,
                  seed: int = 0, repeats: int = 1,
                  config: Optional[SolveConfig] = None) -> List[ScalingPoint]:
    """Wall-clock time of OpTop on random linear instances of growing size.

    ``config`` selects solver settings (notably ``kernel_backend``); ``None``
    keeps the defaults, i.e. the vectorized kernel layer.  Caching is
    disabled for the timing run regardless, so repeats measure real solves.
    """
    sizes = [int(m) for m in sizes]
    axes = [GeneratorAxis("random_linear_parallel",
                          {"num_links": m, "demand": float(demand)},
                          seeds=(int(seed) + m,), label=str(m))
            for m in sizes]
    spec = StudySpec(
        "optop-scaling", axes, strategies=("optop",),
        configs=(_timing_config(config, compute_nash=True),),
        description="Runtime of OpTop vs the number of links.")
    return _run_curve(spec, sizes, repeats)


def mop_scaling(grid_sizes: Sequence[int], *, demand: float = 2.0,
                seed: int = 0, repeats: int = 1,
                config: Optional[SolveConfig] = None) -> List[ScalingPoint]:
    """Wall-clock time of MOP on square grid networks of growing size.

    ``grid_sizes`` lists the grid side lengths; the number of edges grows
    quadratically with the side.  ``config`` selects solver settings
    (tolerance, backend, kernel) exactly as in :func:`optop_scaling`.  The
    measured seconds cover the full ``"mop"`` strategy call — including the
    induced equilibrium the uniform report always carries (the legacy curve
    skipped it with ``compute_induced=False``).
    """
    sides = [int(side) for side in grid_sizes]
    axes = [GeneratorAxis("grid_network",
                          {"rows": side, "cols": side,
                           "demand": float(demand)},
                          seeds=(int(seed) + side,), label=str(side))
            for side in sides]
    spec = StudySpec(
        "mop-scaling", axes, strategies=("mop",),
        configs=(_timing_config(config, compute_nash=False),),
        description="Runtime of MOP vs the grid side length.")
    return _run_curve(spec, sides, repeats)
