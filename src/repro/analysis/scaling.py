"""Empirical runtime scaling of OpTop and MOP (polynomial-time claims).

Both curves accept a :class:`repro.api.SolveConfig`, so the same harness can
contrast kernel backends (``SolveConfig(kernel_backend="reference")`` against
the default vectorized kernels) — :mod:`scripts.bench_perf` builds its speedup
trajectory this way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig

from repro.core.mop import mop
from repro.core.optop import optop
from repro.instances.random_parallel import random_linear_parallel
from repro.instances.random_networks import grid_network

__all__ = ["ScalingPoint", "optop_scaling", "mop_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One measured point of a runtime-scaling curve."""

    size: int
    seconds: float
    beta: float


def optop_scaling(sizes: Sequence[int], *, demand: float = 5.0,
                  seed: int = 0, repeats: int = 1,
                  config: "Optional[SolveConfig]" = None) -> List[ScalingPoint]:
    """Wall-clock time of OpTop on random linear instances of growing size.

    ``config`` selects solver settings (notably ``kernel_backend``); ``None``
    keeps the defaults, i.e. the vectorized kernel layer.
    """
    points: List[ScalingPoint] = []
    for m in sizes:
        instance = random_linear_parallel(int(m), demand=demand, seed=seed + int(m))
        start = time.perf_counter()
        for _ in range(max(1, repeats)):
            result = optop(instance, config=config)
        elapsed = (time.perf_counter() - start) / max(1, repeats)
        points.append(ScalingPoint(size=int(m), seconds=elapsed, beta=result.beta))
    return points


def mop_scaling(grid_sizes: Sequence[int], *, demand: float = 2.0,
                seed: int = 0, repeats: int = 1,
                config: "Optional[SolveConfig]" = None) -> List[ScalingPoint]:
    """Wall-clock time of MOP on square grid networks of growing size.

    ``grid_sizes`` lists the grid side lengths; the number of edges grows
    quadratically with the side.  ``config`` selects solver settings
    (tolerance, backend, kernel) exactly as in :func:`optop_scaling`.
    """
    points: List[ScalingPoint] = []
    for side in grid_sizes:
        instance = grid_network(int(side), int(side), demand=demand,
                                seed=seed + int(side))
        start = time.perf_counter()
        for _ in range(max(1, repeats)):
            result = mop(instance, compute_induced=False, config=config)
        elapsed = (time.perf_counter() - start) / max(1, repeats)
        points.append(ScalingPoint(size=int(side), seconds=elapsed,
                                   beta=result.beta))
    return points
