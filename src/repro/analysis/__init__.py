"""Experiment harness: declarative studies, sweeps, statistics, records.

The paper experiments are defined as declarative study plans in
:mod:`repro.analysis.studies` (:func:`run_experiment` is the entry point);
the benchmark modules under ``benchmarks/`` are thin wrappers around them.
:mod:`repro.analysis.experiments` and :mod:`repro.analysis.ablation` keep
the legacy imperative entry points alive as deprecated wrappers.
"""

from repro.analysis.reporting import ExperimentRecord
from repro.analysis.studies import (
    ExperimentPlan,
    build_experiment,
    experiment_ids,
    run_experiment,
)
from repro.analysis.sweep import alpha_sweep, beta_statistics
from repro.analysis.scaling import mop_scaling, optop_scaling
from repro.analysis import ablation, experiments, studies

__all__ = [
    "ExperimentRecord",
    "ExperimentPlan",
    "build_experiment",
    "experiment_ids",
    "run_experiment",
    "alpha_sweep",
    "beta_statistics",
    "optop_scaling",
    "mop_scaling",
    "experiments",
    "ablation",
    "studies",
]
