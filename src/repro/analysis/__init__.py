"""Experiment harness: sweeps, statistics, and the per-figure experiments.

The benchmark modules under ``benchmarks/`` are thin wrappers around the
functions here; keeping the experiment logic inside the library makes it
reusable from the examples and unit-testable on its own.
"""

from repro.analysis.reporting import ExperimentRecord
from repro.analysis.sweep import alpha_sweep, beta_statistics
from repro.analysis.scaling import mop_scaling, optop_scaling
from repro.analysis import ablation, experiments

__all__ = [
    "ExperimentRecord",
    "alpha_sweep",
    "beta_statistics",
    "optop_scaling",
    "mop_scaling",
    "experiments",
    "ablation",
]
