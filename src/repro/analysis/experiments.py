"""Per-figure experiments (E1–E12 of DESIGN.md).

Each function regenerates the rows of one paper artifact (figure, worked
example or theorem claim) and records paper-vs-measured comparisons in an
:class:`~repro.analysis.reporting.ExperimentRecord`.  The benchmark modules
simply run these functions under ``pytest-benchmark`` and assert that every
claim holds; EXPERIMENTS.md is a narrative summary of their output.

The headline experiments (E1–E5) run through the unified :mod:`repro.api`
surface — strategies are dispatched by registry name, instance families go
through :func:`repro.api.solve_many`, and all measured quantities are read
off :class:`~repro.api.report.SolveReport` records.  The structural
experiments (E6 onwards) exercise internals the flat report deliberately
does not expose (thresholds, monotonicity counters, frozen-link theory) and
keep calling those modules directly.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.reporting import ExperimentRecord
from repro.api.config import SolveConfig
from repro.api.session import solve as api_solve
from repro.api.session import solve_many as api_solve_many
from repro.analysis.scaling import mop_scaling, optop_scaling
from repro.analysis.sweep import alpha_sweep, beta_demand_sweep, beta_statistics
from repro.core.commodity_split import commodity_control_split
from repro.baselines.brute_force import brute_force_strategy
from repro.baselines.llf import llf
from repro.baselines.scale import scale
from repro.core.frozen import induced_flow_on_frozen_links, is_useless_strategy
from repro.core.linear_optimal import optimal_restricted_strategy
from repro.core.monotonicity import nash_flow_monotonicity_violation
from repro.core.mop import mop
from repro.core.optop import optop
from repro.core.thresholds import minimum_useful_control
from repro.equilibrium.induced import induced_parallel_equilibrium
from repro.equilibrium.parallel import parallel_nash, parallel_optimum
from repro.equilibrium.network import network_nash
from repro.instances.braess import braess_paradox, roughgarden_example
from repro.instances.canonical import figure_4_example
from repro.instances.mm1_farm import mm1_server_farm
from repro.instances.pigou import pigou
from repro.instances.random_networks import (
    grid_network,
    layered_network,
    random_multicommodity_instance,
)
from repro.instances.random_parallel import (
    random_affine_common_slope,
    random_linear_parallel,
    random_mixed_parallel,
    random_polynomial_parallel,
)
from repro.metrics.anarchy import price_of_anarchy
from repro.utils.numeric import relative_gap

__all__ = [
    "experiment_pigou",
    "experiment_figure4_optop",
    "experiment_roughgarden_mop",
    "experiment_optop_random_families",
    "experiment_mop_networks",
    "experiment_linear_optimal",
    "experiment_bound_sweep",
    "experiment_mm1_beta",
    "experiment_monotonicity",
    "experiment_frozen_links",
    "experiment_scaling",
    "experiment_thresholds",
    "experiment_weak_strong",
    "experiment_beta_vs_demand",
]


# --------------------------------------------------------------------------- #
# E1 — Figures 1–3: Pigou's example
# --------------------------------------------------------------------------- #
def experiment_pigou() -> ExperimentRecord:
    """Reproduce Figures 1–3: Nash, optimum, PoA 4/3, beta = 1/2."""
    report = api_solve(pigou(), "optop")
    nash = report.nash_flows
    optimum = report.optimum_flows
    poa = report.price_of_anarchy

    record = ExperimentRecord(
        "E1", "Pigou example (Figs 1-3): flows, anarchy cost and price of optimum",
        headers=("quantity", "link M1", "link M2", "cost"))
    record.add_row("Nash N", nash[0], nash[1], report.nash_cost)
    record.add_row("Optimum O", optimum[0], optimum[1], report.optimum_cost)
    record.add_row("Leader strategy S", report.leader_flows[0],
                   report.leader_flows[1], "-")
    record.add_row("Induced S+T", report.induced_flows[0],
                   report.induced_flows[1], report.induced_cost)

    record.add_claim("Nash floods the fast link: N = <1, 0>",
                     f"N = <{nash[0]:.6f}, {nash[1]:.6f}>",
                     abs(nash[0] - 1.0) < 1e-9 and abs(nash[1]) < 1e-9)
    record.add_claim("Optimum balances the links: O = <1/2, 1/2>",
                     f"O = <{optimum[0]:.6f}, {optimum[1]:.6f}>",
                     abs(optimum[0] - 0.5) < 1e-9
                     and abs(optimum[1] - 0.5) < 1e-9)
    record.add_claim("Worst-case anarchy cost 4/3", f"{poa:.6f}",
                     abs(poa - 4.0 / 3.0) < 1e-9)
    record.add_claim("Price of Optimum beta = 1/2", f"{report.beta:.6f}",
                     abs(report.beta - 0.5) < 1e-9)
    record.add_claim("Strategy S = <0, 1/2> induces the optimum cost",
                     f"C(S+T) = {report.induced_cost:.6f} vs "
                     f"C(O) = {report.optimum_cost:.6f}",
                     relative_gap(report.induced_cost, report.optimum_cost) < 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E2 — Figures 4–6: the five-link OpTop walk-through
# --------------------------------------------------------------------------- #
def experiment_figure4_optop() -> ExperimentRecord:
    """Reproduce Figures 4–6: OpTop freezes M4, M5 and induces the optimum."""
    instance = figure_4_example()
    report = api_solve(instance, "optop")

    record = ExperimentRecord(
        "E2", "Five-link OpTop walk-through (Figs 4-6)",
        headers=("link", "latency", "nash flow", "optimum flow", "leader flow"))
    descriptions = ("x", "1.5x", "2x", "2.5x + 1/6", "0.7")
    for i in range(instance.num_links):
        record.add_row(instance.names[i], descriptions[i], report.nash_flows[i],
                       report.optimum_flows[i], report.leader_flows[i])

    frozen_rounds = report.metadata["frozen_links"]
    num_rounds = report.metadata["num_rounds"]
    frozen_first_round = tuple(frozen_rounds[0]) if frozen_rounds else ()
    expected_beta = 8.0 / 75.0 + 27.0 / 200.0  # o4 + o5 = 29/120
    record.add_claim("Round 1 freezes exactly the under-loaded links M4, M5",
                     f"frozen links (0-indexed): {frozen_first_round}",
                     frozen_first_round == (3, 4))
    record.add_claim("OpTop terminates after freezing once (Fig. 6)",
                     f"{num_rounds} rounds (last detects no under-loaded link)",
                     num_rounds == 2 and frozen_rounds[1] == [])
    record.add_claim("Price of Optimum beta = o4 + o5 = 29/120",
                     f"beta = {report.beta:.9f} (29/120 = {expected_beta:.9f})",
                     abs(report.beta - expected_beta) < 1e-9)
    record.add_claim("Remaining selfish flow induces the optimum on M1-M3",
                     f"C(S+T) = {report.induced_cost:.9f} vs "
                     f"C(O) = {report.optimum_cost:.9f}",
                     relative_gap(report.induced_cost, report.optimum_cost) < 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E3 — Figure 7: the Roughgarden Example 6.5.1 graph
# --------------------------------------------------------------------------- #
def experiment_roughgarden_mop(epsilon: float = 0.0) -> ExperimentRecord:
    """Reproduce Figure 7: MOP attains the optimum with beta ~ 1/2 + 2 eps."""
    instance = roughgarden_example(epsilon)
    report = api_solve(instance, "mop")
    optimum_flows = report.optimum_flows
    edge_names = ("s->v", "s->w", "v->w", "v->t", "w->t")
    expected = (0.75 - epsilon, 0.25 + epsilon, 0.5 - 2 * epsilon,
                0.25 + epsilon, 0.75 - epsilon)

    record = ExperimentRecord(
        "E3", "Roughgarden Example 6.5.1 graph (Fig 7): MOP and the price of optimum",
        headers=("edge", "paper optimum flow", "measured optimum flow",
                 "leader flow"))
    for i, name in enumerate(edge_names):
        record.add_row(name, expected[i], optimum_flows[i],
                       report.leader_flows[i])

    flows_match = all(abs(optimum_flows[i] - expected[i]) < 1e-5
                      for i in range(5))
    record.add_claim("Optimal edge flows match Fig. 7 (3/4-e, 1/4+e, 1/2-2e, ...)",
                     "max deviation "
                     f"{max(abs(optimum_flows[i] - expected[i]) for i in range(5)):.2e}",
                     flows_match)
    expected_beta = 0.5 + 2 * epsilon
    record.add_claim("Price of Optimum beta_G = 1 - O_P0 / r = 1/2 + 2 eps",
                     f"beta_G = {report.beta:.6f} (expected {expected_beta:.6f})",
                     abs(report.beta - expected_beta) < 1e-4)
    record.add_claim("MOP's strategy induces the optimum cost (guarantee 1 <= 1/alpha)",
                     f"C(S+T) = {report.induced_cost:.9f} vs "
                     f"C(O) = {report.optimum_cost:.9f}",
                     relative_gap(report.induced_cost, report.optimum_cost) < 1e-6)
    nash_cost = report.nash_cost if report.nash_cost is not None else float("nan")
    record.add_claim("Selfish routing alone is strictly worse than the optimum",
                     f"C(N) = {nash_cost:.6f} vs C(O) = {report.optimum_cost:.6f}",
                     nash_cost > report.optimum_cost + 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E4 — Corollary 2.2 on random parallel-link families
# --------------------------------------------------------------------------- #
def experiment_optop_random_families(*, num_instances: int = 5,
                                     num_links: int = 6,
                                     minimality_resolution: int = 12,
                                     ) -> ExperimentRecord:
    """OpTop induces the optimum and its beta is minimal on random families."""
    record = ExperimentRecord(
        "E4", "OpTop on random parallel-link families (Cor. 2.2)",
        headers=("family", "mean beta", "min beta", "max beta", "mean PoA",
                 "optimum induced"))

    families = {
        "linear": [random_linear_parallel(num_links, demand=2.0, seed=s)
                   for s in range(num_instances)],
        "common-slope": [random_affine_common_slope(num_links, demand=2.0, seed=s)
                         for s in range(num_instances)],
        "polynomial": [random_polynomial_parallel(num_links, demand=2.0, seed=s)
                       for s in range(num_instances)],
        "mixed": [random_mixed_parallel(num_links, demand=2.0, seed=s)
                  for s in range(num_instances)],
    }
    all_induce_optimum = True
    for name, family in families.items():
        # One batched registry call per family; beta_statistics then reuses the
        # very same reports through the solve_many result cache.
        reports = api_solve_many(family, "optop")
        induce_ok = all(
            relative_gap(r.induced_cost, r.optimum_cost) <= 1e-6 for r in reports)
        stats, _ = beta_statistics(family)
        all_induce_optimum = all_induce_optimum and induce_ok
        record.add_row(name, stats.mean, stats.minimum, stats.maximum,
                       stats.mean_poa, "yes" if induce_ok else "NO")

    record.add_claim("OpTop's strategy always induces C(O) (a-posteriori ratio 1)",
                     "every random instance reached the optimum cost",
                     all_induce_optimum)

    # Minimality spot-check on a small instance via brute force below beta.
    small = random_linear_parallel(3, demand=1.5, seed=11)
    small_report = api_solve(small, "optop")
    below = max(0.0, small_report.beta - 0.08)
    brute = api_solve(small, "brute_force", config=SolveConfig(
        alpha=below, brute_force_resolution=minimality_resolution,
        compute_nash=False))
    minimality_holds = brute.induced_cost > small_report.optimum_cost * (1.0 + 1e-6)
    record.add_claim("No strategy controlling alpha < beta_M reaches C(O) "
                     "(grid search on a 3-link instance)",
                     f"best grid cost {brute.induced_cost:.6f} > C(O) = "
                     f"{small_report.optimum_cost:.6f}",
                     minimality_holds)
    return record


# --------------------------------------------------------------------------- #
# E5 — Corollary 2.3 / Theorem 2.1 on s–t and k-commodity networks
# --------------------------------------------------------------------------- #
def experiment_mop_networks(*, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentRecord:
    """MOP induces the optimum on random s–t and multicommodity networks."""
    record = ExperimentRecord(
        "E5", "MOP on random networks (Cor. 2.3 / Thm 2.1)",
        headers=("network", "nodes", "edges", "commodities", "beta",
                 "C(O)", "C(S+T)", "relative gap"))

    cases = []
    for seed in seeds:
        cases.append(("grid 3x3", grid_network(3, 3, demand=2.0, seed=seed), None))
        cases.append(("layered 3x3", layered_network(3, 3, demand=2.0, seed=seed), None))
        cases.append(("2-commodity grid",
                      random_multicommodity_instance(3, 3, num_commodities=2,
                                                     seed=seed), None))
    quick = SolveConfig(compute_nash=False)
    worst_gap = 0.0
    for (name, instance, _), report in zip(
            cases, api_solve_many([inst for _, inst, _ in cases], "mop",
                                  config=quick)):
        gap = relative_gap(report.induced_cost, report.optimum_cost)
        worst_gap = max(worst_gap, gap)
        record.add_row(name, instance.network.num_nodes, instance.network.num_edges,
                       instance.num_commodities, report.beta, report.optimum_cost,
                       report.induced_cost, gap)
    record.add_claim("MOP's strategy induces the optimum cost on every network",
                     f"worst relative gap {worst_gap:.2e}", worst_gap < 1e-5)

    braess_report = api_solve(braess_paradox(), "mop", config=quick)
    record.add_claim("On the classic Braess graph the Leader must control everything "
                     "(beta = 1) to enforce the optimum",
                     f"beta = {braess_report.beta:.6f}",
                     abs(braess_report.beta - 1.0) < 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E6 — Theorem 2.4: optimal strategy below beta on common-slope linear links
# --------------------------------------------------------------------------- #
def experiment_linear_optimal(*, num_links: int = 4, demand: float = 2.0,
                              seed: int = 3,
                              brute_resolution: int = 18) -> ExperimentRecord:
    """The Theorem 2.4 strategy matches brute force for alpha < beta_M."""
    instance = random_affine_common_slope(num_links, demand=demand, seed=seed)
    beta = optop(instance).beta
    nash_cost = parallel_nash(instance).cost
    optimum_cost = parallel_optimum(instance).cost

    record = ExperimentRecord(
        "E6", "Optimal restricted strategies on common-slope linear links (Thm 2.4)",
        headers=("alpha / beta", "alpha", "Thm 2.4 cost", "brute-force cost",
                 "C(N)", "C(O)"))
    all_within = True
    all_below_nash = True
    for fraction in (0.25, 0.5, 0.75):
        alpha = fraction * beta
        restricted = optimal_restricted_strategy(instance, alpha)
        brute = brute_force_strategy(instance, alpha, resolution=brute_resolution)
        record.add_row(fraction, alpha, restricted.cost, brute.cost, nash_cost,
                       optimum_cost)
        # The grid strategy can never beat the true optimum by more than the
        # grid resolution allows; conversely Theorem 2.4 must not lose to it.
        if restricted.cost > brute.cost * (1.0 + 1e-6):
            all_within = False
        if restricted.cost > nash_cost * (1.0 + 1e-9):
            all_below_nash = False
    record.add_claim("Theorem 2.4 strategy is never worse than exhaustive grid search",
                     "holds at alpha/beta in {0.25, 0.5, 0.75}", all_within)
    record.add_claim("Controlling flow never hurts: cost <= C(N)",
                     "holds at every alpha", all_below_nash)

    full = optimal_restricted_strategy(instance, beta)
    record.add_claim("At alpha = beta_M the optimal strategy recovers C(O)",
                     f"cost {full.cost:.9f} vs C(O) {optimum_cost:.9f}",
                     relative_gap(full.cost, optimum_cost) < 1e-6)
    return record


# --------------------------------------------------------------------------- #
# E7 — Expression (2) bounds: LLF / SCALE over an alpha sweep
# --------------------------------------------------------------------------- #
def experiment_bound_sweep(*, num_links: int = 6, demand: float = 3.0,
                           seed: int = 7,
                           alphas: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
                           ) -> ExperimentRecord:
    """LLF respects the 1/alpha and 4/(3+alpha) guarantees; comparison table."""
    instance = random_linear_parallel(num_links, demand=demand, seed=seed)
    rows = alpha_sweep(instance, alphas, strategies=("llf", "scale"))
    record = ExperimentRecord(
        "E7", "A-posteriori anarchy cost vs alpha (Expr. (2) bounds)",
        headers=("alpha", "LLF ratio", "SCALE ratio", "1/alpha bound",
                 "4/(3+alpha) bound"))
    general_ok = True
    linear_ok = True
    for row in rows:
        general_bound = math.inf if row.alpha == 0.0 else 1.0 / row.alpha
        linear_bound = 4.0 / (3.0 + row.alpha)
        record.add_row(row.alpha, row.ratios["llf"], row.ratios["scale"],
                       general_bound, linear_bound)
        if row.ratios["llf"] > general_bound * (1.0 + 1e-9):
            general_ok = False
        if row.ratios["llf"] > linear_bound * (1.0 + 1e-9):
            linear_ok = False
    record.add_claim("LLF ratio <= 1/alpha (arbitrary latencies, Thm 6.4.4)",
                     "holds on the sweep", general_ok)
    record.add_claim("LLF ratio <= 4/(3+alpha) (linear latencies, Thm 6.4.5)",
                     "holds on the sweep", linear_ok)

    result = optop(instance)
    alpha_above = min(1.0, result.beta)
    llf_at_beta = llf(instance, alpha_above).induce(instance).cost
    record.add_claim("For alpha >= beta_M the factor is exactly 1 via OpTop's strategy",
                     f"OpTop induced/optimum = "
                     f"{result.induced_cost / result.optimum_cost:.9f}",
                     relative_gap(result.induced_cost, result.optimum_cost) < 1e-6)
    record.add_claim("LLF is not always optimal (footnote 6 of [37]): at alpha = "
                     "beta_M it may exceed C(O) or merely match it",
                     f"LLF cost {llf_at_beta:.6f} vs C(O) {result.optimum_cost:.6f}",
                     llf_at_beta >= result.optimum_cost - 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E8 — M/M/1 systems: beta can be small (remark after Cor. 2.2)
# --------------------------------------------------------------------------- #
def experiment_mm1_beta() -> ExperimentRecord:
    """Beta shrinks for appealing-fast-group and identical-link M/M/1 farms."""
    record = ExperimentRecord(
        "E8", "Price of Optimum on M/M/1 server farms (remark after Cor. 2.2)",
        headers=("farm", "num links", "beta", "PoA"))

    heterogeneous = mm1_server_farm(2, 6, fast_capacity=4.0, slow_capacity=2.0,
                                    utilisation=0.6)
    appealing = mm1_server_farm(2, 6, fast_capacity=20.0, slow_capacity=2.0,
                                utilisation=0.6)
    identical = mm1_server_farm(0, 8, slow_capacity=3.0, utilisation=0.6)

    results = {}
    for name, farm in (("moderate fast group", heterogeneous),
                       ("highly appealing fast group", appealing),
                       ("identical links", identical)):
        result = optop(farm)
        poa = price_of_anarchy(farm)
        results[name] = result.beta
        record.add_row(name, farm.num_links, result.beta, poa)

    record.add_claim("Highly appealing fast links shrink beta versus a moderate farm",
                     f"{results['highly appealing fast group']:.4f} < "
                     f"{results['moderate fast group']:.4f}",
                     results["highly appealing fast group"]
                     < results["moderate fast group"])
    record.add_claim("A farm of identical links needs no control at all (beta = 0)",
                     f"beta = {results['identical links']:.6f}",
                     results["identical links"] < 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E9 — Proposition 7.1: Nash flows are monotone in the demand
# --------------------------------------------------------------------------- #
def experiment_monotonicity(*, num_links: int = 6, seed: int = 5,
                            num_demands: int = 12) -> ExperimentRecord:
    """Nash link flows never decrease when the total demand grows."""
    record = ExperimentRecord(
        "E9", "Monotonicity of Nash flows in the demand (Prop. 7.1)",
        headers=("family", "largest observed decrease"))
    demands = np.linspace(0.1, 4.0, num_demands)
    worst_overall = 0.0
    for name, instance in (
            ("linear", random_linear_parallel(num_links, demand=1.0, seed=seed)),
            ("polynomial", random_polynomial_parallel(num_links, demand=1.0, seed=seed)),
            ("mixed", random_mixed_parallel(num_links, demand=1.0, seed=seed))):
        violation = nash_flow_monotonicity_violation(instance, demands)
        worst_overall = max(worst_overall, violation)
        record.add_row(name, violation)
    record.add_claim("No link's Nash flow decreases as r grows",
                     f"largest decrease {worst_overall:.2e}", worst_overall < 1e-6)
    return record


# --------------------------------------------------------------------------- #
# E10 — Theorems 7.2 / 7.4 / Lemma 7.5: useless strategies and frozen links
# --------------------------------------------------------------------------- #
def experiment_frozen_links(*, num_links: int = 5, seed: int = 9,
                            trials: int = 6) -> ExperimentRecord:
    """Useless strategies recreate N; frozen links get no induced flow."""
    rng = np.random.default_rng(seed)
    instance = random_linear_parallel(num_links, demand=2.0, seed=seed)
    nash = parallel_nash(instance)

    record = ExperimentRecord(
        "E10", "Useless strategies and frozen links (Thm 7.2, Thm 7.4, Lemma 7.5)",
        headers=("trial", "strategy kind", "|C(S+T) - C(N)|",
                 "max induced flow on frozen links"))

    useless_ok = True
    frozen_ok = True
    for trial in range(trials):
        # A useless strategy: a random sub-Nash assignment (s_i <= n_i).
        useless = nash.flows * rng.uniform(0.0, 1.0, size=num_links)
        assert is_useless_strategy(instance, useless)
        outcome = induced_parallel_equilibrium(instance, useless)
        nash_gap = abs(outcome.cost - nash.cost)
        if nash_gap > 1e-6 * max(1.0, nash.cost):
            useless_ok = False
        record.add_row(trial, "useless (s_i <= n_i)", nash_gap, 0.0)

        # A freezing strategy: overload a random subset of links beyond n_i.
        mask = rng.uniform(size=num_links) < 0.5
        freezing = np.where(mask, nash.flows * rng.uniform(1.0, 1.3, size=num_links),
                            0.0)
        total = float(freezing.sum())
        if total > instance.demand:
            freezing *= instance.demand / (total * (1.0 + 1e-9))
        leak = induced_flow_on_frozen_links(instance, freezing)
        if leak > 1e-6:
            frozen_ok = False
        record.add_row(trial, "freezing (s_i >= n_i or 0)", 0.0, leak)

    record.add_claim("Every useless strategy induces S+T identical to N (Thm 7.2)",
                     "cost differences below 1e-6", useless_ok)
    record.add_claim("Frozen links receive no induced selfish flow (Thm 7.4 / L. 7.5)",
                     "max leak below 1e-6", frozen_ok)
    return record


# --------------------------------------------------------------------------- #
# E11 — Polynomial-time claims: runtime scaling
# --------------------------------------------------------------------------- #
def experiment_scaling(*, optop_sizes: Sequence[int] = (8, 16, 32, 64),
                       mop_sides: Sequence[int] = (3, 4, 5)) -> ExperimentRecord:
    """Wall-clock scaling of OpTop (in m) and MOP (in grid side)."""
    record = ExperimentRecord(
        "E11", "Runtime scaling of OpTop and MOP (polynomial-time claims)",
        headers=("algorithm", "size", "seconds", "beta"))
    for point in optop_scaling(optop_sizes):
        record.add_row("OpTop (m links)", point.size, point.seconds, point.beta)
    for point in mop_scaling(mop_sides):
        record.add_row("MOP (side x side grid)", point.size, point.seconds,
                       point.beta)
    record.add_claim("Both algorithms complete in well under a second per instance "
                     "at these sizes", "see table",
                     all(row[2] < 10.0 for row in record.rows))
    return record


# --------------------------------------------------------------------------- #
# E12 — Footnote 6 / Sharma–Williamson threshold
# --------------------------------------------------------------------------- #
def experiment_thresholds(*, num_links: int = 5,
                          seeds: Sequence[int] = (1, 2, 3, 4)) -> ExperimentRecord:
    """The minimum useful control never exceeds the Price of Optimum."""
    record = ExperimentRecord(
        "E12", "Minimum useful control vs the Price of Optimum (footnote 6)",
        headers=("seed", "threshold flow", "threshold fraction", "beta",
                 "improvable"))
    consistent = True
    for seed in seeds:
        instance = random_linear_parallel(num_links, demand=2.0, seed=seed)
        threshold = minimum_useful_control(instance)
        beta = optop(instance).beta
        record.add_row(seed, threshold.flow, threshold.fraction, beta,
                       threshold.is_improvable)
        if threshold.fraction > beta + 1e-9:
            consistent = False
    record.add_claim("threshold fraction <= beta_M on every instance",
                     "holds for all seeds", consistent)

    pigou_threshold = minimum_useful_control(pigou())
    record.add_claim("On Pigou the threshold is 0: any positive control helps",
                     f"threshold = {pigou_threshold.flow:.6f}",
                     pigou_threshold.flow < 1e-12 and pigou_threshold.is_improvable)
    return record


# --------------------------------------------------------------------------- #
# E13 — Section 4: weak vs strong Stackelberg strategies on k commodities
# --------------------------------------------------------------------------- #
def experiment_weak_strong(*, seeds: Sequence[int] = (0, 1, 2, 3)) -> ExperimentRecord:
    """Strong (per-commodity) control never needs more flow than weak control."""
    record = ExperimentRecord(
        "E13", "Weak vs strong Stackelberg strategies on k-commodity instances "
               "(Section 4)",
        headers=("instance", "commodities", "strong beta", "weak beta",
                 "coordination gain"))
    consistent = True
    any_gain = False
    for seed in seeds:
        instance = random_multicommodity_instance(3, 3, num_commodities=3, seed=seed)
        split = commodity_control_split(instance)
        record.add_row(f"3x3 grid (seed {seed})", split.num_commodities,
                       split.strong_beta, split.weak_beta,
                       split.coordination_gain)
        if split.weak_beta < split.strong_beta - 1e-9:
            consistent = False
        if split.coordination_gain > 1e-6:
            any_gain = True
    single = commodity_control_split(roughgarden_example())
    record.add_row("roughgarden (single commodity)", 1, single.strong_beta,
                   single.weak_beta, single.coordination_gain)
    record.add_claim("The weak Price of Optimum is never below the strong one",
                     "weak beta >= strong beta on every instance", consistent)
    record.add_claim("Strong strategies genuinely help on asymmetric instances "
                     "(positive coordination gain somewhere)",
                     "at least one instance has a positive gain", any_gain)
    record.add_claim("On single-commodity instances weak and strong coincide",
                     f"gain = {single.coordination_gain:.2e}",
                     abs(single.coordination_gain) < 1e-9)
    return record


# --------------------------------------------------------------------------- #
# E14 — the Price of Optimum as a function of the congestion level
# --------------------------------------------------------------------------- #
def experiment_beta_vs_demand(*, num_points: int = 8) -> ExperimentRecord:
    """beta and the anarchy gap across demand levels on the canonical instances."""
    record = ExperimentRecord(
        "E14", "Price of Optimum vs total demand (congestion level)",
        headers=("instance", "demand", "beta", "price of anarchy"))
    consistent = True
    for name, instance in (("pigou", pigou()), ("figure 4", figure_4_example())):
        demands = np.linspace(0.25, 2.5, num_points)
        for point in beta_demand_sweep(instance, demands):
            record.add_row(name, point.demand, point.beta, point.price_of_anarchy)
            # beta > 0 exactly when the Nash equilibrium is suboptimal.
            gap = point.nash_cost - point.optimum_cost
            if point.beta > 1e-7 and gap <= 1e-9:
                consistent = False
            if gap > 1e-5 * max(1.0, point.optimum_cost) and point.beta <= 1e-9:
                consistent = False
    record.add_claim("beta is positive exactly at demand levels where selfish "
                     "routing is suboptimal",
                     "holds at every sampled demand", consistent)
    return record
