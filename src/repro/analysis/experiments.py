"""Per-figure experiments (E1–E14): deprecated wrappers over the Study API.

.. deprecated::
    Every ``experiment_*`` function below is a thin back-compat wrapper over
    the declarative study pipeline — the experiments themselves are defined
    as :class:`~repro.analysis.studies.ExperimentPlan` values (a
    :class:`~repro.study.spec.StudySpec` plus a summariser) in
    :mod:`repro.analysis.studies`.  New code should call
    :func:`repro.analysis.studies.run_experiment` directly, which
    additionally accepts an :class:`~repro.study.store.ArtifactStore` for
    resumable runs::

        from repro.analysis.studies import run_experiment
        record = run_experiment("E3", epsilon=0.02)

    The wrappers emit :class:`DeprecationWarning` and produce records that
    are numerically equivalent (1e-9) to the historical imperative
    implementations; the equivalence suite in
    ``tests/study/test_experiment_equivalence.py`` pins this.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import ExperimentRecord
from repro.analysis.studies import run_experiment
from repro.analysis.studies import warn_deprecated_wrapper as _deprecated

__all__ = [
    "experiment_pigou",
    "experiment_figure4_optop",
    "experiment_roughgarden_mop",
    "experiment_optop_random_families",
    "experiment_mop_networks",
    "experiment_linear_optimal",
    "experiment_bound_sweep",
    "experiment_mm1_beta",
    "experiment_monotonicity",
    "experiment_frozen_links",
    "experiment_scaling",
    "experiment_thresholds",
    "experiment_weak_strong",
    "experiment_beta_vs_demand",
]


def experiment_pigou() -> ExperimentRecord:
    """Reproduce Figures 1–3: Nash, optimum, PoA 4/3, beta = 1/2.

    .. deprecated:: use ``run_experiment("E1")``.
    """
    _deprecated("experiment_pigou", "E1")
    return run_experiment("E1")


def experiment_figure4_optop() -> ExperimentRecord:
    """Reproduce Figures 4–6: OpTop freezes M4, M5 and induces the optimum.

    .. deprecated:: use ``run_experiment("E2")``.
    """
    _deprecated("experiment_figure4_optop", "E2")
    return run_experiment("E2")


def experiment_roughgarden_mop(epsilon: float = 0.0) -> ExperimentRecord:
    """Reproduce Figure 7: MOP attains the optimum with beta ~ 1/2 + 2 eps.

    .. deprecated:: use ``run_experiment("E3", epsilon=...)``.
    """
    _deprecated("experiment_roughgarden_mop", "E3")
    return run_experiment("E3", epsilon=epsilon)


def experiment_optop_random_families(*, num_instances: int = 5,
                                     num_links: int = 6,
                                     minimality_resolution: int = 12,
                                     ) -> ExperimentRecord:
    """OpTop induces the optimum and its beta is minimal on random families.

    .. deprecated:: use ``run_experiment("E4", ...)``.
    """
    _deprecated("experiment_optop_random_families", "E4")
    return run_experiment("E4", num_instances=num_instances,
                          num_links=num_links,
                          minimality_resolution=minimality_resolution)


def experiment_mop_networks(*, seeds: Sequence[int] = (0, 1, 2),
                            ) -> ExperimentRecord:
    """MOP induces the optimum on random s–t and multicommodity networks.

    .. deprecated:: use ``run_experiment("E5", seeds=...)``.
    """
    _deprecated("experiment_mop_networks", "E5")
    return run_experiment("E5", seeds=seeds)


def experiment_linear_optimal(*, num_links: int = 4, demand: float = 2.0,
                              seed: int = 3,
                              brute_resolution: int = 18) -> ExperimentRecord:
    """The Theorem 2.4 strategy matches brute force for alpha < beta_M.

    .. deprecated:: use ``run_experiment("E6", ...)``.
    """
    _deprecated("experiment_linear_optimal", "E6")
    return run_experiment("E6", num_links=num_links, demand=demand, seed=seed,
                          brute_resolution=brute_resolution)


def experiment_bound_sweep(*, num_links: int = 6, demand: float = 3.0,
                           seed: int = 7,
                           alphas: Sequence[float] = (0.1, 0.2, 0.4, 0.6,
                                                      0.8, 1.0),
                           ) -> ExperimentRecord:
    """LLF respects the 1/alpha and 4/(3+alpha) guarantees; comparison table.

    .. deprecated:: use ``run_experiment("E7", ...)``.
    """
    _deprecated("experiment_bound_sweep", "E7")
    return run_experiment("E7", num_links=num_links, demand=demand, seed=seed,
                          alphas=alphas)


def experiment_mm1_beta() -> ExperimentRecord:
    """Beta shrinks for appealing-fast-group and identical-link M/M/1 farms.

    .. deprecated:: use ``run_experiment("E8")``.
    """
    _deprecated("experiment_mm1_beta", "E8")
    return run_experiment("E8")


def experiment_monotonicity(*, num_links: int = 6, seed: int = 5,
                            num_demands: int = 12) -> ExperimentRecord:
    """Nash link flows never decrease when the total demand grows.

    .. deprecated:: use ``run_experiment("E9", ...)``.
    """
    _deprecated("experiment_monotonicity", "E9")
    return run_experiment("E9", num_links=num_links, seed=seed,
                          num_demands=num_demands)


def experiment_frozen_links(*, num_links: int = 5, seed: int = 9,
                            trials: int = 6) -> ExperimentRecord:
    """Useless strategies recreate N; frozen links get no induced flow.

    .. deprecated:: use ``run_experiment("E10", ...)``.
    """
    _deprecated("experiment_frozen_links", "E10")
    return run_experiment("E10", num_links=num_links, seed=seed, trials=trials)


def experiment_scaling(*, optop_sizes: Sequence[int] = (8, 16, 32, 64),
                       mop_sides: Sequence[int] = (3, 4, 5),
                       ) -> ExperimentRecord:
    """Wall-clock scaling of OpTop (in m) and MOP (in grid side).

    .. deprecated:: use ``run_experiment("E11", ...)``.
    """
    _deprecated("experiment_scaling", "E11")
    return run_experiment("E11", optop_sizes=optop_sizes, mop_sides=mop_sides)


def experiment_thresholds(*, num_links: int = 5,
                          seeds: Sequence[int] = (1, 2, 3, 4),
                          ) -> ExperimentRecord:
    """The minimum useful control never exceeds the Price of Optimum.

    .. deprecated:: use ``run_experiment("E12", ...)``.
    """
    _deprecated("experiment_thresholds", "E12")
    return run_experiment("E12", num_links=num_links, seeds=seeds)


def experiment_weak_strong(*, seeds: Sequence[int] = (0, 1, 2, 3),
                           ) -> ExperimentRecord:
    """Strong (per-commodity) control never needs more flow than weak control.

    .. deprecated:: use ``run_experiment("E13", seeds=...)``.
    """
    _deprecated("experiment_weak_strong", "E13")
    return run_experiment("E13", seeds=seeds)


def experiment_beta_vs_demand(*, num_points: int = 8) -> ExperimentRecord:
    """beta and the anarchy gap across demand levels on canonical instances.

    .. deprecated:: use ``run_experiment("E14", num_points=...)``.
    """
    _deprecated("experiment_beta_vs_demand", "E14")
    return run_experiment("E14", num_points=num_points)
