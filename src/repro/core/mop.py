"""Algorithm MOP: the Price of Optimum on arbitrary networks (Cor. 2.3 / Thm 2.1).

MOP generalises OpTop to single and multi commodity networks:

1. compute the optimum flow ``O`` and fix the edge costs ``l_e(o_e)``;
2. per commodity, compute the subgraph of edges lying on shortest
   ``s_i -> t_i`` paths with respect to those costs (footnote 5);
3. the *free* (uncontrolled) flow of the commodity is the largest amount of
   ``O`` routable entirely inside that subgraph (a max-flow with capacities
   ``o_e``); everything else — the optimum flow on non-shortest paths — must
   be controlled by the Leader (Section 5.1);
4. the Leader's strategy is ``s_e = o_e - (free routing)_e`` and the Price of
   Optimum is ``beta_G = (r - free flow) / r``.

The induced equilibrium of the Followers then completes ``S`` exactly to the
optimum: inside the shortest-path subgraph every path has the common latency
``dist(s_i, t_i)`` and no alternative path is shorter, so the free routing is
a Wardrop equilibrium of the shifted instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig

from repro.network.instance import NetworkInstance
from repro.paths.dijkstra import shortest_path_edge_set
from repro.paths.maxflow import max_flow
from repro.equilibrium.network import network_optimum, network_nash
from repro.equilibrium.result import NetworkFlowResult, StackelbergOutcome
from repro.core.strategy import NetworkStackelbergStrategy

__all__ = ["MOPResult", "mop"]


@dataclass(frozen=True)
class MOPResult:
    """Result of :func:`mop`.

    ``beta`` is the Price of Optimum of the network instance; ``strategy`` the
    Leader's optimal strategy (edge flows plus controlled demand per
    commodity); ``shortest_edge_sets`` the per-commodity shortest-path
    subgraphs under optimal latencies; ``free_flows`` the uncontrolled demand
    per commodity; ``outcome`` the induced Stackelberg equilibrium (``None``
    when ``compute_induced=False``).
    """

    instance: NetworkInstance
    beta: float
    strategy: NetworkStackelbergStrategy
    optimum: NetworkFlowResult
    nash: Optional[NetworkFlowResult]
    shortest_edge_sets: Tuple[frozenset, ...]
    free_flows: Tuple[float, ...]
    outcome: Optional[StackelbergOutcome]

    @property
    def controlled_flow(self) -> float:
        """Total flow the Leader controls (``beta * r``)."""
        return self.strategy.controlled_flow

    @property
    def optimum_cost(self) -> float:
        return self.optimum.cost

    @property
    def induced_cost(self) -> float:
        if self.outcome is None:
            raise ValueError("induced equilibrium was not computed")
        return self.outcome.cost


def mop(instance: NetworkInstance, *, solver: Optional[str] = None,
        tolerance: Optional[float] = None,
        shortest_path_atol: Optional[float] = None,
        compute_induced: bool = True, compute_nash: bool = False,
        config: "SolveConfig | None" = None) -> MOPResult:
    """Run algorithm MOP on a network instance.

    Parameters
    ----------
    instance:
        Single- or multi-commodity routing instance ``(G, r)``.
    solver:
        Flow solver selection (``"auto"``, ``"path"`` or ``"frank-wolfe"``),
        forwarded to :func:`repro.equilibrium.network_optimum`.  Defaults to
        ``"auto"``.
    tolerance:
        Convergence tolerance of the flow solvers.  Defaults to 1e-9.
    shortest_path_atol:
        Slack used when classifying an edge as lying on a shortest path; it
        absorbs the numerical error of the optimum flow (the default 1e-5 is
        comfortably above the path-based/Frank-Wolfe flow accuracy while far
        below any genuine latency difference in the benchmark instances).
    compute_induced:
        Whether to also compute the induced Stackelberg equilibrium (costs a
        Nash solve on the shifted network).
    compute_nash:
        Whether to also compute the uncontrolled Nash equilibrium of the
        instance (used by reporting code to show the anarchy gap MOP closes).
    config:
        A :class:`repro.api.SolveConfig` supplying the solver backend,
        tolerance and ``shortest_path_atol``; explicit keywords take
        precedence.
    """
    if config is not None:
        solver = config.network_solver() if solver is None else solver
        tolerance = config.tolerance if tolerance is None else tolerance
        shortest_path_atol = (config.shortest_path_atol
                              if shortest_path_atol is None
                              else shortest_path_atol)
    solver = "auto" if solver is None else solver
    tolerance = 1e-9 if tolerance is None else tolerance
    shortest_path_atol = 1e-5 if shortest_path_atol is None else shortest_path_atol
    optimum = network_optimum(instance, solver=solver, tolerance=tolerance)
    opt_flows = optimum.edge_flows
    costs = instance.latencies_at(opt_flows)

    remaining_capacity = opt_flows.copy()
    free_routing = np.zeros_like(opt_flows)
    shortest_sets = []
    free_flows = []
    for commodity in instance.commodities:
        edge_set = shortest_path_edge_set(
            instance.network, commodity.source, commodity.sink, costs,
            atol=shortest_path_atol)
        shortest_sets.append(frozenset(edge_set))
        value, routing = max_flow(instance.network, commodity.source,
                                  commodity.sink, remaining_capacity,
                                  allowed_edges=edge_set)
        free = min(commodity.demand, value)
        if value > commodity.demand and value > 0.0:
            routing = routing * (commodity.demand / value)
        remaining_capacity = np.clip(remaining_capacity - routing, 0.0, None)
        free_routing += routing
        free_flows.append(float(free))

    strategy_flows = np.clip(opt_flows - free_routing, 0.0, None)
    controlled = tuple(max(0.0, com.demand - free)
                       for com, free in zip(instance.commodities, free_flows))
    strategy = NetworkStackelbergStrategy(
        edge_flows=strategy_flows,
        controlled_demands=controlled,
        total_demand=instance.total_demand,
    )
    beta = strategy.controlled_flow / instance.total_demand

    outcome = None
    if compute_induced:
        outcome = strategy.induce(instance, solver=solver, tolerance=tolerance)
    nash = None
    if compute_nash:
        nash = network_nash(instance, solver=solver, tolerance=tolerance)

    return MOPResult(
        instance=instance,
        beta=float(beta),
        strategy=strategy,
        optimum=optimum,
        nash=nash,
        shortest_edge_sets=tuple(shortest_sets),
        free_flows=tuple(free_flows),
        outcome=outcome,
    )
