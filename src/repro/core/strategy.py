"""Stackelberg strategy objects.

A strategy records *what the Leader routes where*.  Two flavours mirror the
two instance families: per-link flows on parallel links, per-edge flows (plus
per-commodity controlled amounts) on networks.  Both know how to compute the
equilibrium they induce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import StrategyError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.induced import (
    induced_network_equilibrium,
    induced_parallel_equilibrium,
)
from repro.equilibrium.result import StackelbergOutcome

__all__ = ["ParallelStackelbergStrategy", "NetworkStackelbergStrategy"]


@dataclass(frozen=True)
class ParallelStackelbergStrategy:
    """A Leader assignment ``S = <s_1, ..., s_m>`` on parallel links.

    Attributes
    ----------
    flows:
        Per-link Leader flows (non-negative).
    total_demand:
        The instance demand ``r``; together with ``flows`` it determines the
        controlled portion ``alpha``.
    """

    flows: np.ndarray
    total_demand: float

    def __post_init__(self) -> None:
        flows = np.asarray(self.flows, dtype=float)
        if np.any(flows < -1e-12):
            raise StrategyError("strategy flows must be non-negative")
        if self.total_demand <= 0.0:
            raise StrategyError(
                f"total demand must be > 0, got {self.total_demand!r}")
        if float(flows.sum()) > self.total_demand * (1.0 + 1e-9) + 1e-12:
            raise StrategyError(
                f"strategy routes {float(flows.sum())!r} > demand {self.total_demand!r}")
        object.__setattr__(self, "flows", np.clip(flows, 0.0, None))

    @property
    def controlled_flow(self) -> float:
        """Total flow routed by the Leader."""
        return float(self.flows.sum())

    @property
    def alpha(self) -> float:
        """Fraction of the total demand controlled by the Leader."""
        return self.controlled_flow / self.total_demand

    @property
    def num_links(self) -> int:
        return int(self.flows.shape[0])

    def induce(self, instance: ParallelLinkInstance, *, tol: float = 1e-12,
               backend: str = "auto") -> StackelbergOutcome:
        """Compute the equilibrium the Followers reach against this strategy."""
        if instance.num_links != self.num_links:
            raise StrategyError(
                f"strategy has {self.num_links} links but the instance has "
                f"{instance.num_links}")
        return induced_parallel_equilibrium(instance, self.flows, tol=tol,
                                            backend=backend)


@dataclass(frozen=True)
class NetworkStackelbergStrategy:
    """A Leader assignment on a network instance.

    Attributes
    ----------
    edge_flows:
        The Leader's edge-flow vector (a feasible routing of the controlled
        demand of every commodity).
    controlled_demands:
        Amount of each commodity's demand routed by the Leader.
    total_demand:
        Total instance demand ``r``.
    """

    edge_flows: np.ndarray
    controlled_demands: Tuple[float, ...]
    total_demand: float

    def __post_init__(self) -> None:
        flows = np.asarray(self.edge_flows, dtype=float)
        if np.any(flows < -1e-9):
            raise StrategyError("strategy edge flows must be non-negative")
        controlled = tuple(float(c) for c in self.controlled_demands)
        if any(c < -1e-9 for c in controlled):
            raise StrategyError("controlled demands must be non-negative")
        if self.total_demand <= 0.0:
            raise StrategyError(
                f"total demand must be > 0, got {self.total_demand!r}")
        object.__setattr__(self, "edge_flows", np.clip(flows, 0.0, None))
        object.__setattr__(self, "controlled_demands",
                           tuple(max(0.0, c) for c in controlled))

    @property
    def controlled_flow(self) -> float:
        """Total flow routed by the Leader across all commodities."""
        return float(sum(self.controlled_demands))

    @property
    def alpha(self) -> float:
        """Fraction of the total demand controlled by the Leader."""
        return self.controlled_flow / self.total_demand

    def remaining_demands(self, instance: NetworkInstance) -> Tuple[float, ...]:
        """Uncontrolled demand per commodity."""
        if len(self.controlled_demands) != instance.num_commodities:
            raise StrategyError(
                f"strategy has {len(self.controlled_demands)} commodities but the "
                f"instance has {instance.num_commodities}")
        return tuple(max(0.0, com.demand - c)
                     for com, c in zip(instance.commodities, self.controlled_demands))

    def induce(self, instance: NetworkInstance, *, solver: str = "auto",
               tolerance: float = 1e-9) -> StackelbergOutcome:
        """Compute the equilibrium the Followers reach against this strategy."""
        return induced_network_equilibrium(
            instance, self.edge_flows, self.remaining_demands(instance),
            solver=solver, tolerance=tolerance)
