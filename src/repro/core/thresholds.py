"""Minimum useful control: footnote 6 and the Sharma–Williamson threshold.

Theorem 7.2 says a strategy that nowhere exceeds the Nash load is useless.
Footnote 6 (quoting Sharma & Williamson, EC 2007, Eq. (1)) sharpens this on
parallel links: any strategy that *improves* on ``C(N)`` must control at least

    ``min { n_i : n_i < o_i }``

i.e. the smallest Nash load among under-loaded links.  This module computes
that threshold, both as an absolute flow and as a fraction of the demand, so
the benchmarks can compare it against the Price of Optimum ``beta_M``
(threshold <= beta_M, with equality only in degenerate cases).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_nash, parallel_optimum
from repro.core.frozen import classify_links

__all__ = ["UsefulControlThreshold", "minimum_useful_control"]


@dataclass(frozen=True)
class UsefulControlThreshold:
    """Result of :func:`minimum_useful_control`.

    ``flow`` is the minimum amount of flow a useful (cost-improving) strategy
    must control; ``fraction`` expresses it as a share of the total demand.
    ``is_improvable`` is ``False`` when the Nash equilibrium already attains
    the optimum cost (no under-loaded link exists), in which case the
    threshold is reported as zero.
    """

    flow: float
    fraction: float
    is_improvable: bool


def minimum_useful_control(instance: ParallelLinkInstance, *,
                           atol: float = 1e-8) -> UsefulControlThreshold:
    """Minimum controlled flow needed for any strategy to beat ``C(N)``."""
    nash = parallel_nash(instance)
    optimum = parallel_optimum(instance)
    classification = classify_links(
        instance, nash_flows=nash.flows, optimum_flows=optimum.flows, atol=atol)
    if not classification.under_loaded:
        return UsefulControlThreshold(flow=0.0, fraction=0.0, is_improvable=False)
    threshold = min(float(nash.flows[i]) for i in classification.under_loaded)
    fraction = threshold / instance.demand if instance.demand > 0.0 else 0.0
    return UsefulControlThreshold(flow=threshold, fraction=fraction,
                                  is_improvable=True)
