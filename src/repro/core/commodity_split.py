"""Weak versus strong Stackelberg strategies on multicommodity instances.

Section 4 of the paper distinguishes, for k-commodity instances, two ways a
Leader controlling an overall ``alpha`` portion of the flow may spread it:

* a **weak** Stackelberg strategy controls the *same* fraction ``alpha`` of
  every commodity ``i`` (``alpha_i = alpha``), while
* a **strong** Stackelberg strategy may choose per-commodity fractions
  ``alpha_i`` freely subject to ``sum_i alpha_i r_i = alpha r``.

MOP naturally produces a *strong* strategy: the controlled amount of commodity
``i`` is the optimum flow on its non-shortest paths, which generally differs
across commodities.  This module reports both prices:

* the (strong) Price of Optimum ``beta`` — what MOP returns, and
* the **weak Price of Optimum** — the smallest uniform fraction ``alpha`` such
  that controlling ``alpha`` of *every* commodity covers each commodity's
  required controlled flow, i.e. ``max_i (controlled_i / r_i)``.

The gap between the two quantifies how much coordination across commodities
buys the Leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.mop import MOPResult, mop
from repro.network.instance import NetworkInstance

__all__ = ["CommoditySplit", "commodity_control_split"]


@dataclass(frozen=True)
class CommoditySplit:
    """Per-commodity control requirements of the MOP strategy.

    Attributes
    ----------
    strong_beta:
        The Price of Optimum under strong strategies (MOP's ``beta``): total
        controlled flow divided by the total demand.
    weak_beta:
        The smallest uniform per-commodity fraction that covers every
        commodity's required controlled flow (``max_i controlled_i / r_i``).
    fractions:
        The per-commodity fractions ``controlled_i / r_i``.
    controlled:
        The per-commodity controlled flows.
    demands:
        The per-commodity demands ``r_i``.
    """

    strong_beta: float
    weak_beta: float
    fractions: Tuple[float, ...]
    controlled: Tuple[float, ...]
    demands: Tuple[float, ...]

    @property
    def coordination_gain(self) -> float:
        """How much a strong Leader saves over a weak one (``weak - strong``).

        Zero when every commodity needs the same fraction (e.g. single
        commodity instances); positive when the control requirement is skewed
        toward some commodities.
        """
        return self.weak_beta - self.strong_beta

    @property
    def num_commodities(self) -> int:
        return len(self.fractions)


def commodity_control_split(instance: NetworkInstance,
                            *, result: MOPResult | None = None,
                            **mop_kwargs) -> CommoditySplit:
    """Compute the weak and strong Price of Optimum of a network instance.

    ``result`` may be a previously computed :class:`MOPResult` for the same
    instance (to avoid re-running MOP); otherwise MOP is run here with
    ``mop_kwargs`` forwarded (``compute_induced`` defaults to ``False`` since
    only the control amounts are needed).
    """
    if result is None:
        mop_kwargs.setdefault("compute_induced", False)
        result = mop(instance, **mop_kwargs)
    demands = tuple(com.demand for com in instance.commodities)
    controlled = tuple(result.strategy.controlled_demands)
    fractions = tuple(min(1.0, c / r) if r > 0 else 0.0
                      for c, r in zip(controlled, demands))
    weak_beta = max(fractions) if fractions else 0.0
    return CommoditySplit(
        strong_beta=result.beta,
        weak_beta=float(weak_beta),
        fractions=fractions,
        controlled=controlled,
        demands=demands,
    )
