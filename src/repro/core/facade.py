"""Type-dispatching facade for the Price of Optimum."""

from __future__ import annotations

from typing import Union

from repro.exceptions import ModelError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.core.mop import MOPResult, mop
from repro.core.optop import OpTopResult, optop

__all__ = ["price_of_optimum"]


def price_of_optimum(instance: Union[ParallelLinkInstance, NetworkInstance],
                     **kwargs) -> Union[OpTopResult, MOPResult]:
    """Compute the Price of Optimum ``beta`` and the optimal Leader strategy.

    Dispatches to :func:`repro.core.optop` for parallel-link instances and to
    :func:`repro.core.mop` for network instances; keyword arguments are
    forwarded to the selected algorithm.

    This is the headline quantity of the paper (Theorem 2.1): the minimum
    portion of flow a Leader must control to induce the optimum routing, plus
    the strategy achieving it — both computable in polynomial time.
    """
    if isinstance(instance, ParallelLinkInstance):
        return optop(instance, **kwargs)
    if isinstance(instance, NetworkInstance):
        return mop(instance, **kwargs)
    raise ModelError(
        f"price_of_optimum expects a ParallelLinkInstance or NetworkInstance, "
        f"got {type(instance).__name__}")
