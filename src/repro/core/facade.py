"""Type-dispatching facade for the Price of Optimum.

.. deprecated::
    New code should prefer ``repro.api.solve(instance)``, which returns the
    unified :class:`~repro.api.report.SolveReport`.  This facade is kept so
    existing callers continue to receive the original ``OpTopResult`` /
    ``MOPResult`` objects.
"""

from __future__ import annotations

from typing import Union

from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.core.mop import MOPResult, mop
from repro.core.optop import OpTopResult, optop
from repro.api.dispatch import NETWORK, PARALLEL, resolve_instance_kind

__all__ = ["price_of_optimum"]


def price_of_optimum(instance: Union[ParallelLinkInstance, NetworkInstance],
                     **kwargs) -> Union[OpTopResult, MOPResult]:
    """Compute the Price of Optimum ``beta`` and the optimal Leader strategy.

    Dispatches to :func:`repro.core.optop` for parallel-link instances and to
    :func:`repro.core.mop` for network instances; keyword arguments are
    forwarded to the selected algorithm.  Dispatch uses the shared
    :func:`repro.api.dispatch.resolve_instance_kind` resolver, so subclasses
    and structurally compatible instances (e.g. reconstructed through
    :func:`repro.serialization.load_instance` round trips by a foreign
    loader) are accepted.

    This is the headline quantity of the paper (Theorem 2.1): the minimum
    portion of flow a Leader must control to induce the optimum routing, plus
    the strategy achieving it — both computable in polynomial time.
    """
    kind = resolve_instance_kind(instance)
    if kind == PARALLEL:
        return optop(instance, **kwargs)
    assert kind == NETWORK
    return mop(instance, **kwargs)
