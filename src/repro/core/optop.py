"""Algorithm OpTop: the Price of Optimum on parallel links (Corollary 2.2).

OpTop computes the minimum portion ``beta_M`` of the total flow ``r`` a Leader
must control to induce the optimum cost ``C(O)`` on a parallel-link instance,
together with the optimal strategy:

1. compute the optimum ``O`` of the full instance once;
2. compute the Nash equilibrium ``N`` of the *current* subsystem and flow;
3. every currently *under-loaded* link (``n_i < o_i``, Definition 4.3) is
   frozen at its optimum flow (``s_i = o_i``) and removed together with that
   flow;
4. repeat on the simplified subsystem until no link is under-loaded;
5. the controlled portion is ``beta_M = (r_0 - r_final) / r_0``.

The correctness argument (Section 7.4) combines Theorem 7.2 (a useful strategy
must freeze some link), Theorem 7.4 / Lemma 7.5 (frozen links receive no
induced flow, so a non-optimally frozen link would pin a sub-optimal flow) and
Proposition 7.1 (monotonicity), which force exactly the assignments OpTop
makes — hence the portion it returns is minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SolveConfig

from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_nash, parallel_optimum
from repro.equilibrium.result import ParallelFlowResult, StackelbergOutcome
from repro.core.strategy import ParallelStackelbergStrategy

__all__ = ["OpTopRound", "OpTopResult", "optop"]


@dataclass(frozen=True)
class OpTopRound:
    """Trace of one OpTop iteration.

    Attributes
    ----------
    active_links:
        Original link indices still in play at the start of the round.
    remaining_flow:
        Selfish flow routed on those links at the start of the round.
    nash_flows:
        Nash assignment of that flow on the active links (aligned with
        ``active_links``).
    frozen_links:
        Links detected as under-loaded in this round and frozen at their
        optimum flow.
    """

    active_links: Tuple[int, ...]
    remaining_flow: float
    nash_flows: np.ndarray
    frozen_links: Tuple[int, ...]


@dataclass(frozen=True)
class OpTopResult:
    """Result of :func:`optop`.

    ``beta`` is the Price of Optimum; ``strategy`` the optimal Leader strategy
    (optimum flow on every frozen link); ``outcome`` the induced Stackelberg
    equilibrium ``S + T`` (which matches the optimum up to solver tolerance).
    """

    instance: ParallelLinkInstance
    beta: float
    strategy: ParallelStackelbergStrategy
    optimum: ParallelFlowResult
    initial_nash: ParallelFlowResult
    rounds: Tuple[OpTopRound, ...]
    outcome: StackelbergOutcome

    @property
    def controlled_flow(self) -> float:
        """Flow controlled by the Leader (``beta * r``)."""
        return self.strategy.controlled_flow

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def optimum_cost(self) -> float:
        return self.optimum.cost

    @property
    def induced_cost(self) -> float:
        return self.outcome.cost

    @property
    def nash_cost(self) -> float:
        return self.initial_nash.cost


def optop(instance: ParallelLinkInstance, *, atol: Optional[float] = None,
          tol: Optional[float] = None,
          config: "SolveConfig | None" = None) -> OpTopResult:
    """Run algorithm OpTop on a parallel-link instance.

    Parameters
    ----------
    instance:
        The scheduling instance ``(M, r)``.
    atol:
        Absolute tolerance used to decide whether a link is under-loaded
        (``n_i < o_i - atol``); needed because Nash and optimum flows are
        computed numerically.  Defaults to 1e-8.
    tol:
        Tolerance passed to the water-filling solvers.  Defaults to 1e-12.
    config:
        A :class:`repro.api.SolveConfig` supplying ``underload_atol`` and
        ``water_fill_tol``; explicit keywords take precedence.

    Returns
    -------
    OpTopResult
        With the Price of Optimum ``beta``, the optimal strategy, the round
        trace and the induced equilibrium.
    """
    if config is not None:
        atol = config.underload_atol if atol is None else atol
        tol = config.water_fill_tol if tol is None else tol
    atol = 1e-8 if atol is None else atol
    tol = 1e-12 if tol is None else tol
    backend = "auto" if config is None else config.kernel_backend
    optimum = parallel_optimum(instance, tol=tol, backend=backend)
    initial_nash = parallel_nash(instance, tol=tol, backend=backend)
    opt_flows = optimum.flows

    demand = instance.demand
    scale = max(1.0, demand)
    active: List[int] = list(range(instance.num_links))
    remaining = demand
    strategy_flows = np.zeros(instance.num_links, dtype=float)
    rounds: List[OpTopRound] = []

    while active and remaining > -atol * scale:
        if len(active) == instance.num_links and remaining == demand:
            # Round 1 is the full instance at full demand — the Nash already
            # computed above; skip the redundant solve (and sub-instance).
            nash = initial_nash
        else:
            sub = instance.sub_instance(active, max(0.0, remaining))
            nash = parallel_nash(sub, tol=tol, backend=backend)
        under = [orig for pos, orig in enumerate(active)
                 if nash.flows[pos] < opt_flows[orig] - atol * scale]
        rounds.append(OpTopRound(
            active_links=tuple(active),
            remaining_flow=max(0.0, remaining),
            nash_flows=nash.flows.copy(),
            frozen_links=tuple(under),
        ))
        if not under:
            break
        for orig in under:
            strategy_flows[orig] = opt_flows[orig]
        remaining -= float(sum(opt_flows[orig] for orig in under))
        active = [orig for orig in active if orig not in set(under)]

    remaining = max(0.0, remaining)
    beta = (demand - remaining) / demand if demand > 0.0 else 0.0
    strategy = ParallelStackelbergStrategy(flows=strategy_flows, total_demand=demand)
    outcome = strategy.induce(instance, tol=tol, backend=backend)
    return OpTopResult(
        instance=instance,
        beta=float(beta),
        strategy=strategy,
        optimum=optimum,
        initial_nash=initial_nash,
        rounds=tuple(rounds),
        outcome=outcome,
    )
