"""Proposition 7.1: Nash link flows are monotone in the total demand.

If ``r' <= r`` then the Nash assignments satisfy ``n'_i <= n_i`` on every
link.  This monotonicity is what lets OpTop discard frozen links: after the
Leader captures the under-loaded links' optimum flow, the remaining selfish
flow is smaller, so no remaining link can end up with more selfish flow than
before — frozen links stay unattractive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_nash

__all__ = ["nash_flow_monotonicity_violation"]


def nash_flow_monotonicity_violation(instance: ParallelLinkInstance,
                                     demands: Sequence[float]) -> float:
    """Empirical check of Proposition 7.1 over a set of demands.

    Computes the Nash equilibrium of the instance at every demand in
    ``demands`` (sorted increasingly) and returns the largest *decrease* of
    any link flow when the demand increases — which the proposition asserts is
    zero (up to solver tolerance).
    """
    demand_list = sorted(float(d) for d in demands)
    if any(d < 0.0 for d in demand_list):
        raise ModelError("demands must be non-negative")
    worst = 0.0
    previous: np.ndarray | None = None
    for demand in demand_list:
        flows = parallel_nash(instance.with_demand(demand)).flows
        if previous is not None:
            decrease = float(np.max(previous - flows))
            worst = max(worst, decrease)
        previous = flows
    return worst
