"""The paper's primary contribution: the Price of Optimum.

Given an instance ``(M, r)``, the *Price of Optimum* ``beta_M`` is the minimum
portion of the total flow a Stackelberg Leader must control so that some
strategy induces the global optimum cost ``C(O)``.  This package implements:

* :func:`optop` — algorithm **OpTop** for parallel links (Corollary 2.2),
* :func:`mop` — algorithm **MOP** for s–t and k-commodity networks
  (Corollary 2.3 / Theorem 2.1),
* :func:`price_of_optimum` — a facade dispatching on the instance type,
* :func:`optimal_restricted_strategy` — the Theorem 2.4 polynomial-time
  optimal strategy for hard instances ``(M, r, alpha < beta_M)`` with
  common-slope linear latencies,
* the structural theory OpTop relies on: link classification
  (Definition 4.3), frozen links (Definition 4.4, Theorem 7.4, Lemma 7.5),
  useless strategies (Theorem 7.2), Nash monotonicity (Proposition 7.1) and
  the minimum-useful-control threshold (footnote 6 / Sharma–Williamson).
"""

from repro.core.strategy import NetworkStackelbergStrategy, ParallelStackelbergStrategy
from repro.core.optop import OpTopResult, OpTopRound, optop
from repro.core.mop import MOPResult, mop
from repro.core.facade import price_of_optimum
from repro.core.linear_optimal import (
    RestrictedStrategyResult,
    optimal_restricted_strategy,
)
from repro.core.frozen import (
    classify_links,
    frozen_link_mask,
    induced_flow_on_frozen_links,
    is_useless_strategy,
)
from repro.core.monotonicity import nash_flow_monotonicity_violation
from repro.core.thresholds import minimum_useful_control
from repro.core.commodity_split import CommoditySplit, commodity_control_split

__all__ = [
    "ParallelStackelbergStrategy",
    "NetworkStackelbergStrategy",
    "OpTopResult",
    "OpTopRound",
    "optop",
    "MOPResult",
    "mop",
    "price_of_optimum",
    "RestrictedStrategyResult",
    "optimal_restricted_strategy",
    "classify_links",
    "frozen_link_mask",
    "is_useless_strategy",
    "induced_flow_on_frozen_links",
    "nash_flow_monotonicity_violation",
    "minimum_useful_control",
    "CommoditySplit",
    "commodity_control_split",
]
