"""Theorem 2.4: optimal strategy on hard instances with common-slope linear latencies.

For instances ``(M, r, alpha < beta_M)`` — where the Leader cannot force the
optimum — computing the optimal strategy is weakly NP-hard in general
(Roughgarden).  Theorem 2.4 shows the problem is polynomial when every link
has latency ``l_i(x) = a x + b_i`` with a *common* slope ``a >= 0``:

* Lemma 6.1: some optimal strategy partitions the links (sorted by their
  constant term ``b_i``) into a prefix ``M^{>0}`` that receives induced
  selfish flow and a suffix ``M^{=0}`` that does not.
* For a fixed split the only freedom is how much extra flow ``eps`` of the
  Leader joins the Followers on ``M^{>0}``: the combined flow on ``M^{>0}``
  behaves like a Nash assignment of ``(1-alpha) r + eps``, while the remaining
  ``alpha r - eps`` Leader flow is assigned *optimally* on ``M^{=0}``.
* The assignment is admissible only when every link of ``M^{>0}`` is loaded
  and its common latency does not exceed the latency of any link of
  ``M^{=0}`` (otherwise Followers would deviate).

The solver scans every split point and minimises over ``eps`` with a dense
grid plus golden-section refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, StrategyError
from repro.latency.linear import LinearLatency
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import water_fill
from repro.equilibrium.result import StackelbergOutcome
from repro.core.strategy import ParallelStackelbergStrategy
from repro.utils.optimize import grid_refine_minimize

__all__ = ["RestrictedStrategyResult", "optimal_restricted_strategy"]

_INFEASIBLE = float("inf")


@dataclass(frozen=True)
class RestrictedStrategyResult:
    """Result of :func:`optimal_restricted_strategy`.

    Attributes
    ----------
    strategy:
        The computed optimal Leader strategy for the given ``alpha``.
    predicted_cost:
        The cost the Theorem 6.1 decomposition predicts for ``S + T``.
    outcome:
        The induced equilibrium actually computed against the strategy
        (its cost matches ``predicted_cost`` up to solver tolerance).
    split_index:
        Number of links (in increasing ``b_i`` order) placed in ``M^{>0}``;
        equal to ``m`` when the best choice is the useless strategy that keeps
        the initial Nash equilibrium.
    epsilon:
        The Leader flow that joins the Followers on ``M^{>0}``.
    order:
        Link indices sorted by constant term — the order the split refers to.
    """

    strategy: ParallelStackelbergStrategy
    predicted_cost: float
    outcome: StackelbergOutcome
    split_index: int
    epsilon: float
    order: Tuple[int, ...]

    @property
    def cost(self) -> float:
        """Cost of the induced Stackelberg equilibrium."""
        return self.outcome.cost


def _require_common_slope(instance: ParallelLinkInstance) -> Tuple[float, np.ndarray]:
    """Validate the Theorem 2.4 hypothesis and return ``(slope, intercepts)``."""
    slopes = []
    intercepts = []
    for i, lat in enumerate(instance.latencies):
        if not isinstance(lat, LinearLatency):
            raise ModelError(
                f"Theorem 2.4 requires linear latencies; link {i} has "
                f"{type(lat).__name__}")
        slopes.append(lat.slope)
        intercepts.append(lat.intercept)
    slopes_arr = np.asarray(slopes, dtype=float)
    if slopes_arr.size and not np.allclose(slopes_arr, slopes_arr[0], atol=1e-12):
        raise ModelError(
            "Theorem 2.4 requires a common slope a for all latencies "
            f"l_i(x) = a x + b_i; got slopes {slopes!r}")
    slope = float(slopes_arr[0]) if slopes_arr.size else 0.0
    if slope <= 0.0:
        raise ModelError(
            "Theorem 2.4 with slope a = 0 makes every latency constant; "
            "use strictly positive a")
    return slope, np.asarray(intercepts, dtype=float)


def _nash_cost_on(latencies, flow: float) -> Tuple[float, float, np.ndarray]:
    """Nash cost of routing ``flow`` on a sub-collection of links.

    Returns ``(cost, common_latency, flows)``; for ``flow == 0`` the cost is 0
    and the common latency is the smallest free-flow latency.
    """
    flows, level = water_fill(list(latencies), flow, "nash")
    cost = float(sum(x * float(lat.value(x)) for lat, x in zip(latencies, flows)))
    return cost, level, flows


def _optimum_cost_on(latencies, flow: float) -> Tuple[float, np.ndarray]:
    """Optimum cost of routing ``flow`` on a sub-collection of links."""
    flows, _ = water_fill(list(latencies), flow, "optimum")
    cost = float(sum(x * float(lat.value(x)) for lat, x in zip(latencies, flows)))
    return cost, flows


def optimal_restricted_strategy(instance: ParallelLinkInstance, alpha: float,
                                *, grid_points: int = 257,
                                tol: float = 1e-12) -> RestrictedStrategyResult:
    """Optimal Stackelberg strategy controlling an ``alpha`` portion of the flow.

    Implements the Theorem 2.4 / Section 6.1 algorithm for parallel links with
    common-slope linear latencies.  Works for any ``alpha`` in ``[0, 1]`` (for
    ``alpha >= beta_M`` it recovers a strategy inducing the optimum cost, so it
    can also be used as an independent cross-check of OpTop).
    """
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    _require_common_slope(instance)
    demand = instance.demand
    leader_budget = alpha * demand
    follower_flow = demand - leader_budget

    order = tuple(sorted(range(instance.num_links),
                         key=lambda i: (instance.latencies[i].intercept,  # type: ignore[attr-defined]
                                        i)))
    latencies_sorted = [instance.latencies[i] for i in order]
    m = instance.num_links

    best: Optional[Tuple[float, int, float]] = None  # (cost, split, eps)

    for split in range(1, m + 1):
        appealing = latencies_sorted[:split]
        reserved = latencies_sorted[split:]

        def total_cost(eps: float, appealing=appealing, reserved=reserved) -> float:
            if eps < -1e-12 or eps > leader_budget + 1e-12:
                return _INFEASIBLE
            eps = min(max(eps, 0.0), leader_budget)
            nash_cost, common_latency, nash_flows = _nash_cost_on(
                appealing, follower_flow + eps)
            # Admissibility: every appealing link is loaded ...
            if np.any(nash_flows <= 1e-12) and follower_flow + eps > 1e-12:
                return _INFEASIBLE
            reserved_flow = leader_budget - eps
            if reserved:
                opt_cost, reserved_flows = _optimum_cost_on(reserved, reserved_flow)
                # ... and no reserved link undercuts the common latency,
                # otherwise Followers would deviate onto it.
                reserved_latencies = [float(lat.value(x))
                                      for lat, x in zip(reserved, reserved_flows)]
                if reserved_latencies and min(reserved_latencies) < common_latency - 1e-9:
                    return _INFEASIBLE
            else:
                if reserved_flow > 1e-9:
                    return _INFEASIBLE
                opt_cost = 0.0
            return nash_cost + opt_cost

        if split == m:
            # No reserved links: the Leader's flow simply joins the Followers,
            # which is only feasible when it is all absorbed (eps = budget).
            eps_best, cost_best = leader_budget, total_cost(leader_budget)
        else:
            eps_best, cost_best = grid_refine_minimize(
                total_cost, 0.0, leader_budget, grid_points=grid_points)
        if cost_best == _INFEASIBLE:
            continue
        if best is None or cost_best < best[0] - 1e-12:
            best = (cost_best, split, eps_best)

    if best is None:
        raise StrategyError(
            "no admissible split found; this should not happen for alpha in [0, 1]")
    cost_best, split, eps = best

    # Reconstruct the Leader strategy: optimum loads on the reserved suffix,
    # and a share of the appealing links' Nash flow worth eps (any split with
    # s_i <= combined Nash flow works; we use a proportional share).
    appealing = latencies_sorted[:split]
    reserved = latencies_sorted[split:]
    _, _, appealing_flows = _nash_cost_on(appealing, follower_flow + eps)
    strategy_flows = np.zeros(instance.num_links, dtype=float)
    if eps > 0.0 and float(appealing_flows.sum()) > 0.0:
        share = eps / float(appealing_flows.sum())
        for pos, orig in enumerate(order[:split]):
            strategy_flows[orig] = share * float(appealing_flows[pos])
    if reserved:
        _, reserved_flows = _optimum_cost_on(reserved, leader_budget - eps)
        for pos, orig in enumerate(order[split:]):
            strategy_flows[orig] = float(reserved_flows[pos])

    strategy = ParallelStackelbergStrategy(flows=strategy_flows, total_demand=demand)
    outcome = strategy.induce(instance, tol=tol)
    return RestrictedStrategyResult(
        strategy=strategy,
        predicted_cost=float(cost_best),
        outcome=outcome,
        split_index=split,
        epsilon=float(eps),
        order=order,
    )
