"""Frozen-link theory: Definitions 4.3/4.4, Theorem 7.2, Theorem 7.4, Lemma 7.5.

These predicates expose the structural facts OpTop's correctness rests on, so
that tests and benchmarks can check them empirically on arbitrary instances:

* a link is *over/under/optimum-loaded* by comparing its Nash and optimum
  flows (Definition 4.3);
* a strategy *freezes* a link when it pre-loads at least the link's initial
  Nash flow (Definition 4.4);
* a strategy with ``s_i <= n_i`` everywhere is *useless*: the induced
  equilibrium recreates the initial Nash assignment (Theorem 7.2);
* frozen links receive **no** induced selfish flow, regardless of what the
  strategy does elsewhere (Theorem 7.4 and Lemma 7.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.parallel import parallel_nash, parallel_optimum
from repro.equilibrium.induced import induced_parallel_equilibrium

__all__ = [
    "LinkClassification",
    "classify_links",
    "frozen_link_mask",
    "is_useless_strategy",
    "induced_flow_on_frozen_links",
]


@dataclass(frozen=True)
class LinkClassification:
    """Partition of the links into over-, under- and optimum-loaded (Def. 4.3)."""

    over_loaded: Tuple[int, ...]
    under_loaded: Tuple[int, ...]
    optimum_loaded: Tuple[int, ...]
    nash_flows: np.ndarray
    optimum_flows: np.ndarray


def classify_links(instance: ParallelLinkInstance, *,
                   nash_flows: Optional[np.ndarray] = None,
                   optimum_flows: Optional[np.ndarray] = None,
                   atol: float = 1e-8) -> LinkClassification:
    """Classify every link as over-, under- or optimum-loaded (Definition 4.3).

    ``nash_flows`` and ``optimum_flows`` may be supplied to avoid recomputing
    the equilibria; otherwise they are computed here.
    """
    if nash_flows is None:
        nash_flows = parallel_nash(instance).flows
    if optimum_flows is None:
        optimum_flows = parallel_optimum(instance).flows
    nash_flows = np.asarray(nash_flows, dtype=float)
    optimum_flows = np.asarray(optimum_flows, dtype=float)
    scale = max(1.0, instance.demand)
    over, under, exact = [], [], []
    for i in range(instance.num_links):
        if nash_flows[i] > optimum_flows[i] + atol * scale:
            over.append(i)
        elif nash_flows[i] < optimum_flows[i] - atol * scale:
            under.append(i)
        else:
            exact.append(i)
    return LinkClassification(
        over_loaded=tuple(over),
        under_loaded=tuple(under),
        optimum_loaded=tuple(exact),
        nash_flows=nash_flows,
        optimum_flows=optimum_flows,
    )


def frozen_link_mask(instance: ParallelLinkInstance,
                     strategy_flows: Sequence[float], *,
                     nash_flows: Optional[np.ndarray] = None,
                     atol: float = 1e-9) -> np.ndarray:
    """Boolean mask of links frozen by the strategy (Definition 4.4).

    A link is frozen when the Leader pre-loads it with at least its flow in
    the *initial* Nash assignment ``N`` (and with a strictly positive amount
    when its Nash flow is zero, so that "empty" links are not trivially
    counted as frozen).
    """
    if nash_flows is None:
        nash_flows = parallel_nash(instance).flows
    nash_flows = np.asarray(nash_flows, dtype=float)
    strategy = np.asarray(strategy_flows, dtype=float)
    scale = max(1.0, instance.demand)
    return (strategy >= nash_flows - atol * scale) & (strategy > atol * scale)


def is_useless_strategy(instance: ParallelLinkInstance,
                        strategy_flows: Sequence[float], *,
                        nash_flows: Optional[np.ndarray] = None,
                        atol: float = 1e-9) -> bool:
    """``True`` when the strategy satisfies the Theorem 7.2 hypothesis.

    A strategy with ``s_i <= n_i`` on every link is *useless*: the Followers
    rebuild the initial Nash assignment and the induced cost equals ``C(N)``.
    """
    if nash_flows is None:
        nash_flows = parallel_nash(instance).flows
    nash_flows = np.asarray(nash_flows, dtype=float)
    strategy = np.asarray(strategy_flows, dtype=float)
    scale = max(1.0, instance.demand)
    return bool(np.all(strategy <= nash_flows + atol * scale))


def induced_flow_on_frozen_links(instance: ParallelLinkInstance,
                                 strategy_flows: Sequence[float], *,
                                 atol: float = 1e-9) -> float:
    """Largest induced selfish flow landing on a frozen link.

    Theorem 7.4 and Lemma 7.5 assert this is zero for every strategy; the
    benchmarks report the empirical maximum as a validation of the theory (and
    of the induced-equilibrium solver).
    """
    nash_flows = parallel_nash(instance).flows
    mask = frozen_link_mask(instance, strategy_flows, nash_flows=nash_flows, atol=atol)
    outcome = induced_parallel_equilibrium(instance, strategy_flows)
    if not np.any(mask):
        return 0.0
    return float(np.max(outcome.follower_flows[mask]))
