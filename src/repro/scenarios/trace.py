"""Time-varying demand: trace processes and the study-pipeline bridge.

A :class:`DemandTrace` is a finite sequence of total-demand levels — one per
time step — produced by a registered **trace process**.  Processes reuse the
generator-registry pattern of :mod:`repro.study.generators` (the registry is
literally a :class:`~repro.study.generators.GeneratorRegistry`): each is a
named factory behind the ``(params, seed) -> levels`` protocol with
JSON-schema'd params, so a ``(process, params, seed)`` triple is a
reproducible address for a whole demand trajectory.

Built-in processes:

* ``constant`` — one level repeated (the degenerate trace; a replay must
  reproduce the static solve bit for bit);
* ``piecewise`` — explicit levels, each held for ``steps_per_level`` steps;
* ``diurnal`` — a quantised sinusoid ``base + amplitude * sin(...)``; the
  quantisation (``decimals``) makes the rising and falling flanks revisit
  identical levels, which the serving layer's caches then collapse;
* ``random_walk`` — a seeded, clipped random walk;
* ``literal`` — explicit levels verbatim (also the target of
  :meth:`DemandTrace.from_csv`).

:class:`TraceAxis` bridges traces into the declarative study pipeline: it is
a :class:`~repro.study.spec.GeneratorAxis` whose demand grid is the trace's
distinct levels in first-seen order, so every step of the trace is a study
cell addressed by its own content digest — re-running the study resumes per
step, and repeated levels share one artifact.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ModelError
from repro.study.generators import GeneratorRegistry
from repro.study.spec import GeneratorAxis

__all__ = [
    "DemandTrace",
    "TraceAxis",
    "TRACE_PROCESSES",
    "register_trace_process",
    "available_trace_processes",
]

#: Registry of trace processes; same machinery as the instance generators.
TRACE_PROCESSES = GeneratorRegistry()


def register_trace_process(name: str, factory=None, *, schema=None,
                           seeded: bool = True, description: str = ""):
    """Register a trace process (decorator-friendly, like generators)."""
    return TRACE_PROCESSES.register(name, factory, schema=schema,
                                    seeded=seeded, description=description)


def available_trace_processes() -> list:
    """Sorted names of the registered trace processes."""
    return TRACE_PROCESSES.names()


def _positive_levels(levels: Sequence[float], where: str) -> Tuple[float, ...]:
    out = tuple(float(v) for v in levels)
    if not out:
        raise ModelError(f"{where}: a trace needs at least one level")
    for i, level in enumerate(out):
        if not level > 0.0:
            raise ModelError(
                f"{where}: demand levels must be > 0, got {level!r} at "
                f"step {i}")
    return out


# --------------------------------------------------------------------------- #
# Built-in processes
# --------------------------------------------------------------------------- #
def _num_schema(exclusive_min=None, minimum=None):
    spec: Dict[str, Any] = {"type": "number"}
    if exclusive_min is not None:
        spec["exclusiveMinimum"] = exclusive_min
    if minimum is not None:
        spec["minimum"] = minimum
    return spec


_LEVELS_SCHEMA = {"type": "array", "minItems": 1,
                  "items": _num_schema(exclusive_min=0.0)}


@register_trace_process("constant", seeded=False, schema={
    "type": "object", "additionalProperties": False,
    "properties": {"level": _num_schema(exclusive_min=0.0),
                   "num_steps": {"type": "integer", "minimum": 1}}})
def _constant_process(level: float = 1.0,
                      num_steps: int = 1) -> Tuple[float, ...]:
    """One demand level repeated for every step."""
    return _positive_levels([level] * int(num_steps), "constant")


@register_trace_process("piecewise", seeded=False, schema={
    "type": "object", "additionalProperties": False, "required": ["levels"],
    "properties": {"levels": _LEVELS_SCHEMA,
                   "steps_per_level": {"type": "integer", "minimum": 1}}})
def _piecewise_process(levels: Sequence[float] = (1.0,),
                       steps_per_level: int = 1) -> Tuple[float, ...]:
    """Explicit levels, each held for a fixed number of steps."""
    held = []
    for level in levels:
        held.extend([level] * int(steps_per_level))
    return _positive_levels(held, "piecewise")


@register_trace_process("diurnal", seeded=False, schema={
    "type": "object", "additionalProperties": False,
    "properties": {"num_steps": {"type": "integer", "minimum": 1},
                   "base": _num_schema(exclusive_min=0.0),
                   "amplitude": _num_schema(minimum=0.0),
                   "period": {"type": "integer", "minimum": 2},
                   "phase": {"type": "number"},
                   "decimals": {"type": "integer", "minimum": 0}}})
def _diurnal_process(num_steps: int = 24, base: float = 2.0,
                     amplitude: float = 1.0, period: Optional[int] = None,
                     phase: float = 0.0,
                     decimals: int = 6) -> Tuple[float, ...]:
    """A quantised sinusoidal day: ``base + amplitude * sin(2 pi t / period)``.

    Quantising to ``decimals`` makes symmetric points of the sinusoid land on
    *identical* levels, so a replay revisits demand levels and the caches
    collapse the repeats.  ``amplitude`` must stay below ``base`` (demand is
    always positive).
    """
    num_steps = int(num_steps)
    period = num_steps if period is None else int(period)
    base, amplitude = float(base), float(amplitude)
    if amplitude >= base:
        raise ModelError(
            f"diurnal amplitude {amplitude!r} must be < base {base!r} "
            f"(demand stays positive)")
    levels = [
        round(base + amplitude * math.sin(2.0 * math.pi * (t + phase) / period),
              int(decimals))
        for t in range(num_steps)]
    return _positive_levels(levels, "diurnal")


@register_trace_process("random_walk", seeded=True, schema={
    "type": "object", "additionalProperties": False,
    "properties": {"num_steps": {"type": "integer", "minimum": 1},
                   "base": _num_schema(exclusive_min=0.0),
                   "step_scale": _num_schema(minimum=0.0),
                   "min_level": _num_schema(exclusive_min=0.0),
                   "max_level": _num_schema(exclusive_min=0.0),
                   "decimals": {"type": "integer", "minimum": 0}}})
def _random_walk_process(num_steps: int = 24, base: float = 2.0,
                         step_scale: float = 0.25, min_level: float = 0.25,
                         max_level: Optional[float] = None,
                         decimals: int = 6, *,
                         seed: int = 0) -> Tuple[float, ...]:
    """A seeded, clipped Gaussian random walk around ``base``."""
    rng = random.Random(int(seed))
    hi = 4.0 * float(base) if max_level is None else float(max_level)
    lo = float(min_level)
    if lo >= hi:
        raise ModelError(f"random_walk needs min_level < max_level, got "
                         f"[{lo!r}, {hi!r}]")
    level = min(max(float(base), lo), hi)
    levels = []
    for _ in range(int(num_steps)):
        levels.append(round(level, int(decimals)))
        level = min(max(level + rng.gauss(0.0, float(step_scale)), lo), hi)
    return _positive_levels(levels, "random_walk")


@register_trace_process("literal", seeded=False, schema={
    "type": "object", "additionalProperties": False, "required": ["levels"],
    "properties": {"levels": _LEVELS_SCHEMA}})
def _literal_process(levels: Sequence[float] = (1.0,)) -> Tuple[float, ...]:
    """Explicit demand levels, verbatim (the CSV escape hatch)."""
    return _positive_levels(levels, "literal")


# --------------------------------------------------------------------------- #
# The trace value object
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DemandTrace:
    """A finite demand trajectory plus the process address that produced it.

    ``levels`` is the materialised sequence; ``process``/``params``/``seed``
    record provenance, so a trace serialises to a small JSON record and
    reconstructs identically (``from_dict(to_dict())``).
    """

    process: str
    params: str  # canonical JSON of the process params
    seed: int
    levels: Tuple[float, ...]

    @classmethod
    def from_process(cls, process: str,
                     params: Optional[Mapping[str, Any]] = None, *,
                     seed: int = 0) -> "DemandTrace":
        """Materialise the trace addressed by ``(process, params, seed)``."""
        params = dict(params or {})
        levels = TRACE_PROCESSES.get(process).build(params, seed=seed)
        frozen = json.dumps(params, sort_keys=True, separators=(",", ":"))
        return cls(process=process, params=frozen, seed=int(seed),
                   levels=tuple(float(v) for v in levels))

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "DemandTrace":
        """Load a literal trace from a CSV file (one or more floats per line)."""
        text = Path(path).read_text(encoding="utf-8")
        levels = []
        for line_no, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            for field_ in line.split(","):
                field_ = field_.strip()
                if not field_:
                    continue
                try:
                    levels.append(float(field_))
                except ValueError as exc:
                    raise ModelError(
                        f"{path}:{line_no}: invalid demand level "
                        f"{field_!r}") from exc
        if not levels:
            raise ModelError(f"{path}: no demand levels found")
        return cls.from_process("literal", {"levels": levels})

    # Sequence behaviour ------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self) -> Iterator[float]:
        return iter(self.levels)

    def __getitem__(self, index: int) -> float:
        return self.levels[index]

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The process params as a plain dictionary."""
        return json.loads(self.params)

    @property
    def distinct_levels(self) -> Tuple[float, ...]:
        """The distinct demand levels in first-seen order."""
        return tuple(dict.fromkeys(self.levels))

    # Serialisation ----------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {"process": self.process, "params": self.params_dict,
                "seed": self.seed, "levels": list(self.levels)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DemandTrace":
        """Reconstruct a trace serialised by :meth:`to_dict`."""
        if not isinstance(data, Mapping) or "levels" not in data:
            raise ModelError(f"invalid DemandTrace payload: {data!r}")
        params = data.get("params") or {}
        return cls(
            process=str(data.get("process", "literal")),
            params=json.dumps(dict(params), sort_keys=True,
                              separators=(",", ":")),
            seed=int(data.get("seed", 0)),
            levels=tuple(float(v) for v in data["levels"]),
        )


# --------------------------------------------------------------------------- #
# Study-pipeline bridge
# --------------------------------------------------------------------------- #
class TraceAxis(GeneratorAxis):
    """A study axis sweeping a generator's demand over a trace's levels.

    Expands to one cell per *distinct* demand level of the trace (in
    first-seen order): each step of the trace is addressed by the content
    digest of its re-scaled instance, so a re-run of the study resumes per
    step and repeated levels share one artifact.  The generator must accept
    a ``demand`` parameter (every parallel/network family generator does).
    """

    def __init__(self, generator: str,
                 params: Optional[Mapping[str, Any]] = None, *,
                 trace: DemandTrace,
                 seeds: Sequence[int] = (0,),
                 label: str = "",
                 strategies: Optional[Sequence[str]] = None,
                 configs=None) -> None:
        if not isinstance(trace, DemandTrace):
            raise ModelError(
                f"trace must be a DemandTrace, got {type(trace).__name__}")
        if params and "demand" in params:
            raise ModelError(
                "TraceAxis sweeps 'demand' from the trace; remove it from "
                "the fixed params")
        super().__init__(generator, params,
                         grid={"demand": list(trace.distinct_levels)},
                         seeds=seeds, label=label, strategies=strategies,
                         configs=configs)
        object.__setattr__(self, "trace", trace)
