"""`repro.scenarios` — elastic and time-varying demand processes.

Every other layer of the package solves a *static* demand: one total rate,
one solve.  This subsystem makes the demand itself part of the model:

* **Elastic demand** (:mod:`repro.scenarios.demand`,
  :mod:`repro.scenarios.elastic`): an inverse-demand curve ``D(q)`` states
  the willingness to pay for the ``q``-th unit of flow; the realised rate is
  the fixed point where it meets the Wardrop cost level.  Because the level
  is non-decreasing in the rate, the fixed point is a monotone scalar root —
  :func:`solve_elastic` bisects it (vectorised water-filling per step on
  parallel links), then runs the requested strategy at the realised rate:

  >>> from repro import instances
  >>> from repro.scenarios import LinearDemandCurve, solve_elastic
  >>> elastic = solve_elastic(instances.pigou(),
  ...                         LinearDemandCurve(intercept=2.0, slope=1.0))
  >>> round(elastic.realised_rate, 6)
  1.0
  >>> round(elastic.consumer_surplus, 6)
  0.5

* **Demand traces** (:mod:`repro.scenarios.trace`,
  :mod:`repro.scenarios.replay`): a :class:`DemandTrace` is a finite demand
  trajectory produced by a registered process (``constant``, ``piecewise``,
  ``diurnal``, ``random_walk``, ``literal``/CSV — same registry pattern as
  the instance generators).  :func:`replay_trace` streams the per-step
  solves through a :class:`~repro.serve.SolveService`, so repeated levels
  coalesce and hit the tiered cache, and a store-backed replay resumes with
  zero solver calls.  :class:`TraceAxis` plugs a trace into a
  :class:`~repro.study.StudySpec` as a per-step demand grid.

The experiments E15 (elastic-PoA sweep) and E16 (diurnal trace) in
:mod:`repro.analysis.studies` and the CLI commands ``repro solve --elastic``
and ``repro trace run`` are built on this subsystem.
"""

from repro.scenarios.demand import (
    DemandCurve,
    ExponentialDemandCurve,
    LinearDemandCurve,
    demand_curve_from_dict,
)
from repro.scenarios.elastic import (
    ElasticReport,
    solve_elastic,
    wardrop_level,
    with_total_demand,
)
from repro.scenarios.replay import TraceReport, TraceStep, replay_trace
from repro.scenarios.trace import (
    TRACE_PROCESSES,
    DemandTrace,
    TraceAxis,
    available_trace_processes,
    register_trace_process,
)

__all__ = [
    "DemandCurve",
    "LinearDemandCurve",
    "ExponentialDemandCurve",
    "demand_curve_from_dict",
    "ElasticReport",
    "solve_elastic",
    "wardrop_level",
    "with_total_demand",
    "DemandTrace",
    "TraceAxis",
    "TRACE_PROCESSES",
    "register_trace_process",
    "available_trace_processes",
    "TraceStep",
    "TraceReport",
    "replay_trace",
]
