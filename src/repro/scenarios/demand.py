"""Inverse-demand curves for elastic-demand scenarios.

A :class:`DemandCurve` describes how much flow the population wants to route
as a function of the per-unit cost it experiences: ``price_at(rate)`` is the
inverse demand ``D(q)`` (the marginal willingness to pay for the ``q``-th
unit of flow), non-increasing in ``q``.  The elastic equilibrium of
:func:`repro.scenarios.solve_elastic` is the rate at which the marginal
willingness to pay meets the equilibrium cost level of the routing game —
because ``D`` is non-increasing and the Wardrop level is non-decreasing in
the total rate, the fixed point is the root of a monotone scalar function
and bisection finds it to arbitrary precision.

Curves are plain JSON values end to end (``to_dict`` / ``from_dict`` with a
``kind`` tag), so an elastic report embeds the exact curve that produced it
and round-trips losslessly, exactly like :class:`~repro.api.SolveConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping

from repro.exceptions import ModelError

__all__ = [
    "DemandCurve",
    "LinearDemandCurve",
    "ExponentialDemandCurve",
    "demand_curve_from_dict",
]


class DemandCurve:
    """Base class of inverse-demand curves ``p = D(q)``.

    Subclasses implement a non-increasing ``price_at`` plus its integral
    ``willingness`` (gross consumer benefit) and declare ``max_rate`` — the
    rate at which the price hits zero (``inf`` when it never does).
    """

    #: Registry tag used by :func:`demand_curve_from_dict`.
    kind: str = ""

    # ------------------------------------------------------------------ #
    # The curve itself
    # ------------------------------------------------------------------ #
    def price_at(self, rate: float) -> float:
        """The inverse demand ``D(q)``: willingness to pay at rate ``q``."""
        raise NotImplementedError

    def willingness(self, rate: float) -> float:
        """Gross consumer benefit ``int_0^q D(t) dt``."""
        raise NotImplementedError

    @property
    def max_rate(self) -> float:
        """The rate where the price reaches zero (``inf`` if never)."""
        return math.inf

    def consumer_surplus(self, rate: float, price: float) -> float:
        """Net benefit ``int_0^q D(t) dt - q * price`` at a market price."""
        return self.willingness(rate) - float(rate) * float(price)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items()
                           if k != "kind")
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DemandCurve)
                and self.to_dict() == other.to_dict())

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.to_dict().items())))


def _positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0.0:
        raise ModelError(f"{name} must be > 0, got {value!r}")
    return value


@dataclass(frozen=True, eq=False, repr=False)
class LinearDemandCurve(DemandCurve):
    """Affine inverse demand ``D(q) = max(0, intercept - slope * q)``.

    ``intercept`` is the willingness to pay of the first unit (the choke
    price); ``slope > 0`` makes demand elastic — the higher the equilibrium
    cost, the less flow enters the system.  The price reaches zero at
    ``max_rate = intercept / slope``.
    """

    intercept: float
    slope: float = 1.0

    kind = "linear"

    def __post_init__(self) -> None:
        _positive("intercept", self.intercept)
        _positive("slope", self.slope)

    def price_at(self, rate: float) -> float:
        return max(0.0, self.intercept - self.slope * float(rate))

    def willingness(self, rate: float) -> float:
        q = min(float(rate), self.max_rate)
        if q < 0.0:
            raise ModelError(f"rate must be >= 0, got {rate!r}")
        return self.intercept * q - 0.5 * self.slope * q * q

    @property
    def max_rate(self) -> float:
        return self.intercept / self.slope

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "intercept": float(self.intercept),
                "slope": float(self.slope)}


@dataclass(frozen=True, eq=False, repr=False)
class ExponentialDemandCurve(DemandCurve):
    """Exponential inverse demand ``D(q) = intercept * exp(-decay * q)``.

    Strictly positive at every rate (``max_rate`` is infinite) with a finite
    total willingness ``intercept / decay`` — a convenient smooth curve for
    instances whose capacity is unbounded.
    """

    intercept: float
    decay: float = 1.0

    kind = "exponential"

    def __post_init__(self) -> None:
        _positive("intercept", self.intercept)
        _positive("decay", self.decay)

    def price_at(self, rate: float) -> float:
        return self.intercept * math.exp(-self.decay * float(rate))

    def willingness(self, rate: float) -> float:
        q = float(rate)
        if q < 0.0:
            raise ModelError(f"rate must be >= 0, got {rate!r}")
        return self.intercept * (1.0 - math.exp(-self.decay * q)) / self.decay

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "intercept": float(self.intercept),
                "decay": float(self.decay)}


#: kind tag -> constructor taking the (kind-stripped) params.
_CURVE_KINDS: Dict[str, Callable[..., DemandCurve]] = {
    LinearDemandCurve.kind: LinearDemandCurve,
    ExponentialDemandCurve.kind: ExponentialDemandCurve,
}


def demand_curve_from_dict(data: Mapping[str, Any]) -> DemandCurve:
    """Reconstruct a curve serialised by :meth:`DemandCurve.to_dict`."""
    if not isinstance(data, Mapping) or "kind" not in data:
        raise ModelError(f"invalid demand curve payload: {data!r}")
    payload = dict(data)
    kind = payload.pop("kind")
    try:
        ctor = _CURVE_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_CURVE_KINDS)) or "<none>"
        raise ModelError(
            f"unknown demand curve kind {kind!r}; known kinds: {known}"
        ) from None
    try:
        return ctor(**payload)
    except TypeError as exc:
        raise ModelError(
            f"invalid parameters for demand curve {kind!r}: {exc}") from exc
