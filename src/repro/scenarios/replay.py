"""Replay a demand trace through the serving layer, step by step.

:func:`replay_trace` streams the per-step solves of a
:class:`~repro.scenarios.trace.DemandTrace` through a
:class:`~repro.serve.SolveService`: each step re-scales the instance to the
step's demand level and submits it, so repeated levels coalesce onto one
in-flight solve within a replay, hit the tier-1 LRU across steps, and — when
an :class:`~repro.study.store.ArtifactStore` is attached — land as
content-addressed artifacts keyed by the step's instance digest.  A second
replay of the same trace against the same store therefore performs **zero**
solver calls: every step resolves from tier 2 (the
:attr:`TraceReport.fully_resumed` flag asserts exactly this).

The result is a :class:`TraceReport`: one :class:`TraceStep` per step
(demand, beta, price of anarchy, costs) plus the service-statistics delta of
the replay (tier hits, coalesced steps, solver batches) — the warm-start
accounting that shows how much of the trajectory was served from cache.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.api.config import SolveConfig
from repro.api.report import SolveReport
from repro.exceptions import ModelError
from repro.scenarios.elastic import with_total_demand
from repro.scenarios.trace import DemandTrace
from repro.serve.service import ServiceStats, SolveService
from repro.study.store import ArtifactStore
from repro.utils.tables import format_table

__all__ = ["TraceStep", "TraceReport", "replay_trace"]


@dataclass(frozen=True)
class TraceStep:
    """One solved step of a trace replay."""

    index: int
    demand: float
    beta: Optional[float]
    price_of_anarchy: Optional[float]
    induced_cost: float
    optimum_cost: float
    wall_time: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {"index": self.index, "demand": self.demand,
                "beta": self.beta,
                "price_of_anarchy": self.price_of_anarchy,
                "induced_cost": self.induced_cost,
                "optimum_cost": self.optimum_cost,
                "wall_time": self.wall_time}

    @classmethod
    def from_report(cls, index: int, demand: float,
                    report: SolveReport) -> "TraceStep":
        """The step record of one solved report."""
        return cls(index=index, demand=float(demand), beta=report.beta,
                   price_of_anarchy=report.price_of_anarchy,
                   induced_cost=report.induced_cost,
                   optimum_cost=report.optimum_cost,
                   wall_time=report.wall_time)


@dataclass
class TraceReport:
    """Outcome of one trace replay.

    ``stats`` is the :class:`~repro.serve.ServiceStats` *delta* of this
    replay: ``tier1_hits`` / ``tier2_hits`` count steps served from memory /
    disk, ``coalesced`` counts steps that attached to an identical in-flight
    step, and ``batched_requests`` counts the steps that actually reached a
    solver — zero on a fully resumed replay.
    """

    trace: Dict[str, Any]
    strategy: str
    steps: List[TraceStep] = field(default_factory=list)
    reports: List[SolveReport] = field(default_factory=list)
    stats: Optional[ServiceStats] = None
    seconds: float = 0.0

    @property
    def solver_calls(self) -> int:
        """Steps that reached a solver during this replay."""
        return 0 if self.stats is None else self.stats.batched_requests

    @property
    def fully_resumed(self) -> bool:
        """Whether the whole replay was served without any solver work."""
        return self.solver_calls == 0

    @property
    def num_distinct_levels(self) -> int:
        """Distinct demand levels the trace visits."""
        return len(dict.fromkeys(step.demand for step in self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def summary(self) -> str:
        """One-line digest of the replay's warm-start accounting."""
        stats = self.stats
        hits = 0 if stats is None else stats.tier1_hits + stats.tier2_hits
        coalesced = 0 if stats is None else stats.coalesced
        return (f"replayed {len(self.steps)} steps "
                f"({self.num_distinct_levels} distinct levels) in "
                f"{self.seconds:.3f}s | {hits} cache hits, "
                f"{coalesced} coalesced, {self.solver_calls} solver calls"
                + (" (fully resumed)" if self.fully_resumed else ""))

    def to_table(self) -> str:
        """Human-readable per-step table."""
        rows = [(s.index, f"{s.demand:.6g}",
                 "-" if s.beta is None else f"{s.beta:.6f}",
                 "-" if s.price_of_anarchy is None
                 else f"{s.price_of_anarchy:.6f}",
                 f"{s.induced_cost:.6g}", f"{s.optimum_cost:.6g}")
                for s in self.steps]
        return format_table(
            ("step", "demand", "beta", "PoA", "C(S+T)", "C(O)"), rows,
            title=f"Trace replay ({self.strategy})")

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {
            "trace": dict(self.trace),
            "strategy": self.strategy,
            "steps": [step.to_dict() for step in self.steps],
            "stats": None if self.stats is None else self.stats.to_dict(),
            "seconds": self.seconds,
            "solver_calls": self.solver_calls,
            "fully_resumed": self.fully_resumed,
            "num_distinct_levels": self.num_distinct_levels,
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise to JSON."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def _stats_delta(before: ServiceStats, after: ServiceStats) -> ServiceStats:
    """The per-replay difference of two cumulative stats snapshots."""
    names = ("requests", "tier1_hits", "tier2_hits", "coalesced", "enqueued",
             "rejected", "probing", "batches", "batched_requests",
             "batch_failures", "cache_put_failures", "pool_restarts",
             "worker_restarts")
    diff = {name: getattr(after, name) - getattr(before, name)
            for name in names}
    return ServiceStats(queue_peak=after.queue_peak, pending=after.pending,
                        cache={}, **diff)


def replay_trace(instance: Any, trace: DemandTrace,
                 strategy: Optional[str] = None, *,
                 config: Optional[SolveConfig] = None,
                 store: Optional[ArtifactStore] = None,
                 service: Optional[SolveService] = None,
                 max_batch: int = 32, max_wait_ms: float = 1.0,
                 max_workers: Optional[int] = 0,
                 timeout: float = 300.0) -> TraceReport:
    """Solve every step of ``trace`` on ``instance`` through a service.

    Parameters
    ----------
    instance:
        The base instance; each step runs on
        :func:`~repro.scenarios.elastic.with_total_demand` at the step's
        level.
    trace:
        The demand trajectory to replay.
    strategy / config:
        Forwarded to every step's solve (``None`` selects the
        Price-of-Optimum algorithm / the default config).
    store:
        Optional artifact store used as the service's tier-2 cache; a second
        replay against the same store resumes with zero solver calls.
    service:
        A running :class:`~repro.serve.SolveService` to share; when omitted
        a private one is built (with ``store``) and shut down afterwards.
    max_batch / max_wait_ms / max_workers:
        Forwarded to the private service (ignored when ``service`` given).
    timeout:
        Per-step future timeout in seconds.
    """
    if not isinstance(trace, DemandTrace):
        raise ModelError(
            f"trace must be a DemandTrace, got {type(trace).__name__}")
    config = SolveConfig() if config is None else config
    own_service = service is None
    if own_service:
        # The replay submits a known, finite number of steps all at once;
        # an unbounded queue is correct here (backpressure would abort a
        # long trace mid-replay), unlike the serving default.
        service = SolveService(store=store, max_batch=max_batch,
                               max_wait_ms=max_wait_ms,
                               max_workers=max_workers, max_queue=0)
    report = TraceReport(trace=trace.to_dict(),
                         strategy="auto" if strategy is None else strategy)
    before = service.stats()
    start = time.perf_counter()
    try:
        service.start()
        futures = [
            service.submit(with_total_demand(instance, level), strategy,
                           config=config)
            for level in trace.levels]
        solved = [future.result(timeout=timeout) for future in futures]
    finally:
        if own_service:
            service.shutdown(wait=True, timeout=timeout)
    report.seconds = time.perf_counter() - start
    report.stats = _stats_delta(before, service.stats())
    report.reports = solved
    report.steps = [
        TraceStep.from_report(i, level, step_report)
        for i, (level, step_report) in enumerate(zip(trace.levels, solved))]
    return report
