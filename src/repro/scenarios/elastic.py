"""Elastic-demand fixed-point driver: the realised rate of an open system.

With *fixed* demand the routing game takes the total rate ``r`` as given.
Under **elastic demand** the rate itself is endogenous: an inverse-demand
curve ``D(q)`` (:mod:`repro.scenarios.demand`) states the marginal
willingness to pay for the ``q``-th unit of flow, and flow enters the system
until that willingness meets the per-unit cost the entrants experience — the
Wardrop level of the selfish followers.  Because the level is non-decreasing
in the total rate (the water-filling structure stays convex) and ``D`` is
non-increasing, the equilibrium condition ``D(q) = level(q)`` is a monotone
scalar root problem; :func:`solve_elastic` brackets and bisects it.

On parallel links each bisection step is one vectorised
:func:`~repro.equilibrium.parallel.water_fill` call over the instance's
cached :class:`~repro.latency.batch.LatencyBatch` — no strategy solve
happens until the rate has converged.  On (single-commodity) networks the
level is the common path latency of the Nash flow, obtained as
``C(N)/q`` from one equilibrium solve per step.

Once the realised rate ``q*`` is found, the requested *strategy* (OpTop by
default) runs once on the instance re-scaled to ``q*`` through the standard
:func:`repro.api.solve` path — or through
:func:`repro.study.solve_cell` when an artifact store is supplied, so
elastic sweeps resume like every other study.  The result is an
:class:`ElasticReport`: the inner :class:`~repro.api.SolveReport` plus the
realised rate, the market price (equilibrium level) and the consumer
surplus under the curve.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

from repro.api.config import SolveConfig
from repro.api.dispatch import PARALLEL, resolve_instance_kind
from repro.api.report import SolveReport
from repro.equilibrium.network import network_nash
from repro.equilibrium.parallel import water_fill
from repro.exceptions import ConvergenceError, ModelError
from repro.scenarios.demand import DemandCurve, demand_curve_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.study.store import ArtifactStore

__all__ = ["ElasticReport", "solve_elastic", "wardrop_level", "with_total_demand"]


def with_total_demand(instance: Any, demand: float) -> Any:
    """A copy of ``instance`` whose *total* demand is ``demand``.

    Parallel-link instances are rebuilt through
    :meth:`~repro.network.parallel.ParallelLinkInstance.with_demand`;
    network instances have every commodity scaled proportionally through
    :meth:`~repro.network.instance.NetworkInstance.with_demands`.
    """
    demand = float(demand)
    if hasattr(instance, "with_demand"):
        return instance.with_demand(demand)
    if hasattr(instance, "with_demands"):
        total = float(instance.total_demand)
        if total <= 0.0:
            raise ModelError(
                "cannot re-scale a network instance with zero total demand")
        scale = demand / total
        return instance.with_demands(
            [commodity.demand * scale for commodity in instance.commodities])
    raise ModelError(
        f"cannot set the demand of {type(instance).__name__}; expected a "
        f"with_demand or with_demands method")


def _capacity(instance: Any) -> float:
    """Total routable flow of the instance (``inf`` when unbounded)."""
    if resolve_instance_kind(instance) == PARALLEL:
        return float(sum(lat.domain_upper for lat in instance.latencies))
    return math.inf


def wardrop_level(instance: Any, demand: float, *,
                  config: Optional[SolveConfig] = None) -> float:
    """Per-unit equilibrium cost the followers experience at rate ``demand``.

    Parallel links: the common latency of the Nash water-filling solve (one
    vectorised :func:`~repro.equilibrium.parallel.water_fill` call over the
    instance's cached batch).  Single-commodity networks: the common path
    latency of the Nash flow, ``C(N) / demand`` (at zero demand, the
    free-flow shortest-path distance).
    """
    config = SolveConfig() if config is None else config
    demand = float(demand)
    if demand < 0.0:
        raise ModelError(f"demand must be >= 0, got {demand!r}")
    if resolve_instance_kind(instance) == PARALLEL:
        backend = config.kernel_backend
        batch = None if backend == "reference" else instance.latency_batch()
        _, level = water_fill(instance.latencies, demand, "nash",
                              tol=config.water_fill_tol, backend=backend,
                              batch=batch)
        return float(level)
    if not instance.is_single_commodity:
        raise ModelError(
            "elastic demand needs a single-commodity network (the level is "
            "the common path latency of the one commodity)")
    if demand == 0.0:
        import numpy as np

        from repro.paths.dijkstra import shortest_distances

        free_flow = instance.latencies_at(
            np.zeros(instance.network.num_edges))
        distances, _ = shortest_distances(instance.network, instance.source,
                                          free_flow)
        return float(distances[instance.sink])
    result = network_nash(with_total_demand(instance, demand), config=config)
    return float(result.cost) / demand


@dataclass(frozen=True)
class ElasticReport:
    """Outcome of one elastic-demand solve.

    Attributes
    ----------
    report:
        The inner :class:`~repro.api.SolveReport` of the requested strategy
        at the realised rate.
    curve:
        The inverse-demand curve, serialised (``demand_curve_from_dict``
        inverts it).
    realised_rate:
        The equilibrium total rate ``q*`` with ``D(q*) = level(q*)``.
    price:
        The market-clearing per-unit cost (the Wardrop level at ``q*``).
    consumer_surplus:
        ``int_0^{q*} D(t) dt - q* * price``: the net benefit the routed
        flow derives under the curve.
    iterations:
        Bisection steps the fixed point took.
    metadata:
        Driver details (bracket, residual, instance kind).
    """

    report: SolveReport
    curve: Dict[str, Any]
    realised_rate: float
    price: float
    consumer_surplus: float
    iterations: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    # Delegated conveniences -------------------------------------------- #
    @property
    def beta(self) -> Optional[float]:
        """The Price of Optimum at the realised rate (strategy-dependent)."""
        return self.report.beta

    @property
    def price_of_anarchy(self) -> Optional[float]:
        """The price of anarchy at the realised rate."""
        return self.report.price_of_anarchy

    @property
    def demand_curve(self) -> DemandCurve:
        """The curve as a live object."""
        return demand_curve_from_dict(self.curve)

    # Serialisation ----------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {
            "report": self.report.to_dict(),
            "curve": dict(self.curve),
            "realised_rate": self.realised_rate,
            "price": self.price,
            "consumer_surplus": self.consumer_surplus,
            "iterations": self.iterations,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ElasticReport":
        """Reconstruct a report serialised by :meth:`to_dict`."""
        if not isinstance(data, Mapping) or "report" not in data:
            raise ModelError(f"invalid ElasticReport payload: {data!r}")
        return cls(
            report=SolveReport.from_dict(data["report"]),
            curve=dict(data["curve"]),
            realised_rate=float(data["realised_rate"]),
            price=float(data["price"]),
            consumer_surplus=float(data["consumer_surplus"]),
            iterations=int(data["iterations"]),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise to JSON; :meth:`from_json` inverts this losslessly."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ElasticReport":
        """Reconstruct a report serialised by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelError(f"invalid ElasticReport JSON: {exc}") from exc
        return cls.from_dict(data)

    def summary(self) -> str:
        """One-line human-readable digest."""
        beta = "-" if self.beta is None else f"{self.beta:.4f}"
        return (f"elastic[{self.report.strategy}] rate={self.realised_rate:.6g} "
                f"price={self.price:.6g} surplus={self.consumer_surplus:.6g} "
                f"beta={beta}")


def solve_elastic(instance: Any, curve: DemandCurve,
                  strategy: Optional[str] = None, *,
                  config: Optional[SolveConfig] = None,
                  rate_tol: float = 1e-9, max_iterations: int = 200,
                  store: "Optional[ArtifactStore]" = None) -> ElasticReport:
    """Solve the elastic-demand equilibrium and run a strategy at its rate.

    Parameters
    ----------
    instance:
        A parallel-link or single-commodity network instance; its built-in
        demand is ignored (the curve decides the rate).
    curve:
        The inverse-demand curve ``D(q)``.
    strategy:
        Registry name run at the realised rate (``None``/``"auto"`` selects
        the Price-of-Optimum algorithm), exactly as in
        :func:`repro.api.solve`.
    config:
        Solver settings shared by the level evaluations and the final solve.
    rate_tol:
        Absolute tolerance on the realised rate.
    max_iterations:
        Bisection-step cap for the fixed point.
    store:
        Optional artifact store; the final static solve then runs through
        :func:`repro.study.solve_cell` and resumes across runs.

    Raises
    ------
    ModelError
        When the market does not open: ``D(0)`` does not exceed the
        equilibrium cost at zero flow, so no flow wants to enter.
    """
    if not isinstance(curve, DemandCurve):
        raise ModelError(
            f"curve must be a DemandCurve, got {type(curve).__name__}")
    config = SolveConfig() if config is None else config

    def gap(rate: float) -> float:
        return curve.price_at(rate) - wardrop_level(instance, rate,
                                                    config=config)

    zero_level = wardrop_level(instance, 0.0, config=config)
    if curve.price_at(0.0) <= zero_level + rate_tol:
        raise ModelError(
            f"the demand curve admits no positive rate: D(0) = "
            f"{curve.price_at(0.0)!r} does not exceed the zero-flow "
            f"equilibrium cost {zero_level!r}")

    capacity = _capacity(instance)
    cap = capacity * (1.0 - 1e-9) if math.isfinite(capacity) else math.inf
    hi = min(curve.max_rate, cap)
    iterations = 0
    if not math.isfinite(hi):
        # Expand a doubling bracket until the willingness to pay falls
        # below the level (both monotone, so this terminates).
        hi = 1.0
        while gap(hi) > 0.0:
            hi *= 2.0
            iterations += 1
            if iterations > max_iterations:
                raise ConvergenceError(
                    f"could not bracket the elastic rate within "
                    f"{max_iterations} doublings (reached rate {hi!r})")
    lo = 0.0
    while hi - lo > rate_tol and iterations < max_iterations:
        mid = 0.5 * (lo + hi)
        if gap(mid) > 0.0:
            lo = mid
        else:
            hi = mid
        iterations += 1
    rate = 0.5 * (lo + hi)

    level = wardrop_level(instance, rate, config=config)
    scaled = with_total_demand(instance, rate)
    from repro.api.session import resolve_strategy_name, solve
    from repro.study.runner import solve_cell

    name = resolve_strategy_name(strategy)
    if store is not None:
        report = solve_cell(scaled, name, config, store=store)
    else:
        report = solve(scaled, name, config=config)
    return ElasticReport(
        report=report,
        curve=curve.to_dict(),
        realised_rate=float(rate),
        price=float(level),
        consumer_surplus=float(curve.consumer_surplus(rate, level)),
        iterations=iterations,
        metadata={
            "instance_kind": resolve_instance_kind(instance),
            "residual": curve.price_at(rate) - level,
            "rate_tol": rate_tol,
            "zero_level": zero_level,
        },
    )
