"""The runtime half of fault injection: drawing faults at hook sites.

Production code never imports fault *logic* — it carries an optional
injector reference (``None`` by default) and asks it one question at each
hook site::

    if self._faults is not None:
        self._faults.raise_solver_faults()        # serving layer
    ...
    if self._faults is not None and self._faults.draw("conn_drop"):
        writer.close(); return                    # worker response path

With the default ``None`` the hook is a single attribute check — the
happy path stays free.  An active :class:`FaultInjector` is built from a
:class:`~repro.faults.spec.FaultPlan`; each spec keeps a private seeded
RNG and an invocation counter (lock-guarded — injection sites run on
dispatcher threads, submit threads and the asyncio loop), so triggers are
deterministic per plan over a given call sequence.  Every trigger is
counted in :meth:`FaultInjector.stats`, which chaos reports surface as
``injected``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional

from repro.exceptions import FaultInjectedError
from repro.faults.spec import FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class _ArmedSpec:
    """One spec plus its runtime state (counter, RNG, triggers so far)."""

    __slots__ = ("spec", "rng", "calls", "triggers")

    def __init__(self, spec: FaultSpec, plan_seed: int, index: int) -> None:
        self.spec = spec
        # A string seed hashes via SHA-512 inside random.Random — stable
        # across processes and runs, unlike hash()-based tuple seeding.
        self.rng = random.Random(
            f"{plan_seed}:{index}:{spec.seed}:{spec.kind}")
        self.calls = 0
        self.triggers = 0

    def draw(self) -> bool:
        """Advance this spec's counter; decide whether it fires now."""
        self.calls += 1
        limit = self.spec.max_triggers
        if limit is not None and self.triggers >= limit:
            return False
        fired = False
        if self.spec.nth_call is not None:
            fired = self.calls == self.spec.nth_call
        elif self.spec.probability > 0.0:
            fired = self.rng.random() < self.spec.probability
        if fired:
            self.triggers += 1
        return fired


class FaultInjector:
    """Deterministic, seeded fault source built from a :class:`FaultPlan`.

    Thread-safe: one injector may be shared by a service's submit threads,
    its dispatcher, the artifact store and an asyncio connection handler.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._armed: Dict[str, List[_ArmedSpec]] = {}
        for index, spec in enumerate(plan.specs):
            self._armed.setdefault(spec.kind, []).append(
                _ArmedSpec(spec, plan.seed, index))

    @classmethod
    def from_plan(cls, plan: Optional[FaultPlan]) -> Optional["FaultInjector"]:
        """``None`` for an empty/absent plan — the zero-overhead default."""
        if plan is None or not plan.specs:
            return None
        return cls(plan)

    # ------------------------------------------------------------------ #
    # Drawing
    # ------------------------------------------------------------------ #
    def draw(self, kind: str) -> Optional[FaultSpec]:
        """Advance the site counter for ``kind``; the spec that fired, if any.

        Every armed spec of the kind advances on each call; the first one
        that fires wins (at most one fault per site invocation).
        """
        with self._lock:
            for armed in self._armed.get(kind, ()):
                if armed.draw():
                    return armed.spec
        return None

    def raise_solver_faults(self) -> None:
        """The serving layer's batch hook: maybe delay, maybe crash.

        ``solver_delay`` sleeps its ``delay_ms`` (holding no locks);
        ``solver_crash`` raises :class:`FaultInjectedError`, which the
        service's batch-failure containment turns into failed futures —
        never a lost request.
        """
        delay = self.draw("solver_delay")
        if delay is not None and delay.delay_ms > 0.0:
            time.sleep(delay.delay_ms / 1000.0)
        if self.draw("solver_crash") is not None:
            raise FaultInjectedError(
                "injected solver crash (fault plan "
                f"{self.plan.name!r})")

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Triggered-fault counts per kind (only kinds that fired)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for kind, specs in self._armed.items():
                total = sum(armed.triggers for armed in specs)
                if total:
                    counts[kind] = total
            return counts

    def total_injected(self) -> int:
        return sum(self.stats().values())
