"""Declarative fault plans: what to break, where, and when.

A :class:`FaultSpec` names one *kind* of fault (its injection site), a
deterministic trigger — either ``nth_call`` (fire on exactly the Nth
invocation of that site) or a seeded ``probability`` per invocation — and
optional kind-specific parameters (``delay_ms`` for ``solver_delay``,
``max_triggers`` to bound repeat firings).  A :class:`FaultPlan` is a named
list of specs plus a base seed; both round-trip losslessly through JSON, so
a chaos scenario is a *file* you can pin in CI, diff in review and replay
byte-for-byte.

The taxonomy (one row per kind; the site column names the hook that draws
it):

==========================  ============================================
kind                        injected at
==========================  ============================================
``solver_crash``            ``SolveService`` batch execution (raises
                            :class:`~repro.exceptions.FaultInjectedError`)
``solver_delay``            ``SolveService`` batch execution (sleeps
                            ``delay_ms`` before solving)
``store_torn_write``        ``ArtifactStore.put`` (writes a truncated
                            artifact, simulating a torn write)
``store_corrupt_artifact``  ``ArtifactStore.put`` (flips payload bytes,
                            so a later ``get`` must quarantine)
``store_enospc``            ``ArtifactStore.put`` (raises
                            ``OSError(ENOSPC)``)
``conn_drop``               worker response path (closes the connection
                            without answering)
``response_truncate``       worker response path (ships half the
                            response bytes, then closes)
``worker_sigkill``          worker solve path (``SIGKILL``s the worker's
                            own process)
==========================  ============================================

Determinism: every probabilistic spec owns a private ``random.Random``
seeded from ``(plan.seed, spec index, spec seed)``, and ``nth_call``
triggers count invocations of the spec's site — so a pinned plan replayed
over the same call sequence injects the same faults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ModelError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "named_plans"]

#: Every fault kind the injector knows how to draw (site == kind).
FAULT_KINDS = (
    "solver_crash",
    "solver_delay",
    "store_torn_write",
    "store_corrupt_artifact",
    "store_enospc",
    "conn_drop",
    "response_truncate",
    "worker_sigkill",
)

#: Kinds that kill or wedge the injecting process itself; a supervisor
#: respawning a worker strips these from the replacement's plan so a
#: bounded restart budget cannot be burned by the same scripted kill.
PROCESS_FATAL_KINDS = frozenset({"worker_sigkill"})


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: a kind, a trigger and its parameters."""

    #: One of :data:`FAULT_KINDS`; doubles as the injection site name.
    kind: str
    #: Fire on exactly the Nth invocation of the site (1-based).
    nth_call: Optional[int] = None
    #: Per-invocation trigger probability (seeded, deterministic).
    probability: float = 0.0
    #: Extra seed component, so two specs of the same kind diverge.
    seed: int = 0
    #: Stop firing after this many triggers (``None`` = unbounded for
    #: probability triggers; ``nth_call`` triggers fire exactly once).
    max_triggers: Optional[int] = None
    #: Sleep length for ``solver_delay`` (milliseconds).
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ModelError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.nth_call is not None and int(self.nth_call) < 1:
            raise ModelError(
                f"nth_call must be >= 1, got {self.nth_call!r}")
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ModelError(
                f"probability must be in [0, 1], got {self.probability!r}")
        if self.nth_call is None and self.probability == 0.0:
            raise ModelError(
                f"fault spec {self.kind!r} can never trigger: give it an "
                f"nth_call or a probability")
        if float(self.delay_ms) < 0.0:
            raise ModelError(f"delay_ms must be >= 0, got {self.delay_ms!r}")

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        if self.nth_call is not None:
            data["nth_call"] = int(self.nth_call)
        if self.probability:
            data["probability"] = float(self.probability)
        if self.seed:
            data["seed"] = int(self.seed)
        if self.max_triggers is not None:
            data["max_triggers"] = int(self.max_triggers)
        if self.delay_ms:
            data["delay_ms"] = float(self.delay_ms)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        try:
            return cls(
                kind=str(data["kind"]),
                nth_call=(None if data.get("nth_call") is None
                          else int(data["nth_call"])),  # type: ignore[arg-type]
                probability=float(data.get("probability", 0.0)),  # type: ignore[arg-type]
                seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                max_triggers=(None if data.get("max_triggers") is None
                              else int(data["max_triggers"])),  # type: ignore[arg-type]
                delay_ms=float(data.get("delay_ms", 0.0)),  # type: ignore[arg-type]
            )
        except ModelError:
            raise
        except Exception as exc:  # noqa: BLE001 - malformed plan input
            raise ModelError(f"malformed fault spec {data!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of :class:`FaultSpec`\\ s (JSON round-trippable)."""

    name: str = "unnamed"
    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def kinds(self) -> List[str]:
        """The distinct fault kinds the plan injects (sorted)."""
        return sorted({spec.kind for spec in self.specs})

    def without(self, kinds) -> "FaultPlan":
        """A copy with every spec of the given ``kinds`` removed.

        Used by the worker supervisor: a respawned worker keeps the plan
        minus :data:`PROCESS_FATAL_KINDS`, so the scripted SIGKILL cannot
        exhaust the restart budget by re-firing in every replacement.
        """
        kinds = frozenset(kinds)
        return FaultPlan(name=self.name, seed=self.seed,
                         specs=tuple(spec for spec in self.specs
                                     if spec.kind not in kinds))

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "seed": int(self.seed),
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        try:
            specs = tuple(FaultSpec.from_dict(entry)
                          for entry in data.get("specs", []))  # type: ignore[union-attr]
            return cls(name=str(data.get("name", "unnamed")),
                       seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                       specs=specs)
        except ModelError:
            raise
        except Exception as exc:  # noqa: BLE001 - malformed plan input
            raise ModelError(f"malformed fault plan: {exc}") from exc

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, source: Union[str, Path]) -> "FaultPlan":
        """A plan by built-in name, from a JSON file path, or inline JSON.

        Inline JSON (anything starting with ``{``) is how the launcher
        ships a *derived* plan — e.g. a respawned worker's plan with the
        process-fatal kinds stripped — on a worker command line without a
        scratch file.
        """
        text = str(source)
        plans = named_plans()
        if text in plans:
            return plans[text]
        if text.lstrip().startswith("{"):
            return cls.from_json(text)
        path = Path(source)
        if not path.exists():
            raise ModelError(
                f"no fault plan named {source!r} and no such file; built-in "
                f"plans: {', '.join(sorted(plans))}")
        return cls.from_json(path.read_text(encoding="utf-8"))


def named_plans() -> Dict[str, FaultPlan]:
    """The built-in fault plans (fresh instances each call).

    ``smoke``
        The CI chaos scenario: one scripted worker SIGKILL, a seeded 20%
        chance of corrupting each stored artifact, and a seeded 5% chance
        of dropping any worker connection — the combination that exercises
        respawn, quarantine and gateway failover in one run.
    ``slow_solver``
        Every 7th batch sleeps 50 ms; surfaces deadline expiries without
        any hard failure.
    ``bad_disk``
        Torn writes and ENOSPC on the artifact store; exercises
        ``cache_put_failures`` and read-side quarantine with no cluster
        involvement needed.
    """
    return {
        "smoke": FaultPlan(name="smoke", seed=0xC405, specs=(
            FaultSpec(kind="worker_sigkill", nth_call=8),
            FaultSpec(kind="store_corrupt_artifact", probability=0.2),
            FaultSpec(kind="conn_drop", probability=0.05, max_triggers=6),
        )),
        "slow_solver": FaultPlan(name="slow_solver", seed=7, specs=(
            FaultSpec(kind="solver_delay", probability=1 / 7,
                      delay_ms=50.0),
        )),
        "bad_disk": FaultPlan(name="bad_disk", seed=11, specs=(
            FaultSpec(kind="store_torn_write", probability=0.15),
            FaultSpec(kind="store_enospc", probability=0.1),
        )),
    }
