"""repro.faults — deterministic fault injection for the serving fabric.

The package has three faces:

* :class:`FaultSpec` / :class:`FaultPlan` (:mod:`repro.faults.spec`) — the
  declarative side: which fault kinds fire, on which seeded trigger,
  round-trippable through JSON so a chaos scenario can be pinned in CI.
* :class:`FaultInjector` (:mod:`repro.faults.injector`) — the runtime side:
  production components carry an optional injector (``None`` by default,
  one attribute check of overhead) and draw faults at their hook sites.
* :func:`run_chaos` / :class:`ChaosReport` (:mod:`repro.faults.chaos`) —
  the harness: replay a workload through a live cluster under a plan and
  assert the degradation invariants (no lost requests, typed errors only,
  stats still partition).

Exercised from the command line as ``repro chaos run --plan smoke``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import (FAULT_KINDS, PROCESS_FATAL_KINDS, FaultPlan,
                               FaultSpec, named_plans)

__all__ = [
    "FAULT_KINDS",
    "PROCESS_FATAL_KINDS",
    "FaultSpec",
    "FaultPlan",
    "named_plans",
    "FaultInjector",
    "run_chaos",
    "ChaosReport",
]


def __getattr__(name):
    # The chaos harness drives a live cluster, so repro.faults.chaos imports
    # the launcher — whose worker in turn imports repro.faults.spec.  Loading
    # it lazily keeps the hook-site imports (spec/injector) cycle-free.
    if name in ("run_chaos", "ChaosReport"):
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
