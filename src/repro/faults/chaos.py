"""The chaos harness: replay a workload through a faulted cluster.

:func:`run_chaos` drives the serving bench's synthetic hot-key stream
(:func:`repro.serve.bench.build_workload`) through a real multi-process
cluster armed with a :class:`~repro.faults.spec.FaultPlan`, with worker
supervision on, and checks the **degradation contract** the rest of this
package exists to enforce:

1. *no lost requests* — every submitted request resolves (a hung future
   is a violation, not a wait);
2. *typed failures only* — whatever a request resolves to is either a
   correct :class:`~repro.api.report.SolveReport` or a
   :class:`~repro.exceptions.ServiceError` subclass; a raw
   ``ConnectionError``/``JSONDecodeError`` escaping the stack is a
   violation;
3. *correct results* — every report matches an independently solved
   reference for its instance (faults may fail a request; they may never
   corrupt an answer);
4. *exact accounting* — the cluster's merged
   :class:`~repro.serve.ServiceStats` buckets still partition its
   requests, fault storm or not.

The outcome is a :class:`ChaosReport`: pass/fail plus everything a CI log
wants (error histogram, faults injected, workers respawned, artifacts
quarantined, warm-sweep hits).  ``repro chaos run`` is the CLI face.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api import solve
from repro.api.config import SolveConfig
from repro.exceptions import ServiceError
from repro.faults.spec import FaultPlan

__all__ = ["ChaosReport", "run_chaos"]

#: Per-request result timeout: long enough for respawn storms on a busy
#: CI box, short enough that a genuinely lost future fails the run.
_RESULT_TIMEOUT = 180.0


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` run (JSON-compatible)."""

    plan: str
    seed: int
    steps: int
    seconds: float = 0.0
    #: Requests that resolved to a correct report.
    ok: int = 0
    #: Requests that resolved to a typed ServiceError.
    failed: int = 0
    #: Failure histogram by exception type name.
    errors: Dict[str, int] = field(default_factory=dict)
    #: ServiceTimeoutError failures (subset of ``failed``).
    timeouts: int = 0
    #: Worker processes respawned by the supervisor.
    respawns: int = 0
    #: Damaged artifacts quarantined by the shared store.
    quarantined: int = 0
    #: Faults the (surviving) workers report having injected, by kind.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Cache hits served during the post-trace warm sweep.
    warm_sweep_hits: int = 0
    #: Hits served by respawned workers' current incarnations.
    respawned_worker_hits: int = 0
    #: Final merged cross-shard ServiceStats snapshot.
    merged: Dict[str, Any] = field(default_factory=dict)
    #: Final gateway counters.
    gateway: Dict[str, int] = field(default_factory=dict)
    #: Metrics-registry snapshot of the final cluster stats (the same
    #: numbers as ``merged``/``gateway``, projected through
    #: :mod:`repro.obs.collect` — what a ``/metrics`` scrape would show).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Broken invariants (empty = the degradation contract held).
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every invariant held for every request."""
        return not self.violations and self.ok + self.failed == self.steps

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan, "seed": self.seed, "steps": self.steps,
            "seconds": self.seconds, "ok": self.ok, "failed": self.failed,
            "errors": dict(self.errors), "timeouts": self.timeouts,
            "respawns": self.respawns, "quarantined": self.quarantined,
            "injected": dict(self.injected),
            "warm_sweep_hits": self.warm_sweep_hits,
            "respawned_worker_hits": self.respawned_worker_hits,
            "merged": dict(self.merged), "gateway": dict(self.gateway),
            "metrics": dict(self.metrics),
            "violations": list(self.violations), "passed": self.passed,
        }

    def summary(self) -> str:
        """A compact human-readable table for CLI / CI logs."""
        lines = [
            f"chaos run · plan {self.plan!r} · seed {self.seed} "
            f"· {self.steps} steps · {self.seconds:.2f}s",
            f"  resolved : {self.ok} ok, {self.failed} typed failures "
            f"({self.timeouts} deadline expiries)",
        ]
        for name in sorted(self.errors):
            lines.append(f"    {name}: {self.errors[name]}")
        injected = ", ".join(f"{kind}={count}" for kind, count
                             in sorted(self.injected.items())) or "none"
        lines += [
            f"  injected : {injected}",
            f"  recovery : {self.respawns} respawns, "
            f"{self.quarantined} quarantined artifacts, "
            f"{self.warm_sweep_hits} warm-sweep hits "
            f"({self.respawned_worker_hits} on respawned workers)",
            f"  verdict  : "
            + ("PASS — degradation contract held"
               if self.passed else
               "FAIL — " + "; ".join(self.violations)),
        ]
        return "\n".join(lines)


def _await_all_alive(cluster, timeout: float = 30.0) -> None:
    """Block until every worker answers ``/health`` (or ``timeout``).

    ``health()`` half-open-probes any cooled-down breaker, so a respawned
    worker flips back to alive here; a worker whose restart budget is
    exhausted never will — hence the bound, after which the caller just
    proceeds with whatever is up.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = cluster.health()
        if all(entry["alive"] for entry in health["workers"].values()):
            return
        time.sleep(0.1)


def run_chaos(plan: Union[FaultPlan, str], *, steps: int = 50,
              n_workers: int = 2, num_distinct: int = 16,
              num_links: int = 4, seed: int = 0,
              strategy: str = "optop",
              deadline_ms: Optional[float] = None,
              store_dir: Optional[str] = None,
              max_respawns: int = 3,
              max_wait_ms: float = 5.0) -> ChaosReport:
    """Replay a ``steps``-request trace through a faulted cluster.

    ``plan`` is a :class:`~repro.faults.spec.FaultPlan`, a built-in plan
    name or a plan-JSON file path; every worker arms its injector with it
    and the supervisor (always on here — chaos without recovery is just
    vandalism) respawns killed workers up to ``max_respawns`` times each.
    ``deadline_ms`` (optional) attaches an end-to-end deadline to every
    request, exercising the 504 path.  Returns a :class:`ChaosReport`;
    see the module docstring for the invariants it checks.
    """
    # Imported here: the launcher (and its worker) imports repro.faults.spec,
    # so a module-level import would cycle through the package.
    from repro.cluster.launcher import start_cluster
    from repro.serve.bench import build_workload

    if isinstance(plan, str):
        plan = FaultPlan.load(plan)
    steps = int(steps)
    instances, schedule = build_workload(
        num_requests=steps, num_distinct=min(int(num_distinct), steps),
        num_links=num_links, seed=seed)
    config = SolveConfig(compute_nash=False)
    # Independent references: a fault may fail a request, never corrupt
    # its answer.  Solved locally, before any fault is armed.
    expected = {index: solve(instance, strategy, config=config)
                for index, instance in enumerate(instances)}

    report = ChaosReport(plan=plan.name, seed=seed, steps=steps)
    started = time.perf_counter()
    with start_cluster(n_workers=n_workers, store_dir=store_dir,
                       max_wait_ms=max_wait_ms, supervise=True,
                       max_respawns=max_respawns,
                       fault_plan=plan) as cluster:
        futures = []
        for index in schedule:
            deadline = None if deadline_ms is None \
                else time.monotonic() + deadline_ms / 1e3
            futures.append((index, cluster.submit(
                instances[index], strategy, config=config,
                deadline=deadline)))
        for index, future in futures:
            try:
                solved = future.result(timeout=_RESULT_TIMEOUT)
            except FutureTimeoutError:
                report.violations.append(
                    f"request for instance {index} hung past "
                    f"{_RESULT_TIMEOUT:.0f}s (lost request)")
                continue
            except ServiceError as exc:
                report.failed += 1
                name = type(exc).__name__
                report.errors[name] = report.errors.get(name, 0) + 1
                if name == "ServiceTimeoutError":
                    report.timeouts += 1
                continue
            except BaseException as exc:  # noqa: BLE001 - the violation
                report.violations.append(
                    f"untyped {type(exc).__name__} escaped the stack for "
                    f"instance {index}: {exc!r}")
                continue
            reference = expected[index]
            if solved.strategy != reference.strategy or not math.isclose(
                    solved.beta, reference.beta,
                    rel_tol=1e-9, abs_tol=1e-12):
                report.violations.append(
                    f"wrong answer for instance {index}: beta "
                    f"{solved.beta!r} != {reference.beta!r}")
                continue
            report.ok += 1

        # Warm sweep: every distinct key once more.  After any respawn the
        # replacement must serve previously solved keys from the shared
        # store (warm), not re-solve the world.  Let supervision settle
        # first: a SIGKILL landing on the trace's last calls can leave a
        # worker dead *here*, and sweeping before its replacement is up
        # (or snapshotting while its final counters are unreadable) makes
        # the hit delta racy.
        _await_all_alive(cluster)
        before_sweep = cluster.merged_stats()
        sweep = [(index, cluster.submit(instances[index], strategy,
                                        config=config))
                 for index in range(len(instances))]
        for index, future in sweep:
            try:
                future.result(timeout=_RESULT_TIMEOUT)
            except ServiceError:
                pass  # typed failures stay acceptable during the sweep
            except FutureTimeoutError:
                report.violations.append(
                    f"warm-sweep request {index} hung (lost request)")
            except BaseException as exc:  # noqa: BLE001 - the violation
                report.violations.append(
                    f"untyped {type(exc).__name__} in the warm sweep: "
                    f"{exc!r}")

        _await_all_alive(cluster)
        stats = cluster.stats()
        merged = cluster.merged_stats(refresh=False)
        report.warm_sweep_hits = max(0, merged.hits - before_sweep.hits)
        report.merged = merged.to_dict()
        report.gateway = dict(stats["gateway"])  # type: ignore[arg-type]
        from repro.obs.collect import collect_cluster_stats
        report.metrics = collect_cluster_stats(stats).snapshot()
        supervisor = stats.get("supervisor") or {}
        report.respawns = int(supervisor.get("worker_respawns", 0))
        for node_id, entry in stats["workers"].items():  # type: ignore[union-attr]
            if entry.get("respawns", 0) and entry.get("stats"):
                report.respawned_worker_hits += \
                    int(entry["stats"].get("hits", 0))
        health = cluster.health()
        for entry in health["workers"].values():  # type: ignore[union-attr]
            for kind, count in ((entry.get("health") or {}).get(
                    "faults_injected") or {}).items():
                report.injected[kind] = \
                    report.injected.get(kind, 0) + int(count)
        report.quarantined = sum(
            1 for _ in Path(cluster.store_dir).glob("??/*.json.corrupt.*"))
        if not merged.consistent:
            report.violations.append(
                "merged ServiceStats buckets no longer partition requests")
    report.seconds = time.perf_counter() - started
    return report
