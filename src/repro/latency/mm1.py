"""M/M/1 queueing latency, the family behind Korilis–Lazar–Orda instances."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import LatencyDomainError, ModelError
from repro.latency.base import ArrayLike, LatencyFunction

__all__ = ["MM1Latency"]


class MM1Latency(LatencyFunction):
    """M/M/1 expected delay ``l(x) = 1 / (capacity - x)`` for ``x < capacity``.

    This is the latency of a link modelled as an M/M/1 queue with service rate
    ``capacity`` (Korilis, Lazar and Orda study Stackelberg routing on systems
    of such links).  The function is strictly increasing and diverges at the
    capacity; evaluation at or beyond the capacity raises
    :class:`LatencyDomainError`.
    """

    __slots__ = ("capacity",)

    def __init__(self, capacity: float) -> None:
        if capacity <= 0.0:
            raise ModelError(f"M/M/1 capacity must be > 0, got {capacity!r}")
        self.capacity = float(capacity)

    @property
    def domain_upper(self) -> float:  # type: ignore[override]
        return self.capacity

    def _check_domain(self, x: ArrayLike) -> None:
        max_x = float(np.max(x)) if not np.isscalar(x) else float(x)
        if max_x >= self.capacity:
            raise LatencyDomainError(
                f"M/M/1 latency evaluated at load {max_x!r} >= capacity {self.capacity!r}")

    def value(self, x: ArrayLike) -> ArrayLike:
        self._check_domain(x)
        return 1.0 / (self.capacity - x) if np.isscalar(x) \
            else 1.0 / (self.capacity - np.asarray(x, dtype=float))

    def derivative(self, x: ArrayLike) -> ArrayLike:
        self._check_domain(x)
        diff = (self.capacity - x) if np.isscalar(x) \
            else (self.capacity - np.asarray(x, dtype=float))
        return 1.0 / (diff * diff)

    def integral(self, x: ArrayLike) -> ArrayLike:
        self._check_domain(x)
        if np.isscalar(x):
            return math.log(self.capacity / (self.capacity - x))
        x_arr = np.asarray(x, dtype=float)
        return np.log(self.capacity / (self.capacity - x_arr))

    def _clamp_inside(self, root: float) -> float:
        # At huge levels ``c - 1/y`` rounds to exactly ``c``, which lies
        # outside the open domain and would make any later ``value`` /
        # ``derivative`` call raise.  Clamp strictly inside, one ulp below
        # capacity — far below the water-filling tolerances.
        return min(root, math.nextafter(self.capacity, 0.0))

    def inverse_value(self, y: float) -> float:
        if y <= 1.0 / self.capacity:
            return 0.0
        return self._clamp_inside(self.capacity - 1.0 / y)

    def inverse_marginal(self, y: float) -> float:
        # marginal cost: 1/(c-x) + x/(c-x)^2 = c/(c-x)^2 ; solve c/(c-x)^2 = y.
        if y <= 1.0 / self.capacity:
            return 0.0
        return self._clamp_inside(self.capacity - math.sqrt(self.capacity / y))

    def marginal_cost(self, x: ArrayLike) -> ArrayLike:
        self._check_domain(x)
        diff = (self.capacity - x) if np.isscalar(x) \
            else (self.capacity - np.asarray(x, dtype=float))
        return self.capacity / (diff * diff)

    def __repr__(self) -> str:
        return f"MM1Latency(capacity={self.capacity!r})"
