"""Abstract base class for latency functions."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from repro.exceptions import LatencyDomainError
from repro.utils.rootfind import bisect_root, expand_upper_bracket

__all__ = ["LatencyFunction", "ArrayLike"]

ArrayLike = Union[float, np.ndarray]


class LatencyFunction(ABC):
    """A load-dependent latency function ``l(x)`` on a link or edge.

    Subclasses implement :meth:`value`, :meth:`derivative` and
    :meth:`integral`; everything else (marginal cost, link cost, inverses,
    shifting) is derived here.  All evaluation methods accept scalars or NumPy
    arrays and are vectorised element-wise.

    The paper's standing assumption (Remark 2.5) is that latencies are strictly
    increasing and that ``x*l(x)`` is convex; :attr:`is_constant` marks the
    documented extension to constant latencies.
    """

    #: Upper end of the domain (exclusive).  ``inf`` for most families;
    #: :class:`repro.latency.MM1Latency` overrides it with its capacity.
    domain_upper: float = math.inf

    # ------------------------------------------------------------------ #
    # Abstract calculus
    # ------------------------------------------------------------------ #
    @abstractmethod
    def value(self, x: ArrayLike) -> ArrayLike:
        """Latency ``l(x)`` at load ``x >= 0``."""

    @abstractmethod
    def derivative(self, x: ArrayLike) -> ArrayLike:
        """Derivative ``l'(x)`` at load ``x >= 0``."""

    @abstractmethod
    def integral(self, x: ArrayLike) -> ArrayLike:
        """Beckmann integral ``\\int_0^x l(t) dt``."""

    # ------------------------------------------------------------------ #
    # Derived calculus
    # ------------------------------------------------------------------ #
    def __call__(self, x: ArrayLike) -> ArrayLike:
        return self.value(x)

    def marginal_cost(self, x: ArrayLike) -> ArrayLike:
        """Marginal social cost ``(x*l(x))' = l(x) + x*l'(x)``."""
        return self.value(x) + np.asarray(x, dtype=float) * self.derivative(x) \
            if not np.isscalar(x) else self.value(x) + x * self.derivative(x)

    def link_cost(self, x: ArrayLike) -> ArrayLike:
        """Total cost ``x * l(x)`` incurred on the link at load ``x``."""
        if np.isscalar(x):
            return x * self.value(x)
        x_arr = np.asarray(x, dtype=float)
        return x_arr * self.value(x_arr)

    @property
    def value_at_zero(self) -> float:
        """Free-flow latency ``l(0)``."""
        return float(self.value(0.0))

    @property
    def is_constant(self) -> bool:
        """``True`` for constant (load-independent) latencies."""
        return False

    @property
    def is_strictly_increasing(self) -> bool:
        """``True`` when ``l`` is strictly increasing on its domain."""
        return not self.is_constant

    # ------------------------------------------------------------------ #
    # Inverses (numeric fallbacks; analytic families override)
    # ------------------------------------------------------------------ #
    def _numeric_inverse(self, func, y: float) -> float:
        """Least ``x >= 0`` with ``func(x) = y`` for non-decreasing ``func``."""
        if y <= func(0.0):
            return 0.0
        upper_cap = self.domain_upper
        if math.isinf(upper_cap):
            hi = expand_upper_bracket(lambda x: func(x) - y, 0.0, initial=1.0)
        else:
            # Approach the capacity from below; ``func`` diverges there.
            hi = upper_cap
            probe = upper_cap - 1e-15 * max(1.0, abs(upper_cap))
            if func(probe) < y:
                return probe
            hi = probe
        return bisect_root(lambda x: func(x) - y, 0.0, hi)

    def inverse_value(self, y: float) -> float:
        """Load ``x >= 0`` at which the latency equals ``y`` (0 when ``y <= l(0)``).

        Only meaningful for strictly increasing latencies; constant latencies
        raise :class:`LatencyDomainError`.
        """
        if self.is_constant:
            raise LatencyDomainError(
                "inverse_value is undefined for constant latencies")
        return self._numeric_inverse(lambda x: float(self.value(x)), float(y))

    def inverse_marginal(self, y: float) -> float:
        """Load ``x >= 0`` at which the marginal cost equals ``y``.

        Returns 0 when ``y <= l(0)`` (the marginal cost at zero equals the
        free-flow latency).  Constant latencies raise
        :class:`LatencyDomainError`.
        """
        if self.is_constant:
            raise LatencyDomainError(
                "inverse_marginal is undefined for constant latencies")
        return self._numeric_inverse(lambda x: float(self.marginal_cost(x)), float(y))

    # ------------------------------------------------------------------ #
    # Stackelberg shift
    # ------------------------------------------------------------------ #
    def shifted(self, offset: float) -> "LatencyFunction":
        """A-posteriori latency ``x -> l(x + offset)`` seen by Followers.

        ``offset`` is the Leader's flow pre-assigned to the link.  Returns a
        :class:`repro.latency.ShiftedLatency` (or ``self`` when ``offset`` is
        zero).
        """
        from repro.latency.shifted import ShiftedLatency

        if offset == 0.0:
            return self
        return ShiftedLatency(self, offset)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
