"""Polynomial, monomial and BPR latency families."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.latency.base import ArrayLike, LatencyFunction

__all__ = ["PolynomialLatency", "MonomialLatency", "BPRLatency"]


class PolynomialLatency(LatencyFunction):
    """Polynomial latency ``l(x) = sum_k c_k x^k`` with non-negative coefficients.

    Non-negative coefficients guarantee that ``l`` is non-decreasing and that
    ``x*l(x)`` is convex on ``x >= 0``; strict increase requires at least one
    positive coefficient of degree >= 1.
    """

    __slots__ = ("coefficients",)

    def __init__(self, coefficients: Sequence[float]) -> None:
        coeffs = tuple(float(c) for c in coefficients)
        if not coeffs:
            raise ModelError("a polynomial latency needs at least one coefficient")
        if any(c < 0.0 for c in coeffs):
            raise ModelError(
                f"polynomial latency coefficients must be >= 0, got {coeffs!r}")
        # Trim trailing zero coefficients but keep at least the constant term.
        while len(coeffs) > 1 and coeffs[-1] == 0.0:
            coeffs = coeffs[:-1]
        self.coefficients = coeffs

    # calculus ---------------------------------------------------------- #
    def value(self, x: ArrayLike) -> ArrayLike:
        return np.polynomial.polynomial.polyval(x, self.coefficients)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        deriv = tuple(k * c for k, c in enumerate(self.coefficients))[1:] or (0.0,)
        return np.polynomial.polynomial.polyval(x, deriv)

    def integral(self, x: ArrayLike) -> ArrayLike:
        integ = (0.0,) + tuple(c / (k + 1) for k, c in enumerate(self.coefficients))
        return np.polynomial.polynomial.polyval(x, integ)

    @property
    def degree(self) -> int:
        """Degree of the polynomial."""
        return len(self.coefficients) - 1

    @property
    def is_constant(self) -> bool:
        return all(c == 0.0 for c in self.coefficients[1:])

    def __repr__(self) -> str:
        return f"PolynomialLatency({list(self.coefficients)!r})"


class MonomialLatency(LatencyFunction):
    """Monomial latency ``l(x) = coefficient * x^degree + constant``.

    Pigou-type instances with ``l(x) = x^d`` exhibit a price of anarchy that
    grows with ``d``; this family is used by the bound-verification benchmarks.
    """

    __slots__ = ("coefficient", "degree", "constant")

    def __init__(self, coefficient: float, degree: float, constant: float = 0.0) -> None:
        if coefficient < 0.0:
            raise ModelError(f"monomial coefficient must be >= 0, got {coefficient!r}")
        if degree < 1.0:
            raise ModelError(f"monomial degree must be >= 1, got {degree!r}")
        if constant < 0.0:
            raise ModelError(f"monomial constant must be >= 0, got {constant!r}")
        self.coefficient = float(coefficient)
        self.degree = float(degree)
        self.constant = float(constant)

    def value(self, x: ArrayLike) -> ArrayLike:
        return self.coefficient * np.power(x, self.degree) + self.constant

    def derivative(self, x: ArrayLike) -> ArrayLike:
        return self.coefficient * self.degree * np.power(x, self.degree - 1.0)

    def integral(self, x: ArrayLike) -> ArrayLike:
        return (self.coefficient * np.power(x, self.degree + 1.0) / (self.degree + 1.0)
                + self.constant * np.asarray(x, dtype=float)) if not np.isscalar(x) \
            else (self.coefficient * x ** (self.degree + 1.0) / (self.degree + 1.0)
                  + self.constant * x)

    @property
    def is_constant(self) -> bool:
        return self.coefficient == 0.0

    def inverse_value(self, y: float) -> float:
        if self.is_constant:
            return super().inverse_value(y)
        if y <= self.constant:
            return 0.0
        return ((y - self.constant) / self.coefficient) ** (1.0 / self.degree)

    def inverse_marginal(self, y: float) -> float:
        if self.is_constant:
            return super().inverse_marginal(y)
        if y <= self.constant:
            return 0.0
        scale = self.coefficient * (1.0 + self.degree)
        return ((y - self.constant) / scale) ** (1.0 / self.degree)

    def __repr__(self) -> str:
        return (f"MonomialLatency(coefficient={self.coefficient!r}, "
                f"degree={self.degree!r}, constant={self.constant!r})")


class BPRLatency(LatencyFunction):
    """Bureau of Public Roads latency ``l(x) = t0 * (1 + alpha * (x / capacity)^beta)``.

    The standard traffic-assignment volume/delay curve (alpha = 0.15,
    beta = 4 by default) used by the city-grid example and the network
    benchmarks.  Strictly increasing for ``alpha, t0 > 0``.
    """

    __slots__ = ("free_flow_time", "capacity", "alpha", "beta")

    def __init__(self, free_flow_time: float, capacity: float,
                 alpha: float = 0.15, beta: float = 4.0) -> None:
        if free_flow_time <= 0.0:
            raise ModelError(f"free_flow_time must be > 0, got {free_flow_time!r}")
        if capacity <= 0.0:
            raise ModelError(f"capacity must be > 0, got {capacity!r}")
        if alpha < 0.0:
            raise ModelError(f"alpha must be >= 0, got {alpha!r}")
        if beta < 1.0:
            raise ModelError(f"beta must be >= 1, got {beta!r}")
        self.free_flow_time = float(free_flow_time)
        self.capacity = float(capacity)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def value(self, x: ArrayLike) -> ArrayLike:
        ratio = np.asarray(x, dtype=float) / self.capacity if not np.isscalar(x) \
            else x / self.capacity
        return self.free_flow_time * (1.0 + self.alpha * np.power(ratio, self.beta))

    def derivative(self, x: ArrayLike) -> ArrayLike:
        ratio = np.asarray(x, dtype=float) / self.capacity if not np.isscalar(x) \
            else x / self.capacity
        return (self.free_flow_time * self.alpha * self.beta / self.capacity
                * np.power(ratio, self.beta - 1.0))

    def integral(self, x: ArrayLike) -> ArrayLike:
        x_arr = x if np.isscalar(x) else np.asarray(x, dtype=float)
        ratio = x_arr / self.capacity
        return (self.free_flow_time * x_arr
                + self.free_flow_time * self.alpha * self.capacity
                / (self.beta + 1.0) * np.power(ratio, self.beta + 1.0))

    @property
    def is_constant(self) -> bool:
        return self.alpha == 0.0

    def inverse_value(self, y: float) -> float:
        if self.is_constant:
            return super().inverse_value(y)
        if y <= self.free_flow_time:
            return 0.0
        ratio = (y / self.free_flow_time - 1.0) / self.alpha
        return self.capacity * ratio ** (1.0 / self.beta)

    def __repr__(self) -> str:
        return (f"BPRLatency(free_flow_time={self.free_flow_time!r}, "
                f"capacity={self.capacity!r}, alpha={self.alpha!r}, beta={self.beta!r})")
