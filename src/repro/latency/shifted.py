"""Latency wrappers: shifted (Stackelberg a-posteriori) and scaled latencies."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.latency.base import ArrayLike, LatencyFunction

__all__ = ["ShiftedLatency", "ScaledLatency"]


class ShiftedLatency(LatencyFunction):
    """A-posteriori latency ``x -> base(x + offset)``.

    This is the latency a Follower experiences on a link to which the Leader
    has already committed flow ``offset`` (Section 4 of the paper:
    ``l~_e(t_e) = l_e(t_e + s_e)``).  The induced Nash equilibrium of the
    Followers is the Wardrop equilibrium of the instance with every latency
    replaced by its shifted version.
    """

    __slots__ = ("base", "offset")

    def __init__(self, base: LatencyFunction, offset: float) -> None:
        if offset < 0.0:
            raise ModelError(f"Stackelberg offset must be >= 0, got {offset!r}")
        self.base = base
        self.offset = float(offset)

    @property
    def domain_upper(self) -> float:  # type: ignore[override]
        return self.base.domain_upper - self.offset

    def value(self, x: ArrayLike) -> ArrayLike:
        return self.base.value(x + self.offset)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        return self.base.derivative(x + self.offset)

    def integral(self, x: ArrayLike) -> ArrayLike:
        return self.base.integral(x + self.offset) - self.base.integral(self.offset)

    @property
    def is_constant(self) -> bool:
        return self.base.is_constant

    def inverse_value(self, y: float) -> float:
        inner = self.base.inverse_value(y)
        return max(0.0, inner - self.offset)

    def shifted(self, offset: float) -> LatencyFunction:
        if offset == 0.0:
            return self
        return ShiftedLatency(self.base, self.offset + offset)

    def __repr__(self) -> str:
        return f"ShiftedLatency({self.base!r}, offset={self.offset!r})"


class ScaledLatency(LatencyFunction):
    """Latency ``x -> factor * base(x)`` with ``factor > 0``.

    Useful for building families of links that differ only by a speed factor
    (e.g. the ``m`` identical-up-to-speed links of the random generators).
    """

    __slots__ = ("base", "factor")

    def __init__(self, base: LatencyFunction, factor: float) -> None:
        if factor <= 0.0:
            raise ModelError(f"scale factor must be > 0, got {factor!r}")
        self.base = base
        self.factor = float(factor)

    @property
    def domain_upper(self) -> float:  # type: ignore[override]
        return self.base.domain_upper

    def value(self, x: ArrayLike) -> ArrayLike:
        return self.factor * self.base.value(x)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        return self.factor * self.base.derivative(x)

    def integral(self, x: ArrayLike) -> ArrayLike:
        return self.factor * self.base.integral(x)

    @property
    def is_constant(self) -> bool:
        return self.base.is_constant

    def inverse_value(self, y: float) -> float:
        return self.base.inverse_value(y / self.factor)

    def __repr__(self) -> str:
        return f"ScaledLatency({self.base!r}, factor={self.factor!r})"
