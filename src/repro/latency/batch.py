"""Batched evaluation of heterogeneous latency families.

:class:`LatencyBatch` takes a ``Sequence[LatencyFunction]`` and groups the
links by analytic family — linear/affine, constant, power (monomial and BPR),
M/M/1, polynomial — into NumPy coefficient arrays.  Every quantity the
solvers need is then one array operation over each family instead of ``m``
Python method calls:

* ``values(x)``, ``derivs(x)``, ``second_derivs(x)``, ``marginals(x)``,
  ``integrals(x)`` — elementwise calculus at a shared scalar load or a
  per-link load vector;
* ``inverse_values(level)`` / ``inverse_marginals(level)`` — the per-link
  loads at which the latency (resp. marginal cost) reaches ``level``, the
  kernel of the water-filling solvers.  Closed forms are used wherever the
  family admits one (linear, M/M/1, un-shifted power); the rest fall back to
  a *vectorized* bisection that still evaluates all affected links per step
  in one array op.

Stackelberg wrappers are folded into the coefficient arrays at construction
time: ``ShiftedLatency``/``ScaledLatency`` around a linear base collapse to a
plain affine row, a shifted M/M/1 queue collapses to an M/M/1 queue with
reduced capacity, and power/polynomial families carry an explicit offset
column.  Latency subclasses the canonicaliser does not recognise land in a
``generic`` bucket evaluated with the ordinary scalar loop, so a batch is
always exact — unknown families only lose the speed-up, never correctness.

The batch preserves the scalar layer's domain semantics: evaluating an M/M/1
family at or beyond its capacity raises
:class:`~repro.exceptions.LatencyDomainError`, exactly like
:meth:`repro.latency.MM1Latency.value`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import LatencyDomainError, ModelError
from repro.latency.base import LatencyFunction
from repro.latency.linear import ConstantLatency, LinearLatency
from repro.latency.mm1 import MM1Latency
from repro.latency.polynomial import BPRLatency, MonomialLatency, PolynomialLatency
from repro.latency.shifted import ScaledLatency, ShiftedLatency
from repro.utils.vectorized import expand_upper_brackets, vectorized_bisect

__all__ = ["LatencyBatch"]

#: Relative bracket tolerance of the numeric inverse fallbacks; matches the
#: default of :func:`repro.utils.rootfind.bisect_root` used by the scalar
#: ``LatencyFunction._numeric_inverse``.
_INVERSE_TOL = 1e-12


def _unwrap(lat: LatencyFunction) -> Tuple[LatencyFunction, float, float]:
    """Strip ``ShiftedLatency``/``ScaledLatency`` wrappers.

    Returns ``(base, offset, factor)`` such that the original latency is
    ``x -> factor * base(x + offset)`` (shift and scale commute, so nesting in
    any order accumulates correctly).
    """
    offset = 0.0
    factor = 1.0
    base = lat
    while True:
        if isinstance(base, ShiftedLatency):
            offset += base.offset
            base = base.base
        elif isinstance(base, ScaledLatency):
            factor *= base.factor
            base = base.base
        else:
            return base, offset, factor


class _Members:
    """Common bookkeeping of one family bucket."""

    def __init__(self) -> None:
        self.indices: List[int] = []

    def __len__(self) -> int:
        return len(self.indices)

    def index_array(self) -> np.ndarray:
        return np.asarray(self.indices, dtype=np.intp)


class _LinearFamily(_Members):
    """Affine rows ``l(x) = slope * x + intercept`` with ``slope > 0``."""

    name = "linear"

    def __init__(self) -> None:
        super().__init__()
        self._slopes: List[float] = []
        self._intercepts: List[float] = []

    def add(self, index: int, slope: float, intercept: float) -> None:
        self.indices.append(index)
        self._slopes.append(slope)
        self._intercepts.append(intercept)

    def freeze(self) -> None:
        self.slopes = np.asarray(self._slopes, dtype=float)
        self.intercepts = np.asarray(self._intercepts, dtype=float)

    def values(self, x) -> np.ndarray:
        return self.slopes * x + self.intercepts

    def derivs(self, x) -> np.ndarray:
        return np.broadcast_to(self.slopes, (len(self),)).copy() if np.isscalar(x) \
            else self.slopes + 0.0 * x

    def second_derivs(self, x) -> np.ndarray:
        return np.zeros(len(self))

    def integrals(self, x) -> np.ndarray:
        return (0.5 * self.slopes * x + self.intercepts) * x

    def inverse_values(self, y: float) -> np.ndarray:
        return np.maximum((y - self.intercepts) / self.slopes, 0.0)

    def inverse_marginals(self, y: float) -> np.ndarray:
        return np.maximum((y - self.intercepts) / (2.0 * self.slopes), 0.0)

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)


class _ConstantFamily(_Members):
    """Load-independent rows ``l(x) = c``."""

    name = "constant"

    def __init__(self) -> None:
        super().__init__()
        self._constants: List[float] = []

    def add(self, index: int, constant: float) -> None:
        self.indices.append(index)
        self._constants.append(constant)

    def freeze(self) -> None:
        self.constants = np.asarray(self._constants, dtype=float)

    def values(self, x) -> np.ndarray:
        return self.constants.copy()

    def derivs(self, x) -> np.ndarray:
        return np.zeros(len(self))

    second_derivs = derivs

    def integrals(self, x) -> np.ndarray:
        return self.constants * x

    def inverse_values(self, y: float) -> np.ndarray:
        # Constant latencies have no inverse; the water-filling solvers mask
        # these entries out and route the excess flow explicitly.
        return np.zeros(len(self))

    inverse_marginals = inverse_values

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)


class _PowerFamily(_Members):
    """Rows ``l(x) = a * (x + o)^d + c`` with ``a > 0``, ``d >= 1``.

    Covers :class:`MonomialLatency` and :class:`BPRLatency`, including their
    shifted/scaled wrappers (the scale factor folds into ``a`` and ``c``).
    """

    name = "power"

    def __init__(self) -> None:
        super().__init__()
        self._coeffs: List[float] = []
        self._degrees: List[float] = []
        self._consts: List[float] = []
        self._offsets: List[float] = []

    def add(self, index: int, coeff: float, degree: float, const: float,
            offset: float) -> None:
        self.indices.append(index)
        self._coeffs.append(coeff)
        self._degrees.append(degree)
        self._consts.append(const)
        self._offsets.append(offset)

    def freeze(self) -> None:
        self.coeffs = np.asarray(self._coeffs, dtype=float)
        self.degrees = np.asarray(self._degrees, dtype=float)
        self.consts = np.asarray(self._consts, dtype=float)
        self.offsets = np.asarray(self._offsets, dtype=float)
        self.has_offsets = bool(np.any(self.offsets > 0.0))

    def values(self, x) -> np.ndarray:
        return self.coeffs * np.power(x + self.offsets, self.degrees) + self.consts

    def derivs(self, x) -> np.ndarray:
        return (self.coeffs * self.degrees
                * np.power(x + self.offsets, self.degrees - 1.0))

    def second_derivs(self, x) -> np.ndarray:
        return (self.coeffs * self.degrees * (self.degrees - 1.0)
                * np.power(x + self.offsets, self.degrees - 2.0))

    def integrals(self, x) -> np.ndarray:
        exp = self.degrees + 1.0
        shifted = (np.power(x + self.offsets, exp) - np.power(self.offsets, exp))
        return self.coeffs * shifted / exp + self.consts * x

    def inverse_values(self, y: float) -> np.ndarray:
        at_zero = self.values(0.0)
        with np.errstate(invalid="ignore"):
            root = np.power(np.maximum(y - self.consts, 0.0) / self.coeffs,
                            1.0 / self.degrees) - self.offsets
        return np.where(y <= at_zero, 0.0, np.maximum(root, 0.0))

    def inverse_marginals(self, y: float) -> np.ndarray:
        at_zero = self.values(0.0)  # marginal cost at zero equals l(0)
        if not self.has_offsets:
            scale = self.coeffs * (1.0 + self.degrees)
            with np.errstate(invalid="ignore"):
                root = np.power(np.maximum(y - self.consts, 0.0) / scale,
                                1.0 / self.degrees)
            return np.where(y <= at_zero, 0.0, np.maximum(root, 0.0))
        # Shifted powers have no closed-form marginal inverse; bisect all rows
        # at once.  marginal(x) >= value(x), so the value inverse brackets the
        # root from above.
        hi = np.maximum(self.inverse_values(y), 0.0)
        lo = np.zeros(len(self))

        def gap(x: np.ndarray) -> np.ndarray:
            return self.values(x) + x * self.derivs(x) - y

        solved = vectorized_bisect(gap, lo, hi, tol=_INVERSE_TOL)
        return np.where(y <= at_zero, 0.0, solved)

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)


class _MM1Family(_Members):
    """Rows ``l(x) = factor / (capacity - x)`` for ``x < capacity``.

    A Stackelberg shift by ``s`` is exactly an M/M/1 queue with capacity
    ``capacity - s``, so offsets fold into the capacity column.
    """

    name = "mm1"

    def __init__(self) -> None:
        super().__init__()
        self._capacities: List[float] = []
        self._factors: List[float] = []

    def add(self, index: int, capacity: float, factor: float) -> None:
        self.indices.append(index)
        self._capacities.append(capacity)
        self._factors.append(factor)

    def freeze(self) -> None:
        self.capacities = np.asarray(self._capacities, dtype=float)
        self.factors = np.asarray(self._factors, dtype=float)

    def _check_domain(self, x) -> None:
        if np.any(np.asarray(x) >= self.capacities):
            load = float(np.max(np.asarray(x, dtype=float) - self.capacities))
            raise LatencyDomainError(
                f"M/M/1 latency evaluated at load >= capacity "
                f"(excess {load!r})")

    def values(self, x) -> np.ndarray:
        self._check_domain(x)
        return self.factors / (self.capacities - x)

    def derivs(self, x) -> np.ndarray:
        self._check_domain(x)
        diff = self.capacities - x
        return self.factors / (diff * diff)

    def second_derivs(self, x) -> np.ndarray:
        self._check_domain(x)
        diff = self.capacities - x
        return 2.0 * self.factors / (diff * diff * diff)

    def integrals(self, x) -> np.ndarray:
        self._check_domain(x)
        return self.factors * np.log(self.capacities / (self.capacities - x))

    def inverse_values(self, y: float) -> np.ndarray:
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore"):
            root = self.capacities - self.factors / y
        return np.where(y <= free_flow, 0.0, np.maximum(root, 0.0))

    def inverse_marginals(self, y: float) -> np.ndarray:
        # marginal cost factor*c/(c-x)^2 = y  =>  x = c - sqrt(factor*c/y).
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore"):
            root = self.capacities - np.sqrt(self.factors * self.capacities / y)
        return np.where(y <= free_flow, 0.0, np.maximum(root, 0.0))

    def domain_upper(self) -> np.ndarray:
        return self.capacities.copy()


class _PolyFamily(_Members):
    """Rows ``l(x) = sum_k C[k] (x + o)^k`` with non-negative coefficients."""

    name = "poly"

    def __init__(self) -> None:
        super().__init__()
        self._coeff_rows: List[Tuple[float, ...]] = []
        self._offsets: List[float] = []

    def add(self, index: int, coeffs: Tuple[float, ...], offset: float) -> None:
        self.indices.append(index)
        self._coeff_rows.append(coeffs)
        self._offsets.append(offset)

    def freeze(self) -> None:
        width = max(len(row) for row in self._coeff_rows)
        coeffs = np.zeros((len(self._coeff_rows), width))
        for i, row in enumerate(self._coeff_rows):
            coeffs[i, :len(row)] = row
        self.coeffs = coeffs
        self.offsets = np.asarray(self._offsets, dtype=float)
        degrees = np.arange(1, width + 1, dtype=float)
        self.deriv_coeffs = coeffs[:, 1:] * degrees[:width - 1] if width > 1 \
            else np.zeros((coeffs.shape[0], 1))
        self.integral_coeffs = coeffs / degrees  # antiderivative, constant 0

    @staticmethod
    def _horner(coeffs: np.ndarray, t) -> np.ndarray:
        result = np.zeros(coeffs.shape[0]) + 0.0 * t
        for j in range(coeffs.shape[1] - 1, -1, -1):
            result = result * t + coeffs[:, j]
        return result

    def values(self, x) -> np.ndarray:
        return self._horner(self.coeffs, x + self.offsets)

    def derivs(self, x) -> np.ndarray:
        return self._horner(self.deriv_coeffs, x + self.offsets)

    def second_derivs(self, x) -> np.ndarray:
        width = self.deriv_coeffs.shape[1]
        if width <= 1:
            return np.zeros(len(self))
        second = self.deriv_coeffs[:, 1:] * np.arange(1, width, dtype=float)
        return self._horner(second, x + self.offsets)

    def integrals(self, x) -> np.ndarray:
        t = x + self.offsets
        return (self._horner(self.integral_coeffs, t) * t
                - self._horner(self.integral_coeffs, self.offsets) * self.offsets)

    def _bisect_inverse(self, level_fn, y: float) -> np.ndarray:
        at_zero = level_fn(0.0)
        lo = np.zeros(len(self))
        hi = expand_upper_brackets(lambda x: level_fn(x) - y, lo, initial=1.0)
        solved = vectorized_bisect(lambda x: level_fn(x) - y, lo, hi,
                                   tol=_INVERSE_TOL)
        return np.where(y <= at_zero, 0.0, solved)

    def inverse_values(self, y: float) -> np.ndarray:
        return self._bisect_inverse(self.values, y)

    def inverse_marginals(self, y: float) -> np.ndarray:
        return self._bisect_inverse(
            lambda x: self.values(x) + x * self.derivs(x), y)

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)


class _GenericFamily(_Members):
    """Fallback bucket: unknown subclasses evaluated with the scalar loop."""

    name = "generic"

    def __init__(self) -> None:
        super().__init__()
        self.functions: List[LatencyFunction] = []

    def add(self, index: int, lat: LatencyFunction) -> None:
        self.indices.append(index)
        self.functions.append(lat)

    def freeze(self) -> None:
        pass

    def _per_link(self, x, method: str) -> np.ndarray:
        if np.isscalar(x):
            return np.array([float(getattr(lat, method)(x))
                             for lat in self.functions])
        return np.array([float(getattr(lat, method)(xi))
                         for lat, xi in zip(self.functions, x)])

    def values(self, x) -> np.ndarray:
        return self._per_link(x, "value")

    def derivs(self, x) -> np.ndarray:
        return self._per_link(x, "derivative")

    def second_derivs(self, x) -> np.ndarray:
        raise ModelError(
            "generic latency functions expose no second derivative")

    def integrals(self, x) -> np.ndarray:
        return self._per_link(x, "integral")

    def inverse_values(self, y: float) -> np.ndarray:
        return np.array([0.0 if lat.is_constant else float(lat.inverse_value(y))
                         for lat in self.functions])

    def inverse_marginals(self, y: float) -> np.ndarray:
        return np.array([0.0 if lat.is_constant
                         else float(lat.inverse_marginal(y))
                         for lat in self.functions])

    def domain_upper(self) -> np.ndarray:
        return np.array([float(lat.domain_upper) for lat in self.functions])


class LatencyBatch:
    """A family-grouped, array-backed view of a sequence of latency functions.

    Construction is O(m); every evaluation afterwards is a handful of array
    operations (one per non-empty family).  Instances are immutable once
    built and safe to cache alongside the latency sequence they mirror.
    """

    def __init__(self, latencies: Sequence[LatencyFunction]) -> None:
        latencies = tuple(latencies)
        for i, lat in enumerate(latencies):
            if not isinstance(lat, LatencyFunction):
                raise ModelError(
                    f"link {i}: expected a LatencyFunction, "
                    f"got {type(lat).__name__}")
        self.latencies = latencies
        self._linear = _LinearFamily()
        self._constant = _ConstantFamily()
        self._power = _PowerFamily()
        self._mm1 = _MM1Family()
        self._poly = _PolyFamily()
        self._generic = _GenericFamily()
        constant_mask = np.zeros(len(latencies), dtype=bool)
        for i, lat in enumerate(latencies):
            constant_mask[i] = self._dispatch(i, lat)
        families = [self._linear, self._constant, self._power, self._mm1,
                    self._poly, self._generic]
        self._families = [fam for fam in families if len(fam)]
        for fam in self._families:
            fam.freeze()
        self._index_arrays = [fam.index_array() for fam in self._families]
        self.is_constant = constant_mask
        self._values_at_zero: Optional[np.ndarray] = None
        self._domain_upper: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Canonicalisation
    # ------------------------------------------------------------------ #
    def _dispatch(self, index: int, lat: LatencyFunction) -> bool:
        """Route one latency into its family bucket; returns ``is_constant``."""
        base, offset, factor = _unwrap(lat)
        if isinstance(base, LinearLatency):
            slope = factor * base.slope
            intercept = factor * (base.slope * offset + base.intercept)
            if slope == 0.0:
                self._constant.add(index, intercept)
                return True
            self._linear.add(index, slope, intercept)
            return False
        if isinstance(base, ConstantLatency):
            self._constant.add(index, factor * base.constant)
            return True
        if isinstance(base, MM1Latency):
            self._mm1.add(index, base.capacity - offset, factor)
            return False
        if isinstance(base, MonomialLatency):
            if base.coefficient == 0.0:
                self._constant.add(index, factor * base.constant)
                return True
            self._power.add(index, factor * base.coefficient, base.degree,
                            factor * base.constant, offset)
            return False
        if isinstance(base, BPRLatency):
            if base.alpha == 0.0:
                self._constant.add(index, factor * base.free_flow_time)
                return True
            coeff = (factor * base.free_flow_time * base.alpha
                     / base.capacity ** base.beta)
            self._power.add(index, coeff, base.beta,
                            factor * base.free_flow_time, offset)
            return False
        if isinstance(base, PolynomialLatency):
            if base.is_constant:
                self._constant.add(index, factor * base.coefficients[0])
                return True
            coeffs = tuple(factor * c for c in base.coefficients)
            self._poly.add(index, coeffs, offset)
            return False
        self._generic.add(index, lat)  # keep the *wrapped* object intact
        return bool(lat.is_constant)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self.latencies)

    def __len__(self) -> int:
        return self.size

    @property
    def family_names(self) -> Tuple[str, ...]:
        """Names of the non-empty family buckets (construction order)."""
        return tuple(fam.name for fam in self._families)

    @property
    def has_generic(self) -> bool:
        return len(self._generic) > 0

    @property
    def supports_newton(self) -> bool:
        """Whether every link has a well-behaved analytic second derivative.

        Power rows with exponents in the open interval (1, 2) are excluded:
        their second derivative diverges at zero load, which would destabilise
        a Newton line search near the boundary.
        """
        if self.has_generic:
            return False
        if len(self._power):
            d = self._power.degrees
            if np.any((d > 1.0) & (d < 2.0)):
                return False
        return True

    @property
    def values_at_zero(self) -> np.ndarray:
        """Free-flow latencies ``l_i(0)`` (also the marginal costs at zero)."""
        if self._values_at_zero is None:
            self._values_at_zero = self.values(0.0)
            self._values_at_zero.setflags(write=False)
        return self._values_at_zero

    @property
    def domain_upper(self) -> np.ndarray:
        """Per-link exclusive upper ends of the latency domains."""
        if self._domain_upper is None:
            out = np.empty(self.size)
            for fam, idx in zip(self._families, self._index_arrays):
                out[idx] = fam.domain_upper()
            out.setflags(write=False)
            self._domain_upper = out
        return self._domain_upper

    def linear_increasing_params(self) -> Optional[Tuple[np.ndarray, np.ndarray,
                                                         np.ndarray]]:
        """``(slopes, intercepts, indices)`` when every increasing link is affine.

        Returns ``None`` as soon as any non-constant link belongs to another
        family; the all-linear closed-form water-filling solve only applies in
        the pure case.
        """
        increasing = int(np.count_nonzero(~self.is_constant))
        if len(self._linear) != increasing:
            return None
        return (self._linear.slopes, self._linear.intercepts,
                self._linear.index_array())

    # ------------------------------------------------------------------ #
    # Batched calculus
    # ------------------------------------------------------------------ #
    def _gather(self, method: str, x) -> np.ndarray:
        scalar = np.isscalar(x)
        if not scalar:
            x = np.asarray(x, dtype=float)
            if x.shape != (self.size,):
                raise ModelError(
                    f"expected {self.size} loads, got shape {x.shape}")
        out = np.empty(self.size)
        for fam, idx in zip(self._families, self._index_arrays):
            xf = x if scalar else x[idx]
            out[idx] = getattr(fam, method)(xf)
        return out

    def values(self, x) -> np.ndarray:
        """Per-link latencies ``l_i(x_i)`` (``x`` scalar or per-link vector)."""
        return self._gather("values", x)

    def derivs(self, x) -> np.ndarray:
        """Per-link derivatives ``l_i'(x_i)``."""
        return self._gather("derivs", x)

    def second_derivs(self, x) -> np.ndarray:
        """Per-link second derivatives ``l_i''(x_i)``."""
        return self._gather("second_derivs", x)

    def integrals(self, x) -> np.ndarray:
        """Per-link Beckmann integrals ``\\int_0^{x_i} l_i(t) dt``."""
        return self._gather("integrals", x)

    def marginals(self, x) -> np.ndarray:
        """Per-link marginal costs ``l_i(x_i) + x_i l_i'(x_i)``."""
        x_arr = x if np.isscalar(x) else np.asarray(x, dtype=float)
        return self.values(x) + x_arr * self.derivs(x)

    def link_costs(self, x) -> np.ndarray:
        """Per-link total costs ``x_i l_i(x_i)``."""
        x_arr = x if np.isscalar(x) else np.asarray(x, dtype=float)
        return x_arr * self.values(x)

    def total_cost(self, x) -> float:
        """``C(x) = sum_i x_i l_i(x_i)``."""
        return float(np.sum(self.link_costs(x)))

    def beckmann(self, x) -> float:
        """``sum_i \\int_0^{x_i} l_i(t) dt``."""
        return float(np.sum(self.integrals(x)))

    # ------------------------------------------------------------------ #
    # Batched inverses
    # ------------------------------------------------------------------ #
    def inverse_values(self, level: float) -> np.ndarray:
        """Per-link least loads with ``l_i(x) = level`` (0 below free flow).

        Constant links contribute 0; callers mask them via ``is_constant``.
        """
        return self._gather("inverse_values", float(level))

    def inverse_marginals(self, level: float) -> np.ndarray:
        """Per-link least loads with marginal cost equal to ``level``."""
        return self._gather("inverse_marginals", float(level))
