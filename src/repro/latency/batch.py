"""Batched evaluation of heterogeneous latency families.

:class:`LatencyBatch` takes a ``Sequence[LatencyFunction]`` and groups the
links by analytic family — linear/affine, constant, power (monomial and BPR),
M/M/1, polynomial — into NumPy coefficient arrays.  Every quantity the
solvers need is then one array operation over each family instead of ``m``
Python method calls:

* ``values(x)``, ``derivs(x)``, ``second_derivs(x)``, ``marginals(x)``,
  ``integrals(x)`` — elementwise calculus at a shared scalar load or a
  per-link load vector;
* ``inverse_values(level)`` / ``inverse_marginals(level)`` — the per-link
  loads at which the latency (resp. marginal cost) reaches ``level``, the
  kernel of the water-filling solvers.  Closed forms are used wherever the
  family admits one (linear, M/M/1, un-shifted power); the rest fall back to
  a *vectorized* bisection that still evaluates all affected links per step
  in one array op.

Stackelberg wrappers are folded into the coefficient arrays at construction
time: ``ShiftedLatency``/``ScaledLatency`` around a linear base collapse to a
plain affine row, a shifted M/M/1 queue collapses to an M/M/1 queue with
reduced capacity, and power/polynomial families carry an explicit offset
column.  Latency subclasses the canonicaliser does not recognise land in a
``generic`` bucket evaluated with the ordinary scalar loop, so a batch is
always exact — unknown families only lose the speed-up, never correctness.

The batch preserves the scalar layer's domain semantics: evaluating an M/M/1
family at or beyond its capacity raises
:class:`~repro.exceptions.LatencyDomainError`, exactly like
:meth:`repro.latency.MM1Latency.value`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import LatencyDomainError, ModelError
from repro.latency.base import LatencyFunction
from repro.latency.linear import ConstantLatency, LinearLatency
from repro.latency.mm1 import MM1Latency
from repro.latency.polynomial import BPRLatency, MonomialLatency, PolynomialLatency
from repro.latency.shifted import ScaledLatency, ShiftedLatency
from repro.utils.vectorized import expand_upper_brackets, vectorized_bisect

__all__ = ["LatencyBatch"]

#: Relative bracket tolerance of the numeric inverse fallbacks; matches the
#: default of :func:`repro.utils.rootfind.bisect_root` used by the scalar
#: ``LatencyFunction._numeric_inverse``.
_INVERSE_TOL = 1e-12


def _power_loads_at_levels(levels: np.ndarray, coeffs: np.ndarray,
                           degrees: np.ndarray, consts: np.ndarray,
                           offsets: np.ndarray, kind: str) -> np.ndarray:
    """Per-row loads of ``a (x + o)^d + c`` rows at each level, shape (K, n).

    ``kind == "nash"`` inverts the latency itself (closed form for any
    offset); ``kind == "optimum"`` inverts the marginal cost, which has a
    closed form only for un-shifted rows (``o == 0``) and affine rows
    (``d == 1``) — callers must not select other rows through this path.
    """
    L = np.asarray(levels, dtype=float)[:, None]
    if kind == "nash":
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t = np.maximum(L - consts, 0.0) / coeffs
            x = np.power(t, 1.0 / degrees) - offsets
        return np.maximum(x, 0.0)
    lin = degrees == 1.0
    scale = coeffs * (1.0 + degrees)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        x_pow = np.power(np.maximum(L - consts, 0.0) / scale, 1.0 / degrees)
    x_lin = np.maximum(L - consts - coeffs * offsets, 0.0) / (2.0 * coeffs)
    return np.where(lin, x_lin, x_pow)


def _power_dloads_at_levels(levels: np.ndarray, coeffs: np.ndarray,
                            degrees: np.ndarray, consts: np.ndarray,
                            offsets: np.ndarray, kind: str) -> np.ndarray:
    """Per-row ``dx/dL`` of :func:`_power_loads_at_levels`, 0 where inactive."""
    L = np.asarray(levels, dtype=float)[:, None]
    if kind == "nash":
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t = np.maximum(L - consts, 0.0) / coeffs
            x = np.power(t, 1.0 / degrees) - offsets
            d = np.power(t, 1.0 / degrees - 1.0) / (coeffs * degrees)
        return np.where(x > 0.0, d, 0.0)
    lin = degrees == 1.0
    scale = coeffs * (1.0 + degrees)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        u = np.maximum(L - consts, 0.0) / scale
        d_pow = np.where(u > 0.0,
                         np.power(u, 1.0 / degrees - 1.0) / (scale * degrees),
                         0.0)
    d_lin = (L > consts + coeffs * offsets) / (2.0 * coeffs)
    return np.where(lin, d_lin, d_pow)


def _power_level_flow_dflow(levels: np.ndarray, coeffs: np.ndarray,
                            degrees: np.ndarray, consts: np.ndarray,
                            offsets: np.ndarray,
                            kind: str) -> Tuple[np.ndarray, np.ndarray]:
    """Fused ``(flow_sum, dflow_sum)`` of the power closed forms, shape (K,).

    One evaluation shares the ``np.power`` intermediates between the load and
    its level-derivative — the dominant cost of a Newton step on mixed
    batches — instead of recomputing them in two separate passes.
    """
    L = np.asarray(levels, dtype=float)[:, None]
    if kind == "nash":
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            t = np.maximum(L - consts, 0.0) / coeffs
            r = np.power(t, 1.0 / degrees)
            x = r - offsets
            d = r / (t * coeffs * degrees)
        flow = np.maximum(x, 0.0).sum(axis=1)
        dflow = np.where(x > 0.0, d, 0.0).sum(axis=1)
        return flow, dflow
    lin = degrees == 1.0
    scale = coeffs * (1.0 + degrees)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        u = np.maximum(L - consts, 0.0) / scale
        r = np.power(u, 1.0 / degrees)
        d_pow = np.where(u > 0.0, r / (u * scale * degrees), 0.0)
    x_lin = np.maximum(L - consts - coeffs * offsets, 0.0) / (2.0 * coeffs)
    d_lin = (L > consts + coeffs * offsets) / (2.0 * coeffs)
    flow = np.where(lin, x_lin, r).sum(axis=1)
    dflow = np.where(lin, d_lin, d_pow).sum(axis=1)
    return flow, dflow


def _unwrap(lat: LatencyFunction) -> Tuple[LatencyFunction, float, float]:
    """Strip ``ShiftedLatency``/``ScaledLatency`` wrappers.

    Returns ``(base, offset, factor)`` such that the original latency is
    ``x -> factor * base(x + offset)`` (shift and scale commute, so nesting in
    any order accumulates correctly).
    """
    offset = 0.0
    factor = 1.0
    base = lat
    while True:
        if isinstance(base, ShiftedLatency):
            offset += base.offset
            base = base.base
        elif isinstance(base, ScaledLatency):
            factor *= base.factor
            base = base.base
        else:
            return base, offset, factor


class _Members:
    """Common bookkeeping of one family bucket."""

    #: Frozen per-row coefficient arrays, sliced row-wise by :meth:`take`.
    _ARRAYS: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.indices: List[int] = []

    def __len__(self) -> int:
        return len(self.indices)

    def index_array(self) -> np.ndarray:
        return np.asarray(self.indices, dtype=np.intp)

    def take(self, rows: Sequence[int], new_indices: Sequence[int]) -> "_Members":
        """A frozen copy restricted to ``rows``, re-indexed to ``new_indices``."""
        clone = type(self)()
        clone.indices = list(new_indices)
        if clone.indices:
            sel = np.asarray(rows, dtype=np.intp)
            for name in self._ARRAYS:
                setattr(clone, name, getattr(self, name)[sel])
            clone._after_take()
        return clone

    def _after_take(self) -> None:
        """Recompute derived attributes after :meth:`take` sliced the arrays."""

    def analytic_for(self, kind: str) -> bool:
        """Whether every row has a closed-form inverse for this solve kind."""
        return False


class _LinearFamily(_Members):
    """Affine rows ``l(x) = slope * x + intercept`` with ``slope > 0``."""

    name = "linear"
    _ARRAYS = ("slopes", "intercepts")

    def __init__(self) -> None:
        super().__init__()
        self._slopes: List[float] = []
        self._intercepts: List[float] = []

    def add(self, index: int, slope: float, intercept: float) -> None:
        self.indices.append(index)
        self._slopes.append(slope)
        self._intercepts.append(intercept)

    def freeze(self) -> None:
        self.slopes = np.asarray(self._slopes, dtype=float)
        self.intercepts = np.asarray(self._intercepts, dtype=float)

    def values(self, x) -> np.ndarray:
        return self.slopes * x + self.intercepts

    def derivs(self, x) -> np.ndarray:
        return np.broadcast_to(self.slopes, (len(self),)).copy() if np.isscalar(x) \
            else self.slopes + 0.0 * x

    def second_derivs(self, x) -> np.ndarray:
        return np.zeros(len(self))

    def integrals(self, x) -> np.ndarray:
        return (0.5 * self.slopes * x + self.intercepts) * x

    def inverse_values(self, y: float) -> np.ndarray:
        return np.maximum((y - self.intercepts) / self.slopes, 0.0)

    def inverse_marginals(self, y: float) -> np.ndarray:
        return np.maximum((y - self.intercepts) / (2.0 * self.slopes), 0.0)

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)

    def analytic_for(self, kind: str) -> bool:
        return True

    def _level_denoms(self, kind: str) -> np.ndarray:
        return self.slopes if kind == "nash" else 2.0 * self.slopes

    def level_flow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        L = np.asarray(levels, dtype=float)[:, None]
        return (np.maximum(L - self.intercepts, 0.0)
                / self._level_denoms(kind)).sum(axis=1)

    def level_dflow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        L = np.asarray(levels, dtype=float)[:, None]
        return ((L > self.intercepts) / self._level_denoms(kind)).sum(axis=1)

    def level_flow_dflow_sum(self, levels: np.ndarray,
                             kind: str) -> Tuple[np.ndarray, np.ndarray]:
        L = np.asarray(levels, dtype=float)[:, None]
        gap = L - self.intercepts
        denoms = self._level_denoms(kind)
        return ((np.maximum(gap, 0.0) / denoms).sum(axis=1),
                ((gap > 0.0) / denoms).sum(axis=1))


class _ConstantFamily(_Members):
    """Load-independent rows ``l(x) = c``."""

    name = "constant"
    _ARRAYS = ("constants",)

    def __init__(self) -> None:
        super().__init__()
        self._constants: List[float] = []

    def add(self, index: int, constant: float) -> None:
        self.indices.append(index)
        self._constants.append(constant)

    def freeze(self) -> None:
        self.constants = np.asarray(self._constants, dtype=float)

    def values(self, x) -> np.ndarray:
        return self.constants.copy()

    def derivs(self, x) -> np.ndarray:
        return np.zeros(len(self))

    second_derivs = derivs

    def integrals(self, x) -> np.ndarray:
        return self.constants * x

    def inverse_values(self, y: float) -> np.ndarray:
        # Constant latencies have no inverse; the water-filling solvers mask
        # these entries out and route the excess flow explicitly.
        return np.zeros(len(self))

    inverse_marginals = inverse_values

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)


class _PowerFamily(_Members):
    """Rows ``l(x) = a * (x + o)^d + c`` with ``a > 0``, ``d >= 1``.

    Covers :class:`MonomialLatency` and :class:`BPRLatency`, including their
    shifted/scaled wrappers (the scale factor folds into ``a`` and ``c``).
    """

    name = "power"
    _ARRAYS = ("coeffs", "degrees", "consts", "offsets")

    def __init__(self) -> None:
        super().__init__()
        self._coeffs: List[float] = []
        self._degrees: List[float] = []
        self._consts: List[float] = []
        self._offsets: List[float] = []

    def add(self, index: int, coeff: float, degree: float, const: float,
            offset: float) -> None:
        self.indices.append(index)
        self._coeffs.append(coeff)
        self._degrees.append(degree)
        self._consts.append(const)
        self._offsets.append(offset)

    def freeze(self) -> None:
        self.coeffs = np.asarray(self._coeffs, dtype=float)
        self.degrees = np.asarray(self._degrees, dtype=float)
        self.consts = np.asarray(self._consts, dtype=float)
        self.offsets = np.asarray(self._offsets, dtype=float)
        self._after_take()

    def _after_take(self) -> None:
        self.has_offsets = bool(np.any(self.offsets > 0.0))

    def values(self, x) -> np.ndarray:
        return self.coeffs * np.power(x + self.offsets, self.degrees) + self.consts

    def derivs(self, x) -> np.ndarray:
        return (self.coeffs * self.degrees
                * np.power(x + self.offsets, self.degrees - 1.0))

    def second_derivs(self, x) -> np.ndarray:
        return (self.coeffs * self.degrees * (self.degrees - 1.0)
                * np.power(x + self.offsets, self.degrees - 2.0))

    def integrals(self, x) -> np.ndarray:
        exp = self.degrees + 1.0
        shifted = (np.power(x + self.offsets, exp) - np.power(self.offsets, exp))
        return self.coeffs * shifted / exp + self.consts * x

    def inverse_values(self, y: float) -> np.ndarray:
        at_zero = self.values(0.0)
        with np.errstate(invalid="ignore"):
            root = np.power(np.maximum(y - self.consts, 0.0) / self.coeffs,
                            1.0 / self.degrees) - self.offsets
        return np.where(y <= at_zero, 0.0, np.maximum(root, 0.0))

    def inverse_marginals(self, y: float) -> np.ndarray:
        at_zero = self.values(0.0)  # marginal cost at zero equals l(0)
        if not self.has_offsets:
            scale = self.coeffs * (1.0 + self.degrees)
            with np.errstate(invalid="ignore"):
                root = np.power(np.maximum(y - self.consts, 0.0) / scale,
                                1.0 / self.degrees)
            return np.where(y <= at_zero, 0.0, np.maximum(root, 0.0))
        # Shifted powers have no closed-form marginal inverse; bisect all rows
        # at once.  marginal(x) >= value(x), so the value inverse brackets the
        # root from above.
        hi = np.maximum(self.inverse_values(y), 0.0)
        lo = np.zeros(len(self))

        def gap(x: np.ndarray) -> np.ndarray:
            return self.values(x) + x * self.derivs(x) - y

        solved = vectorized_bisect(gap, lo, hi, tol=_INVERSE_TOL)
        return np.where(y <= at_zero, 0.0, solved)

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)

    def analytic_for(self, kind: str) -> bool:
        if kind == "nash":
            return True
        # The marginal cost of a *shifted* power row has no closed-form
        # inverse unless the row is affine.
        return bool(np.all((self.offsets == 0.0) | (self.degrees == 1.0)))

    def level_flow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        return _power_loads_at_levels(levels, self.coeffs, self.degrees,
                                      self.consts, self.offsets, kind).sum(axis=1)

    def level_dflow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        return _power_dloads_at_levels(levels, self.coeffs, self.degrees,
                                       self.consts, self.offsets, kind).sum(axis=1)

    def level_flow_dflow_sum(self, levels: np.ndarray,
                             kind: str) -> Tuple[np.ndarray, np.ndarray]:
        return _power_level_flow_dflow(levels, self.coeffs, self.degrees,
                                       self.consts, self.offsets, kind)


class _MM1Family(_Members):
    """Rows ``l(x) = factor / (capacity - x)`` for ``x < capacity``.

    A Stackelberg shift by ``s`` is exactly an M/M/1 queue with capacity
    ``capacity - s``, so offsets fold into the capacity column.
    """

    name = "mm1"
    _ARRAYS = ("capacities", "factors")

    def __init__(self) -> None:
        super().__init__()
        self._capacities: List[float] = []
        self._factors: List[float] = []

    def add(self, index: int, capacity: float, factor: float) -> None:
        self.indices.append(index)
        self._capacities.append(capacity)
        self._factors.append(factor)

    def freeze(self) -> None:
        self.capacities = np.asarray(self._capacities, dtype=float)
        self.factors = np.asarray(self._factors, dtype=float)

    def _check_domain(self, x) -> None:
        if np.any(np.asarray(x) >= self.capacities):
            load = float(np.max(np.asarray(x, dtype=float) - self.capacities))
            raise LatencyDomainError(
                f"M/M/1 latency evaluated at load >= capacity "
                f"(excess {load!r})")

    def values(self, x) -> np.ndarray:
        self._check_domain(x)
        return self.factors / (self.capacities - x)

    def derivs(self, x) -> np.ndarray:
        self._check_domain(x)
        diff = self.capacities - x
        return self.factors / (diff * diff)

    def second_derivs(self, x) -> np.ndarray:
        self._check_domain(x)
        diff = self.capacities - x
        return 2.0 * self.factors / (diff * diff * diff)

    def integrals(self, x) -> np.ndarray:
        self._check_domain(x)
        return self.factors * np.log(self.capacities / (self.capacities - x))

    def _clamp_inside(self, root: np.ndarray) -> np.ndarray:
        # At huge levels ``c - f/y`` rounds to exactly ``c``; a flow *at*
        # capacity is outside the open domain and would make any later
        # ``values``/``derivs`` call raise.  Clamp strictly inside, one ulp
        # below capacity — far below the solver tolerances, so the water
        # level is unaffected.
        return np.minimum(root, np.nextafter(self.capacities, 0.0))

    def inverse_values(self, y: float) -> np.ndarray:
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore"):
            root = self._clamp_inside(self.capacities - self.factors / y)
        return np.where(y <= free_flow, 0.0, np.maximum(root, 0.0))

    def inverse_marginals(self, y: float) -> np.ndarray:
        # marginal cost factor*c/(c-x)^2 = y  =>  x = c - sqrt(factor*c/y).
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore"):
            root = self._clamp_inside(
                self.capacities - np.sqrt(self.factors * self.capacities / y))
        return np.where(y <= free_flow, 0.0, np.maximum(root, 0.0))

    def domain_upper(self) -> np.ndarray:
        return self.capacities.copy()

    def analytic_for(self, kind: str) -> bool:
        return True

    def level_flow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        L = np.asarray(levels, dtype=float)[:, None]
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if kind == "nash":
                x = self.capacities - self.factors / L
            else:
                x = self.capacities - np.sqrt(
                    self.factors * self.capacities / L)
            x = np.minimum(x, np.nextafter(self.capacities, 0.0))
        return np.where(L > free_flow, np.maximum(x, 0.0), 0.0).sum(axis=1)

    def level_dflow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        L = np.asarray(levels, dtype=float)[:, None]
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if kind == "nash":
                d = self.factors / (L * L)
            else:
                d = (0.5 * np.sqrt(self.factors * self.capacities)
                     * np.power(L, -1.5))
        return np.where(L > free_flow, d, 0.0).sum(axis=1)

    def level_flow_dflow_sum(self, levels: np.ndarray,
                             kind: str) -> Tuple[np.ndarray, np.ndarray]:
        L = np.asarray(levels, dtype=float)[:, None]
        free_flow = self.factors / self.capacities
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if kind == "nash":
                inv = 1.0 / L
                x = self.capacities - self.factors * inv
                d = self.factors * inv * inv
            else:
                s = np.sqrt(self.factors * self.capacities / L)
                x = self.capacities - s
                d = 0.5 * s / L
            x = np.minimum(x, np.nextafter(self.capacities, 0.0))
        active = L > free_flow
        return (np.where(active, np.maximum(x, 0.0), 0.0).sum(axis=1),
                np.where(active, d, 0.0).sum(axis=1))


class _PolyFamily(_Members):
    """Rows ``l(x) = sum_k C[k] (x + o)^k`` with non-negative coefficients."""

    name = "poly"
    _ARRAYS = ("coeffs", "offsets")

    def __init__(self) -> None:
        super().__init__()
        self._coeff_rows: List[Tuple[float, ...]] = []
        self._offsets: List[float] = []

    def add(self, index: int, coeffs: Tuple[float, ...], offset: float) -> None:
        self.indices.append(index)
        self._coeff_rows.append(coeffs)
        self._offsets.append(offset)

    def freeze(self) -> None:
        width = max(len(row) for row in self._coeff_rows)
        coeffs = np.zeros((len(self._coeff_rows), width))
        for i, row in enumerate(self._coeff_rows):
            coeffs[i, :len(row)] = row
        self.coeffs = coeffs
        self.offsets = np.asarray(self._offsets, dtype=float)
        self._after_take()

    def _after_take(self) -> None:
        coeffs = self.coeffs
        width = coeffs.shape[1]
        degrees = np.arange(1, width + 1, dtype=float)
        self.deriv_coeffs = coeffs[:, 1:] * degrees[:width - 1] if width > 1 \
            else np.zeros((coeffs.shape[0], 1))
        self.integral_coeffs = coeffs / degrees  # antiderivative, constant 0
        # Rows with a single non-constant term are monomials in disguise —
        # ``C0 + Ck (x + o)^k`` — and admit the power family's closed-form
        # inverses instead of the bisection fallback.
        nonzero = coeffs[:, 1:] != 0.0
        self.is_monomial = width > 1 and bool(np.all(nonzero.sum(axis=1) == 1))
        if self.is_monomial:
            k = np.argmax(nonzero, axis=1) + 1
            rows = np.arange(coeffs.shape[0])
            self.mono_coeffs = coeffs[rows, k]
            self.mono_degrees = k.astype(float)
            self.mono_consts = coeffs[:, 0].copy()
        else:
            self.mono_coeffs = None
            self.mono_degrees = None
            self.mono_consts = None

    @staticmethod
    def _horner(coeffs: np.ndarray, t) -> np.ndarray:
        result = np.zeros(coeffs.shape[0]) + 0.0 * t
        for j in range(coeffs.shape[1] - 1, -1, -1):
            result = result * t + coeffs[:, j]
        return result

    def values(self, x) -> np.ndarray:
        return self._horner(self.coeffs, x + self.offsets)

    def derivs(self, x) -> np.ndarray:
        return self._horner(self.deriv_coeffs, x + self.offsets)

    def second_derivs(self, x) -> np.ndarray:
        width = self.deriv_coeffs.shape[1]
        if width <= 1:
            return np.zeros(len(self))
        second = self.deriv_coeffs[:, 1:] * np.arange(1, width, dtype=float)
        return self._horner(second, x + self.offsets)

    def integrals(self, x) -> np.ndarray:
        t = x + self.offsets
        return (self._horner(self.integral_coeffs, t) * t
                - self._horner(self.integral_coeffs, self.offsets) * self.offsets)

    def _bisect_inverse(self, level_fn, y: float) -> np.ndarray:
        at_zero = level_fn(0.0)
        lo = np.zeros(len(self))
        hi = expand_upper_brackets(lambda x: level_fn(x) - y, lo, initial=1.0)
        solved = vectorized_bisect(lambda x: level_fn(x) - y, lo, hi,
                                   tol=_INVERSE_TOL)
        return np.where(y <= at_zero, 0.0, solved)

    def inverse_values(self, y: float) -> np.ndarray:
        if self.is_monomial:
            return _power_loads_at_levels(
                np.array([y]), self.mono_coeffs, self.mono_degrees,
                self.mono_consts, self.offsets, "nash")[0]
        return self._bisect_inverse(self.values, y)

    def inverse_marginals(self, y: float) -> np.ndarray:
        if self.analytic_for("optimum"):
            return _power_loads_at_levels(
                np.array([y]), self.mono_coeffs, self.mono_degrees,
                self.mono_consts, self.offsets, "optimum")[0]
        return self._bisect_inverse(
            lambda x: self.values(x) + x * self.derivs(x), y)

    def domain_upper(self) -> np.ndarray:
        return np.full(len(self), math.inf)

    def analytic_for(self, kind: str) -> bool:
        if not self.is_monomial:
            return False
        if kind == "nash":
            return True
        return bool(np.all((self.offsets == 0.0) | (self.mono_degrees == 1.0)))

    def level_flow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        return _power_loads_at_levels(levels, self.mono_coeffs,
                                      self.mono_degrees, self.mono_consts,
                                      self.offsets, kind).sum(axis=1)

    def level_dflow_sum(self, levels: np.ndarray, kind: str) -> np.ndarray:
        return _power_dloads_at_levels(levels, self.mono_coeffs,
                                       self.mono_degrees, self.mono_consts,
                                       self.offsets, kind).sum(axis=1)

    def level_flow_dflow_sum(self, levels: np.ndarray,
                             kind: str) -> Tuple[np.ndarray, np.ndarray]:
        return _power_level_flow_dflow(levels, self.mono_coeffs,
                                       self.mono_degrees, self.mono_consts,
                                       self.offsets, kind)


class _GenericFamily(_Members):
    """Fallback bucket: unknown subclasses evaluated with the scalar loop."""

    name = "generic"

    def __init__(self) -> None:
        super().__init__()
        self.functions: List[LatencyFunction] = []

    def add(self, index: int, lat: LatencyFunction) -> None:
        self.indices.append(index)
        self.functions.append(lat)

    def freeze(self) -> None:
        pass

    def take(self, rows: Sequence[int], new_indices: Sequence[int]) -> "_GenericFamily":
        clone = type(self)()
        clone.indices = list(new_indices)
        clone.functions = [self.functions[r] for r in rows]
        return clone

    def _per_link(self, x, method: str) -> np.ndarray:
        if np.isscalar(x):
            return np.array([float(getattr(lat, method)(x))
                             for lat in self.functions])
        return np.array([float(getattr(lat, method)(xi))
                         for lat, xi in zip(self.functions, x)])

    def values(self, x) -> np.ndarray:
        return self._per_link(x, "value")

    def derivs(self, x) -> np.ndarray:
        return self._per_link(x, "derivative")

    def second_derivs(self, x) -> np.ndarray:
        raise ModelError(
            "generic latency functions expose no second derivative")

    def integrals(self, x) -> np.ndarray:
        return self._per_link(x, "integral")

    def inverse_values(self, y: float) -> np.ndarray:
        return np.array([0.0 if lat.is_constant else float(lat.inverse_value(y))
                         for lat in self.functions])

    def inverse_marginals(self, y: float) -> np.ndarray:
        return np.array([0.0 if lat.is_constant
                         else float(lat.inverse_marginal(y))
                         for lat in self.functions])

    def domain_upper(self) -> np.ndarray:
        return np.array([float(lat.domain_upper) for lat in self.functions])


class _LevelProfile:
    """The sorted-breakpoint water-filling view of one batch for one kind.

    Splits the increasing families into *analytic* rows — those with a
    closed-form inverse for the requested equalisation kind, evaluated on a
    whole grid of candidate levels in one broadcast — and *numeric* rows
    (multi-term polynomials; shifted powers when equalising marginal costs)
    that are inverted per scalar level through the bisection fallback.  The
    level engine (:func:`repro.utils.vectorized.sorted_breakpoint_level`)
    consumes this object: ``breakpoints`` are the free-flow activation
    levels, ``flow_grid`` the vectorized analytic filled flow, ``extra`` /
    ``dflow`` the scalar hooks covering the numeric remainder.
    """

    #: Cap on level-grid x family-row broadcast size per chunk (elements).
    _CHUNK_ELEMENTS = 2_000_000

    def __init__(self, batch: "LatencyBatch", kind: str) -> None:
        self.kind = kind
        self._analytic: List[_Members] = []
        self._numeric: List[_Members] = []
        for fam in batch._families:
            if isinstance(fam, (_ConstantFamily, _GenericFamily)):
                continue
            if fam.analytic_for(kind):
                self._analytic.append(fam)
            else:
                self._numeric.append(fam)
        self.breakpoints = batch.values_at_zero[~batch.is_constant]
        self._rows = sum(len(fam) for fam in self._analytic)
        self._grid_levels: Optional[np.ndarray] = None
        self._grid_flows: Optional[np.ndarray] = None

    @property
    def has_numeric(self) -> bool:
        return bool(self._numeric)

    def grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted unique breakpoints with their analytic filled flows.

        The grid is demand-independent, so it is computed once per profile
        (i.e. once per batch and solve kind) and shared by every subsequent
        solve — repeated water fillings of the same links cost only the
        segment lookup plus a few Newton evaluations.
        """
        if self._grid_flows is None:
            levels = np.unique(self.breakpoints)
            if levels.size == 0 or not np.all(np.isfinite(levels)):
                raise ModelError(
                    "water filling needs finite activation breakpoints on "
                    "at least one strictly increasing link")
            self._grid_levels = levels
            self._grid_flows = self.flow_grid(levels)
        return self._grid_levels, self._grid_flows

    def _chunked(self, levels, method: str) -> np.ndarray:
        levels = np.asarray(levels, dtype=float)
        total = np.zeros(levels.shape[0])
        chunk = max(1, self._CHUNK_ELEMENTS // max(self._rows, 1))
        for start in range(0, levels.shape[0], chunk):
            block = levels[start:start + chunk]
            out = total[start:start + chunk]
            for fam in self._analytic:
                out += getattr(fam, method)(block, self.kind)
        return total

    def flow_grid(self, levels) -> np.ndarray:
        """Total analytic filled flow at each candidate level."""
        return self._chunked(levels, "level_flow_sum")

    def dflow_grid(self, levels) -> np.ndarray:
        """Derivative of the analytic filled flow at each candidate level."""
        return self._chunked(levels, "level_dflow_sum")

    def _numeric_inverse(self, fam: _Members, level: float) -> np.ndarray:
        return fam.inverse_values(level) if self.kind == "nash" \
            else fam.inverse_marginals(level)

    def extra(self, level: float) -> float:
        """Filled flow of the numeric rows at a scalar level."""
        total = 0.0
        for fam in self._numeric:
            total += float(self._numeric_inverse(fam, level).sum())
        return total

    def _numeric_dflow(self, fam: _Members, x: np.ndarray) -> float:
        """``d(filled flow)/dL`` of one numeric family at its loads ``x``."""
        active = x > 0.0
        if not np.any(active):
            return 0.0
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            d1 = fam.derivs(x)
            if self.kind == "nash":
                denom = d1
            else:
                denom = 2.0 * d1 + x * fam.second_derivs(x)
            contrib = np.where(active & (denom > 0.0), 1.0 / denom, 0.0)
        return float(contrib.sum())

    def dflow(self, level: float) -> float:
        """Total ``d(filled flow)/dL`` at a scalar level, numeric rows included."""
        total = float(self.dflow_grid(np.array([level]))[0])
        for fam in self._numeric:
            total += self._numeric_dflow(fam, self._numeric_inverse(fam, level))
        return total

    def flow_dflow_grid(self, levels) -> Tuple[np.ndarray, np.ndarray]:
        """Fused batched ``(flow, dflow)`` at an array of levels.

        The array analogue of :meth:`flow_dflow` for the analytic rows: one
        pass per family sharing the ``np.power`` intermediates between the
        flow and its derivative, so the batched engine's Newton iterations
        cost one family sweep instead of two.
        """
        levels = np.asarray(levels, dtype=float)
        flow = np.zeros(levels.shape[0])
        dflow = np.zeros(levels.shape[0])
        chunk = max(1, self._CHUNK_ELEMENTS // max(self._rows, 1))
        for start in range(0, levels.shape[0], chunk):
            block = levels[start:start + chunk]
            for fam in self._analytic:
                f, d = fam.level_flow_dflow_sum(block, self.kind)
                flow[start:start + chunk] += f
                dflow[start:start + chunk] += d
        return flow, dflow

    def flow_dflow(self, level: float) -> Tuple[float, float]:
        """Fused ``(filled flow, d flow/dL)`` at a scalar level.

        One pass over the families sharing the expensive ``np.power``
        intermediates between the flow and its derivative — the per-iteration
        evaluation of the engine's safeguarded Newton loop.  Numeric rows
        contribute their bisected inverse and the implicit-function derivative
        ``1 / (d/dx level(x))`` at it.
        """
        levels = np.array([float(level)])
        flow = 0.0
        dflow = 0.0
        for fam in self._analytic:
            f, d = fam.level_flow_dflow_sum(levels, self.kind)
            flow += float(f[0])
            dflow += float(d[0])
        for fam in self._numeric:
            x = self._numeric_inverse(fam, level)
            flow += float(x.sum())
            dflow += self._numeric_dflow(fam, x)
        return flow, dflow


class LatencyBatch:
    """A family-grouped, array-backed view of a sequence of latency functions.

    Construction is O(m); every evaluation afterwards is a handful of array
    operations (one per non-empty family).  Instances are immutable once
    built and safe to cache alongside the latency sequence they mirror.
    """

    def __init__(self, latencies: Sequence[LatencyFunction]) -> None:
        latencies = tuple(latencies)
        for i, lat in enumerate(latencies):
            if not isinstance(lat, LatencyFunction):
                raise ModelError(
                    f"link {i}: expected a LatencyFunction, "
                    f"got {type(lat).__name__}")
        self.latencies = latencies
        self._linear = _LinearFamily()
        self._constant = _ConstantFamily()
        self._power = _PowerFamily()
        self._mm1 = _MM1Family()
        self._poly = _PolyFamily()
        self._generic = _GenericFamily()
        constant_mask = np.zeros(len(latencies), dtype=bool)
        for i, lat in enumerate(latencies):
            constant_mask[i] = self._dispatch(i, lat)
        families = [self._linear, self._constant, self._power, self._mm1,
                    self._poly, self._generic]
        self._families = [fam for fam in families if len(fam)]
        for fam in self._families:
            fam.freeze()
        self._index_arrays = [fam.index_array() for fam in self._families]
        self.is_constant = constant_mask
        self._values_at_zero: Optional[np.ndarray] = None
        self._domain_upper: Optional[np.ndarray] = None
        self._profiles: dict = {}

    # ------------------------------------------------------------------ #
    # Canonicalisation
    # ------------------------------------------------------------------ #
    def _dispatch(self, index: int, lat: LatencyFunction) -> bool:
        """Route one latency into its family bucket; returns ``is_constant``."""
        base, offset, factor = _unwrap(lat)
        if isinstance(base, LinearLatency):
            slope = factor * base.slope
            intercept = factor * (base.slope * offset + base.intercept)
            if slope == 0.0:
                self._constant.add(index, intercept)
                return True
            self._linear.add(index, slope, intercept)
            return False
        if isinstance(base, ConstantLatency):
            self._constant.add(index, factor * base.constant)
            return True
        if isinstance(base, MM1Latency):
            self._mm1.add(index, base.capacity - offset, factor)
            return False
        if isinstance(base, MonomialLatency):
            if base.coefficient == 0.0:
                self._constant.add(index, factor * base.constant)
                return True
            self._power.add(index, factor * base.coefficient, base.degree,
                            factor * base.constant, offset)
            return False
        if isinstance(base, BPRLatency):
            if base.alpha == 0.0:
                self._constant.add(index, factor * base.free_flow_time)
                return True
            coeff = (factor * base.free_flow_time * base.alpha
                     / base.capacity ** base.beta)
            self._power.add(index, coeff, base.beta,
                            factor * base.free_flow_time, offset)
            return False
        if isinstance(base, PolynomialLatency):
            if base.is_constant:
                self._constant.add(index, factor * base.coefficients[0])
                return True
            coeffs = tuple(factor * c for c in base.coefficients)
            self._poly.add(index, coeffs, offset)
            return False
        self._generic.add(index, lat)  # keep the *wrapped* object intact
        return bool(lat.is_constant)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self.latencies)

    def __len__(self) -> int:
        return self.size

    @property
    def family_names(self) -> Tuple[str, ...]:
        """Names of the non-empty family buckets (construction order)."""
        return tuple(fam.name for fam in self._families)

    @property
    def has_generic(self) -> bool:
        return len(self._generic) > 0

    @property
    def supports_newton(self) -> bool:
        """Whether every link has a well-behaved analytic second derivative.

        Power rows with exponents in the open interval (1, 2) are excluded:
        their second derivative diverges at zero load, which would destabilise
        a Newton line search near the boundary.
        """
        if self.has_generic:
            return False
        if len(self._power):
            d = self._power.degrees
            if np.any((d > 1.0) & (d < 2.0)):
                return False
        return True

    @property
    def values_at_zero(self) -> np.ndarray:
        """Free-flow latencies ``l_i(0)`` (also the marginal costs at zero)."""
        if self._values_at_zero is None:
            self._values_at_zero = self.values(0.0)
            self._values_at_zero.setflags(write=False)
        return self._values_at_zero

    @property
    def domain_upper(self) -> np.ndarray:
        """Per-link exclusive upper ends of the latency domains."""
        if self._domain_upper is None:
            out = np.empty(self.size)
            for fam, idx in zip(self._families, self._index_arrays):
                out[idx] = fam.domain_upper()
            out.setflags(write=False)
            self._domain_upper = out
        return self._domain_upper

    def linear_increasing_params(self) -> Optional[Tuple[np.ndarray, np.ndarray,
                                                         np.ndarray]]:
        """``(slopes, intercepts, indices)`` when every increasing link is affine.

        Returns ``None`` as soon as any non-constant link belongs to another
        family; the all-linear closed-form water-filling solve only applies in
        the pure case.
        """
        increasing = int(np.count_nonzero(~self.is_constant))
        if len(self._linear) != increasing:
            return None
        return (self._linear.slopes, self._linear.intercepts,
                self._linear.index_array())

    def level_profile(self, kind: str) -> Optional[_LevelProfile]:
        """The sorted-breakpoint engine profile for ``kind`` (cached).

        Returns ``None`` when some strictly increasing link sits in the
        generic bucket: those rows have no family closed form at all, so the
        legacy bracket-and-bisect level solve is the only correct path.
        """
        if kind not in ("nash", "optimum"):
            raise ModelError(f"unknown water-filling kind {kind!r}")
        cached = self._profiles.get(kind)
        if cached is None:
            if len(self._generic) and bool(np.any(
                    ~self.is_constant[self._generic.index_array()])):
                cached = False  # remembered "no profile available"
            else:
                cached = _LevelProfile(self, kind)
            self._profiles[kind] = cached
        return cached or None

    def subset(self, indices: Sequence[int]) -> "LatencyBatch":
        """The batch restricted to ``indices``, by slicing the family arrays.

        Equivalent to ``LatencyBatch([batch.latencies[i] for i in indices])``
        but without re-running the per-link canonicaliser — the OpTop
        recursion derives each round's sub-instance batch this way.
        """
        indices = [int(i) for i in indices]
        if not indices:
            raise ModelError("subset needs at least one link index")
        positions = {}
        for j, i in enumerate(indices):
            if not 0 <= i < self.size:
                raise ModelError(f"subset index {i} out of range 0..{self.size - 1}")
            if i in positions:
                raise ModelError("subset indices must be unique")
            positions[i] = j
        new = object.__new__(LatencyBatch)
        new.latencies = tuple(self.latencies[i] for i in indices)
        for attr in ("_linear", "_constant", "_power", "_mm1", "_poly",
                     "_generic"):
            fam = getattr(self, attr)
            rows = [r for r, old in enumerate(fam.indices) if old in positions]
            setattr(new, attr, fam.take(
                rows, [positions[fam.indices[r]] for r in rows]))
        families = [new._linear, new._constant, new._power, new._mm1,
                    new._poly, new._generic]
        new._families = [fam for fam in families if len(fam)]
        new._index_arrays = [fam.index_array() for fam in new._families]
        new.is_constant = self.is_constant[np.asarray(indices, dtype=np.intp)]
        new._values_at_zero = None
        new._domain_upper = None
        new._profiles = {}
        return new

    # ------------------------------------------------------------------ #
    # Batched calculus
    # ------------------------------------------------------------------ #
    def _gather(self, method: str, x) -> np.ndarray:
        scalar = np.isscalar(x)
        if not scalar:
            x = np.asarray(x, dtype=float)
            if x.shape != (self.size,):
                raise ModelError(
                    f"expected {self.size} loads, got shape {x.shape}")
        out = np.empty(self.size)
        for fam, idx in zip(self._families, self._index_arrays):
            xf = x if scalar else x[idx]
            out[idx] = getattr(fam, method)(xf)
        return out

    def values(self, x) -> np.ndarray:
        """Per-link latencies ``l_i(x_i)`` (``x`` scalar or per-link vector)."""
        return self._gather("values", x)

    def derivs(self, x) -> np.ndarray:
        """Per-link derivatives ``l_i'(x_i)``."""
        return self._gather("derivs", x)

    def second_derivs(self, x) -> np.ndarray:
        """Per-link second derivatives ``l_i''(x_i)``."""
        return self._gather("second_derivs", x)

    def integrals(self, x) -> np.ndarray:
        """Per-link Beckmann integrals ``\\int_0^{x_i} l_i(t) dt``."""
        return self._gather("integrals", x)

    def marginals(self, x) -> np.ndarray:
        """Per-link marginal costs ``l_i(x_i) + x_i l_i'(x_i)``."""
        x_arr = x if np.isscalar(x) else np.asarray(x, dtype=float)
        return self.values(x) + x_arr * self.derivs(x)

    def link_costs(self, x) -> np.ndarray:
        """Per-link total costs ``x_i l_i(x_i)``."""
        x_arr = x if np.isscalar(x) else np.asarray(x, dtype=float)
        return x_arr * self.values(x)

    def total_cost(self, x) -> float:
        """``C(x) = sum_i x_i l_i(x_i)``."""
        return float(np.sum(self.link_costs(x)))

    def beckmann(self, x) -> float:
        """``sum_i \\int_0^{x_i} l_i(t) dt``."""
        return float(np.sum(self.integrals(x)))

    # ------------------------------------------------------------------ #
    # Batched inverses
    # ------------------------------------------------------------------ #
    def inverse_values(self, level: float) -> np.ndarray:
        """Per-link least loads with ``l_i(x) = level`` (0 below free flow).

        Constant links contribute 0; callers mask them via ``is_constant``.
        """
        return self._gather("inverse_values", float(level))

    def inverse_marginals(self, level: float) -> np.ndarray:
        """Per-link least loads with marginal cost equal to ``level``."""
        return self._gather("inverse_marginals", float(level))
