"""Latency (load-dependent delay) functions.

The paper's model endows every link / edge with a *standard* latency function
``l(x)``: non-negative, differentiable, strictly increasing, with ``x*l(x)``
convex (Section 4, Remark 2.5).  This package provides the analytic families
used throughout the reproduction together with the calculus every solver needs:

* values ``l(x)``,
* derivatives ``l'(x)``,
* Beckmann integrals ``\\int_0^x l(t) dt`` (the potential minimised by a
  Wardrop/Nash equilibrium),
* marginal costs ``(x*l(x))' = l(x) + x*l'(x)`` (whose equalisation
  characterises the system optimum),
* inverses of the value and of the marginal cost (used by the exact
  water-filling solvers on parallel links), and
* the *shifted* latency ``l(x + s)`` describing what Followers experience on a
  link pre-loaded with Stackelberg flow ``s``.

Constant latencies are supported as a documented extension (the paper's Pigou
example needs one); they are flagged via ``is_constant`` so the solvers can
treat them as flow sinks at a fixed delay.
"""

from repro.latency.base import LatencyFunction
from repro.latency.batch import LatencyBatch
from repro.latency.linear import ConstantLatency, LinearLatency
from repro.latency.polynomial import BPRLatency, MonomialLatency, PolynomialLatency
from repro.latency.mm1 import MM1Latency
from repro.latency.shifted import ScaledLatency, ShiftedLatency

__all__ = [
    "LatencyFunction",
    "LatencyBatch",
    "LinearLatency",
    "ConstantLatency",
    "PolynomialLatency",
    "MonomialLatency",
    "BPRLatency",
    "MM1Latency",
    "ShiftedLatency",
    "ScaledLatency",
]
