"""Linear / affine and constant latency functions."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.latency.base import ArrayLike, LatencyFunction

__all__ = ["LinearLatency", "ConstantLatency"]


class LinearLatency(LatencyFunction):
    """Affine latency ``l(x) = slope * x + intercept``.

    ``slope > 0`` gives the strictly increasing latencies assumed by the paper
    (Remark 2.5); ``slope == 0`` is permitted and yields a constant latency
    (prefer :class:`ConstantLatency` for clarity).  The Koutsoupias–
    Papadimitriou / Roughgarden–Tardos 4/3 price-of-anarchy bound applies to
    systems whose latencies are all of this form.
    """

    __slots__ = ("slope", "intercept")

    def __init__(self, slope: float, intercept: float = 0.0) -> None:
        if slope < 0.0:
            raise ModelError(f"latency slope must be >= 0, got {slope!r}")
        if intercept < 0.0:
            raise ModelError(f"latency intercept must be >= 0, got {intercept!r}")
        self.slope = float(slope)
        self.intercept = float(intercept)

    # calculus ---------------------------------------------------------- #
    def value(self, x: ArrayLike) -> ArrayLike:
        return self.slope * x + self.intercept

    def derivative(self, x: ArrayLike) -> ArrayLike:
        if np.isscalar(x):
            return self.slope
        return np.full_like(np.asarray(x, dtype=float), self.slope)

    def integral(self, x: ArrayLike) -> ArrayLike:
        if np.isscalar(x):
            return 0.5 * self.slope * x * x + self.intercept * x
        x_arr = np.asarray(x, dtype=float)
        return 0.5 * self.slope * x_arr * x_arr + self.intercept * x_arr

    def marginal_cost(self, x: ArrayLike) -> ArrayLike:
        return 2.0 * self.slope * x + self.intercept

    # inverses ---------------------------------------------------------- #
    @property
    def is_constant(self) -> bool:
        return self.slope == 0.0

    def inverse_value(self, y: float) -> float:
        if self.is_constant:
            return super().inverse_value(y)  # raises LatencyDomainError
        if y <= self.intercept:
            return 0.0
        return (y - self.intercept) / self.slope

    def inverse_marginal(self, y: float) -> float:
        if self.is_constant:
            return super().inverse_marginal(y)  # raises LatencyDomainError
        if y <= self.intercept:
            return 0.0
        return (y - self.intercept) / (2.0 * self.slope)

    def __repr__(self) -> str:
        return f"LinearLatency(slope={self.slope!r}, intercept={self.intercept!r})"


class ConstantLatency(LatencyFunction):
    """Load-independent latency ``l(x) = c``.

    Constant latencies are the documented extension of the paper's model
    (Remark 2.5 and [16]): the optimum and Nash *edge* latencies remain unique
    even though the split of flow among identical constant links may not be.
    The water-filling solvers treat such links as absorbing any flow at delay
    ``c``.
    """

    __slots__ = ("constant",)

    def __init__(self, constant: float) -> None:
        if constant < 0.0:
            raise ModelError(f"constant latency must be >= 0, got {constant!r}")
        self.constant = float(constant)

    def value(self, x: ArrayLike) -> ArrayLike:
        if np.isscalar(x):
            return self.constant
        return np.full_like(np.asarray(x, dtype=float), self.constant)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        if np.isscalar(x):
            return 0.0
        return np.zeros_like(np.asarray(x, dtype=float))

    def integral(self, x: ArrayLike) -> ArrayLike:
        if np.isscalar(x):
            return self.constant * x
        return self.constant * np.asarray(x, dtype=float)

    def marginal_cost(self, x: ArrayLike) -> ArrayLike:
        return self.value(x)

    @property
    def is_constant(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ConstantLatency({self.constant!r})"
