"""Two-tier result cache: in-memory LRU above the on-disk artifact store.

Tier 1 is a thread-safe :class:`repro.cache.LRUCache` (fast, bounded,
process-local); tier 2 is the content-addressed
:class:`repro.study.store.ArtifactStore` (persistent, shared across
processes and with the study pipeline — a report solved by ``repro study
run --store`` is served by the service without any solver work, and vice
versa).

Semantics:

* **Lookup** probes tier 1 first; a tier-2 hit is *promoted* into tier 1 so
  repeated traffic for a hot key never touches the disk again.
* **Write-through**: :meth:`TieredCache.put` lands a fresh report in both
  tiers, so a process restart loses only latency, never results.
* **Per-tier accounting**: the cache keeps its own lock-guarded counters —
  ``memory_hits + store_hits + misses == lookups`` holds exactly under
  concurrency — and additionally exposes the raw counters of both backing
  tiers.

Entries are addressed by what determines the solver output: the instance
digest, the strategy name and the canonical config JSON (the same triple the
session cache and the artifact store already key on).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.api.config import SolveConfig
from repro.api.registry import REGISTRY
from repro.api.report import SolveReport
from repro.cache import LRUCache
from repro.exceptions import ModelError
from repro.study.store import ArtifactStore, artifact_key, storable_strategy

__all__ = ["TieredCache", "TIER_MEMORY", "TIER_STORE"]

#: Tier labels returned by :meth:`TieredCache.get`.
TIER_MEMORY = "memory"
TIER_STORE = "store"


class TieredCache:
    """Write-through memory+disk cache for solve reports.

    Parameters
    ----------
    memory:
        The tier-1 LRU; a fresh bounded one is created when omitted.
    store:
        Optional tier-2 :class:`~repro.study.store.ArtifactStore`; without
        it the cache degrades gracefully to a single in-memory tier.
    max_entries:
        Bound of the auto-created tier-1 cache (ignored when ``memory`` is
        given).
    shared_store:
        Mark the store as *shared* between several writers (cluster
        shards, a concurrent study run).  Write-throughs then use
        :meth:`~repro.study.store.ArtifactStore.put_if_absent` — content
        addressing makes every writer's payload identical, so once any
        process has landed an artifact the remaining writers skip the
        disk I/O.
    """

    def __init__(self, *, memory: Optional[LRUCache] = None,
                 store: Optional[ArtifactStore] = None,
                 max_entries: int = 4096,
                 shared_store: bool = False) -> None:
        self.memory = LRUCache(max_entries=max_entries) if memory is None \
            else memory
        self.store = store
        self.shared_store = bool(shared_store)
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "lookups": 0, "memory_hits": 0, "store_hits": 0, "misses": 0,
            "puts": 0, "store_errors": 0}

    @staticmethod
    def memory_key(digest: str, strategy: str,
                   config: SolveConfig) -> Tuple[str, str, str]:
        """The tier-1 key of one solved cell.

        Mixes in the strategy's registry generation (like the session-layer
        cache) so re-registering a name with a new implementation
        invalidates tier-1 entries instead of serving the old
        implementation's reports.
        """
        return (f"{strategy}@{REGISTRY.generation(strategy)}", digest,
                config.to_json())

    #: Shared storability rule: tier 2 is bypassed for strategies
    #: re-registered in this process, exactly like the study runner.
    _storable = staticmethod(storable_strategy)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, digest: str, strategy: str, config: SolveConfig,
            ) -> Tuple[Optional[SolveReport], Optional[str]]:
        """Look one cell up; returns ``(report, tier)``.

        ``tier`` is :data:`TIER_MEMORY`, :data:`TIER_STORE` (the report was
        promoted into memory) or ``None`` on a full miss.
        """
        report = self.get_memory(digest, strategy, config)
        if report is not None:
            return report, TIER_MEMORY
        stored = self.get_store(digest, strategy, config)
        if stored is not None:
            return stored, TIER_STORE
        return None, None

    def get_memory(self, digest: str, strategy: str, config: SolveConfig,
                   ) -> Optional[SolveReport]:
        """Tier-1-only probe (pure in-memory, no disk I/O).

        A hit completes the logical lookup (counted as ``memory_hits``); a
        miss counts nothing yet — the caller is expected to finish the
        lookup with :meth:`get_store` exactly once, which records either a
        ``store_hits`` or a ``misses`` outcome.  :meth:`get` composes the
        two; callers that must not touch the disk while holding their own
        locks (the serving front-end) split them.
        """
        report = self.memory.get(self.memory_key(digest, strategy, config))
        if report is not None:
            self._count("memory_hits")
        return report

    def get_store(self, digest: str, strategy: str, config: SolveConfig,
                  ) -> Optional[SolveReport]:
        """Tier-2 probe, completing a lookup that missed tier 1.

        A hit is promoted into tier 1 and counted as ``store_hits``;
        anything else counts as a ``misses`` outcome.  A *corrupt*
        artifact is quarantined by the store itself (visible as
        ``stats()["store"]["corrupt"]``) and surfaces here as a plain
        miss, so the write-through of the fresh solve repairs it;
        ``store_errors`` remains as a belt for a store that raises
        anyway.
        """
        if self.store is not None and self._storable(strategy):
            try:
                stored = self.store.get(
                    artifact_key(digest, strategy, config))
            except ModelError:
                # A damaged artifact must not take the service down (or
                # leak out of a lookup): treat it as a miss, count it, and
                # let the write-through replace the bad file.
                with self._lock:
                    self._counters["store_errors"] += 1
                stored = None
            if stored is not None:
                self.memory.put(self.memory_key(digest, strategy, config),
                                stored)
                self._count("store_hits")
                return stored
        self._count("misses")
        return None

    def put(self, digest: str, strategy: str, config: SolveConfig,
            report: SolveReport) -> None:
        """Write-through insert into both tiers.

        Tier 1 is written first, so even when the disk write fails the
        report is served from memory; tier 2 is skipped for re-registered
        strategies (see :meth:`_storable`).
        """
        self.memory.put(self.memory_key(digest, strategy, config), report)
        if self.store is not None and self._storable(strategy):
            key = artifact_key(digest, strategy, config)
            if self.shared_store:
                self.store.put_if_absent(key, report)
            else:
                self.store.put(key, report)
        with self._lock:
            self._counters["puts"] += 1

    def _count(self, outcome: str) -> None:
        # Monotonicity audit: every mutation of self._counters happens
        # inside self._lock, and ``lookups`` moves in the same critical
        # section as its outcome bucket — so each counter is monotone
        # non-decreasing under any interleaving and a stats() reader can
        # never observe ``lookups`` ahead of the bucket sum (or behind
        # it).  The only counter writes outside this helper (put's
        # ``puts`` and get_store's ``store_errors``) take the same lock.
        with self._lock:
            self._counters["lookups"] += 1
            self._counters[outcome] += 1

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Atomic tier-level counters plus the raw backing-tier stats.

        ``memory_hits + store_hits + misses == lookups`` always holds for
        the top-level counters of one :class:`TieredCache` handle.  (The
        three sections are snapshotted under three different locks — the
        cache's, the LRU's, the store's — so each section is internally
        exact while cross-section comparisons can be transiently ahead or
        behind by in-flight operations.)
        """
        with self._lock:
            top = dict(self._counters)
        return {
            **top,
            "memory": self.memory.stats(),
            "store": None if self.store is None else self.store.stats(),
        }

    def clear_memory(self) -> int:
        """Drop tier 1 (the artifacts stay); returns entries dropped."""
        return self.memory.clear()

    def reset(self) -> None:
        """Zero every counter — this cache's, tier 1's, and tier 2's —
        while keeping all cached entries.

        The benchmark seam: re-measuring a warm configuration previously
        meant rebuilding the cache (and the store handle) just to start
        from clean counters; ``reset()`` keeps the warmth and drops only
        the accounting.  Each tier resets under its own lock, so the
        per-tier invariants hold before and after.
        """
        with self._lock:
            for key in self._counters:
                self._counters[key] = 0
        self.memory.reset_stats()
        if self.store is not None:
            self.store.reset_stats()
