"""`repro.serve` — the high-throughput serving layer.

Turns the blocking one-shot :mod:`repro.api` call path into a service fit
for heavy traffic:

>>> from repro.serve import SolveService
>>> from repro import instances
>>> with SolveService(max_batch=32, max_wait_ms=2.0) as service:
...     future = service.submit(instances.pigou())      # returns immediately
...     report = future.result()
>>> round(report.beta, 6)
0.5

The pieces:

* :class:`SolveService` — micro-batching request queue that coalesces
  concurrent submissions into :func:`repro.api.solve_many` batches, with
  bounded-queue backpressure and a start/drain/shutdown lifecycle;
* :class:`TieredCache` — write-through tier-1 in-memory LRU
  (:class:`repro.cache.LRUCache`) above the tier-2 on-disk
  :class:`repro.study.store.ArtifactStore`, with exact per-tier counters;
* :class:`ServiceStats` — an atomic snapshot whose buckets partition the
  request count exactly (``requests == tier1_hits + tier2_hits + coalesced
  + enqueued + rejected + probing``, the last transiently covering
  requests whose tier-2 disk probe is executing at snapshot time);
* :func:`run_bench` / ``repro serve bench`` — a seed-deterministic
  synthetic request stream for measuring throughput and cache behaviour.
"""

from repro.serve.bench import BenchPass, BenchResult, build_workload, run_bench
from repro.serve.cache import TIER_MEMORY, TIER_STORE, TieredCache
from repro.serve.service import ServiceStats, SolveService

__all__ = [
    "SolveService",
    "ServiceStats",
    "TieredCache",
    "TIER_MEMORY",
    "TIER_STORE",
    "BenchPass",
    "BenchResult",
    "build_workload",
    "run_bench",
]
