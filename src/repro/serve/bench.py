"""Synthetic request-stream benchmark for :class:`~repro.serve.SolveService`.

Drives a seed-deterministic mixed workload — ``num_requests`` submissions
drawn (with a mild popularity skew) from ``num_distinct`` random
parallel-link instances — through a service, optionally for several passes
over the same stream, and reports throughput plus the full
:class:`~repro.serve.service.ServiceStats` per pass.  The CLI front-end is
``repro serve bench``; the load-test suite reuses :func:`build_workload`
so the benchmarked stream and the tested stream are the same code path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import SolveConfig
from repro.exceptions import ModelError
from repro.instances.random_parallel import random_linear_parallel
from repro.serve.service import ServiceStats, SolveService
from repro.study.store import ArtifactStore

__all__ = ["BenchPass", "BenchResult", "build_workload", "run_bench"]


@dataclass(frozen=True)
class BenchPass:
    """One pass over the synthetic stream: wall time and the stats delta."""

    index: int
    seconds: float
    requests: int
    stats: ServiceStats

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def _rate(self, count: int) -> float:
        """``count`` as a percentage of this pass's requests."""
        return 100.0 * count / self.requests if self.requests > 0 else 0.0

    @property
    def tier1_hit_rate(self) -> float:
        """Tier-1 (in-memory LRU) hits as a percentage of requests."""
        return self._rate(self.stats.tier1_hits)

    @property
    def tier2_hit_rate(self) -> float:
        """Tier-2 (artifact store) hits as a percentage of requests."""
        return self._rate(self.stats.tier2_hits)

    @property
    def hit_rate(self) -> float:
        """Combined cache-hit percentage of this pass."""
        return self._rate(self.stats.hits)


@dataclass
class BenchResult:
    """Outcome of :func:`run_bench`: per-pass records plus final stats."""

    passes: List[BenchPass] = field(default_factory=list)
    final_stats: Optional[ServiceStats] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "passes": [{
                "index": p.index,
                "seconds": p.seconds,
                "requests": p.requests,
                "requests_per_second": p.requests_per_second,
                "tier1_hit_rate": p.tier1_hit_rate,
                "tier2_hit_rate": p.tier2_hit_rate,
                "hit_rate": p.hit_rate,
                "stats": p.stats.to_dict(),
            } for p in self.passes],
            "final_stats": None if self.final_stats is None
            else self.final_stats.to_dict(),
        }


def build_workload(*, num_requests: int, num_distinct: int,
                   num_links: int = 4, seed: int = 0,
                   ) -> Tuple[List[object], List[int]]:
    """A deterministic mixed request stream.

    Returns ``(instances, schedule)``: the ``num_distinct`` instances and
    the per-request instance index.  The schedule first touches every
    instance once (so a single pass exercises every key), then samples with
    a popularity skew — a random 10% of the catalogue absorbs half the
    remaining traffic, mimicking hot-key production streams.
    """
    if num_distinct < 1:
        raise ModelError(f"num_distinct must be >= 1, got {num_distinct!r}")
    if num_requests < num_distinct:
        raise ModelError(
            f"num_requests ({num_requests}) must cover every distinct "
            f"instance at least once ({num_distinct})")
    rng = random.Random(seed)
    instances = [
        random_linear_parallel(num_links, demand=1.0 + 0.25 * (i % 8),
                               seed=seed * 100_003 + i)
        for i in range(num_distinct)]
    schedule = list(range(num_distinct))
    hot = max(1, num_distinct // 10)
    hot_keys = rng.sample(range(num_distinct), hot)
    for _ in range(num_requests - num_distinct):
        if rng.random() < 0.5:
            schedule.append(rng.choice(hot_keys))
        else:
            schedule.append(rng.randrange(num_distinct))
    rng.shuffle(schedule)
    return instances, schedule


def run_bench(*, num_requests: int = 5000, num_distinct: int = 200,
              num_links: int = 4, seed: int = 0, passes: int = 2,
              strategy: str = "optop",
              store: Optional[ArtifactStore] = None,
              max_batch: int = 64, max_wait_ms: float = 2.0,
              max_queue: int = 0, max_workers: Optional[int] = 0,
              service: Optional[SolveService] = None,
              trace=None) -> BenchResult:
    """Push the synthetic stream through a service ``passes`` times.

    The per-pass stats are deltas against the previous pass, so the second
    pass of a healthy service shows (almost) pure cache hits and zero new
    batches.

    With a ``trace`` (a :class:`~repro.scenarios.trace.DemandTrace`) the
    stream becomes *time-varying*: request ``r`` of a pass is pinned to
    trace step ``r * len(trace) // num_requests`` and the submitted instance
    is the scheduled one re-scaled to that step's demand level — diurnal
    traffic instead of the fixed hot-key mix.  Repeated levels then repeat
    instance digests, which the tiered cache and the coalescer collapse.
    """
    config = SolveConfig(compute_nash=False)
    instances, schedule = build_workload(
        num_requests=num_requests, num_distinct=num_distinct,
        num_links=num_links, seed=seed)
    if trace is not None:
        from repro.scenarios.trace import DemandTrace

        if not isinstance(trace, DemandTrace):
            raise ModelError(
                f"trace must be a DemandTrace, got {type(trace).__name__}")
        num_steps = len(trace)
        instances = [
            instances[i].with_demand(trace.levels[r * num_steps
                                                  // len(schedule)])
            for r, i in enumerate(schedule)]
        schedule = list(range(len(instances)))
    own_service = service is None
    if own_service:
        service = SolveService(store=store, max_batch=max_batch,
                               max_wait_ms=max_wait_ms, max_queue=max_queue,
                               max_workers=max_workers)
    result = BenchResult()
    previous = service.stats()
    try:
        service.start()
        for pass_index in range(passes):
            start = time.perf_counter()
            futures = [service.submit(instances[i], strategy, config=config)
                       for i in schedule]
            for future in futures:
                future.result(timeout=300.0)
            seconds = time.perf_counter() - start
            now = service.stats()
            result.passes.append(BenchPass(
                index=pass_index, seconds=seconds, requests=len(schedule),
                stats=_delta(previous, now)))
            previous = now
    finally:
        if own_service:
            service.shutdown(wait=True, timeout=60.0)
    result.final_stats = service.stats()
    return result


def _delta(before: ServiceStats, after: ServiceStats) -> ServiceStats:
    """Per-pass difference of the cumulative counters.

    Every numeric bucket — including the flat tiered-cache counters — is
    delta-ed, so a pass's stats reconcile internally (``hits + misses ==
    lookups`` holds per pass).  The nested per-backend counters
    (``cache["memory"]`` / ``cache["store"]``) are *cumulative* handles and
    are therefore omitted from per-pass records; read them from
    ``final_stats``.  ``queue_peak`` and ``pending`` are point-in-time
    values, reported as observed at the end of the pass.
    """
    fields = ("requests", "tier1_hits", "tier2_hits", "coalesced", "enqueued",
              "rejected", "probing", "batches", "batched_requests",
              "batch_failures", "cache_put_failures", "pool_restarts",
              "worker_restarts", "timeouts", "shutdown_timeouts")
    diff = {name: getattr(after, name) - getattr(before, name)
            for name in fields}
    cache_delta = {
        name: after.cache.get(name, 0) - before.cache.get(name, 0)
        for name in ("lookups", "memory_hits", "store_hits", "misses",
                     "puts", "store_errors")}
    return ServiceStats(queue_peak=after.queue_peak, pending=after.pending,
                        cache=cache_delta, **diff)
