"""`SolveService`: a high-throughput, coalescing front-end over `solve_many`.

The session layer (:mod:`repro.api.session`) is a blocking one-shot call
path; this module turns it into a *service*:

* :meth:`SolveService.submit` returns a :class:`concurrent.futures.Future`
  immediately.  Cache hits resolve synchronously; misses enter a **bounded
  request queue** (backpressure: a full queue raises
  :class:`~repro.exceptions.ServiceOverloadedError` instead of growing
  memory without limit).
* A dispatcher thread **micro-batches** queued requests: it waits up to
  ``max_wait_ms`` to accumulate up to ``max_batch`` requests, groups them by
  ``(strategy, config)`` and executes each group with one
  :func:`repro.api.solve_many` call — so a thousand concurrent callers cost
  a handful of batch invocations, not a thousand solver round trips.  For
  strategies with a registered whole-batch solver (``aloof``), ``solve_many``
  additionally collapses each micro-batch into a single vectorized
  :func:`~repro.equilibrium.parallel.water_fill_many` pass over the
  coalesced demands — the service inherits the batched kernel for free.
* Concurrent requests for the same ``(instance digest, strategy, config)``
  are **coalesced**: the first enters the queue, the rest attach their
  futures to the in-flight entry and are all resolved by the single solve.
* Results are written through a :class:`~repro.serve.cache.TieredCache`
  (tier-1 in-memory LRU, tier-2 on-disk artifact store), so a warm service
  answers repeated traffic without any solver work and a restarted one
  re-warms from disk.
* **Lifecycle**: :meth:`start` / :meth:`drain` / :meth:`shutdown`.  A batch
  that crashes fails only its own futures; a broken process pool is retried
  once in-process (the next batch gets a fresh pool — ``solve_many`` builds
  one per call); a dispatcher thread that dies is restarted on the next
  submit.  All of it is counted in :class:`ServiceStats`.

Every request falls in exactly one accounting bucket — tier-1 hit, tier-2
hit, coalesced, enqueued, rejected, or (transiently, while its tier-2 probe
runs outside the lock) probing — so :attr:`ServiceStats.consistent` holds
at any instant, under any interleaving.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.api.config import SolveConfig
from repro.api.registry import get_strategy
from repro.api.report import SolveReport
from repro.api.session import resolve_strategy_name, solve_many
from repro.cache import LRUCache
from repro.exceptions import (
    ModelError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.serialization import instance_digest
from repro.serve.cache import TIER_MEMORY, TIER_STORE, TieredCache
from repro.study.store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector
    from repro.obs import Observability

__all__ = ["SolveService", "ServiceStats"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceStats:
    """Atomic snapshot of one :class:`SolveService`'s counters.

    ``requests`` partitions exactly into ``tier1_hits + tier2_hits +
    coalesced + enqueued + rejected + probing`` (:attr:`consistent`);
    ``cache`` nests the tiered-cache counters, whose own invariant is
    ``memory_hits + store_hits + misses == lookups``.
    """

    #: Total ``submit`` calls (including rejected ones).
    requests: int = 0
    #: Served synchronously from the in-memory LRU (tier 1).
    tier1_hits: int = 0
    #: Served synchronously from the artifact store (tier 2, promoted).
    tier2_hits: int = 0
    #: Attached to an already in-flight solve for the same key.
    coalesced: int = 0
    #: Entered the request queue (reached, or will reach, the solver).
    enqueued: int = 0
    #: Refused: the bounded queue was full (backpressure), or an internal
    #: error aborted the request before it reached the queue.
    rejected: int = 0
    #: Mid-flight snapshot artefact: requests currently probing tier 2
    #: (their bucket — tier-2 hit, enqueued or rejected — is not decided
    #: yet).  Zero whenever no submit() call is executing.
    probing: int = 0
    #: ``solve_many`` invocations (micro-batches actually executed).
    batches: int = 0
    #: Requests carried by those batches (excludes coalesced attachments).
    batched_requests: int = 0
    #: Batches whose solver call raised; their futures carry the exception.
    batch_failures: int = 0
    #: Solved requests whose write-through cache insert failed (disk full,
    #: permissions); the reports were still served from the solve.
    cache_put_failures: int = 0
    #: Broken process pools retried in-process (fresh pool next batch).
    pool_restarts: int = 0
    #: Dispatcher crash recoveries (respawned threads or in-place retries).
    worker_restarts: int = 0
    #: Requests failed with :class:`~repro.exceptions.ServiceTimeoutError`
    #: because their end-to-end deadline expired (at submit or while
    #: queued).  A side counter, not a partition bucket: an expired
    #: submission lands in ``rejected``, an expired queued request stays
    #: in ``enqueued``.
    timeouts: int = 0
    #: Shutdowns whose dispatcher thread outlived its join timeout (a hung
    #: solver batch); logged as a warning and counted here.
    shutdown_timeouts: int = 0
    #: High-water mark of the request queue length.
    queue_peak: int = 0
    #: Requests submitted but not yet resolved at snapshot time.
    pending: int = 0
    #: Side counters this build does not recognise, carried through
    #: :meth:`from_dict`/:meth:`merge` additively.  A gateway aggregating
    #: snapshots from newer (or older) workers must not silently drop
    #: their extra accounting — it rides here instead, keyed by the
    #: foreign counter name.
    extra: Dict[str, float] = field(default_factory=dict)
    #: Tiered-cache counters (top level plus per-tier backends).
    cache: Dict[str, Any] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Requests served from either cache tier without solver work."""
        return self.tier1_hits + self.tier2_hits

    @property
    def consistent(self) -> bool:
        """Exact bucket accounting: every request lands in one bucket.

        ``probing`` covers requests whose tier-2 probe is executing at
        snapshot time; it drains to zero once the submitting threads
        return.
        """
        return self.requests == (self.tier1_hits + self.tier2_hits
                                 + self.coalesced + self.enqueued
                                 + self.rejected + self.probing)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dictionary rendering (JSON-compatible).

        ``extra`` is omitted while empty, so a build that never saw a
        foreign counter emits the exact wire shape it always has.
        """
        data = asdict(self)
        if not data["extra"]:
            del data["extra"]
        data["hits"] = self.hits
        data["consistent"] = self.consistent
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceStats":
        """Rebuild a snapshot from :meth:`to_dict` output.

        The derived fields (``hits``, ``consistent``) are recomputed, not
        trusted.  Unknown **numeric** keys are preserved in :attr:`extra`
        instead of being dropped: snapshots ship across library versions
        (a worker and a gateway need not run identical builds), and a
        foreign side counter must survive aggregation rather than vanish
        from the merged view.  Unknown non-numeric keys are still ignored
        (there is no meaningful way to aggregate them).
        """
        known = {f.name for f in _STATS_FIELDS}
        fields = {key: value for key, value in data.items() if key in known}
        extra = dict(fields.pop("extra", None) or {})
        for key, value in data.items():
            if key in known or key in ("hits", "consistent"):
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            extra[key] = extra.get(key, 0) + value
        return cls(extra=extra, **fields)

    def merge(self, *others: "ServiceStats") -> "ServiceStats":
        """Aggregate snapshots from several services into one.

        Additive counters sum — so the bucket partition ``requests ==
        tier1_hits + tier2_hits + coalesced + enqueued + rejected +
        probing`` survives aggregation exactly (each side satisfies it, so
        the sum does).  ``queue_peak`` takes the max (it is a high-water
        mark, not a flow), ``pending`` sums (in-flight work is additive),
        and the nested ``cache`` counters merge recursively: numeric
        leaves add, dicts recurse, mismatched shapes drop to ``None``.
        ``extra`` (foreign side counters from mixed-version snapshots)
        merges additively by key — a counter only one side carries keeps
        its value.  This is what the cluster gateway's aggregated
        ``/stats`` is built from.
        """
        merged: Dict[str, Any] = {
            f.name: getattr(self, f.name) for f in _STATS_FIELDS}
        merged["extra"] = dict(merged["extra"])
        for other in others:
            for f in _STATS_FIELDS:
                if f.name == "cache":
                    merged["cache"] = _merge_cache(merged["cache"],
                                                   other.cache)
                elif f.name == "extra":
                    for key, value in other.extra.items():
                        merged["extra"][key] = \
                            merged["extra"].get(key, 0) + value
                elif f.name == "queue_peak":
                    merged["queue_peak"] = max(merged["queue_peak"],
                                               other.queue_peak)
                else:
                    merged[f.name] += getattr(other, f.name)
        return ServiceStats(**merged)


#: Declared fields of :class:`ServiceStats` (for from_dict/merge).
_STATS_FIELDS = tuple(ServiceStats.__dataclass_fields__.values())


def _merge_cache(left: Any, right: Any) -> Any:
    """Recursively merge two cache-counter trees (sum / recurse / drop)."""
    if isinstance(left, dict) and isinstance(right, dict):
        return {key: _merge_cache(left.get(key), right.get(key))
                for key in {*left, *right}}
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left + right
    if right is None:
        return left
    if left is None:
        return right
    return None


def _settle(future: Future, *, result=None, exception=None) -> None:
    """Resolve a future, tolerating one already settled elsewhere.

    A hard :meth:`SolveService.shutdown` can fail an in-flight future while
    its (stuck) batch eventually completes; the late resolution must then
    be a no-op, not a dispatcher crash.
    """
    try:
        if not future.set_running_or_notify_cancel():
            return
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)
    except (InvalidStateError, RuntimeError):
        # set_running_or_notify_cancel raises RuntimeError (not
        # InvalidStateError) on a FINISHED future; both mean "someone else
        # settled it first", which is exactly the tolerated case.
        pass


class _Request:
    """One queued solve: its cache key (or ``None``) and its futures."""

    __slots__ = ("key", "digest", "instance", "strategy", "config", "future",
                 "deadline", "trace_id")

    def __init__(self, key, digest, instance, strategy, config, future,
                 deadline=None, trace_id=None):
        self.key = key
        self.digest = digest
        self.instance = instance
        self.strategy = strategy
        self.config = config
        self.future = future
        self.deadline = deadline
        self.trace_id = trace_id


class SolveService:
    """Micro-batching, tier-cached, backpressured solve front-end.

    Parameters
    ----------
    store:
        Optional :class:`~repro.study.store.ArtifactStore` used as the
        tier-2 cache (shared with the study pipeline).
    cache:
        A prebuilt :class:`~repro.serve.cache.TieredCache`; overrides
        ``store`` / ``max_cache_entries``.
    max_batch:
        Largest number of requests one micro-batch may carry.
    max_wait_ms:
        How long the dispatcher waits to fill a batch once it holds at
        least one request.  Low values favour latency, high values favour
        coalescing.
    max_queue:
        Bound of the request queue; ``0`` means unbounded.  A full queue
        rejects submissions with
        :class:`~repro.exceptions.ServiceOverloadedError`.
    max_workers:
        Forwarded to :func:`repro.api.solve_many` for each batch (``0`` =
        solve in-process; ``None`` = process-pool fan-out).
    solver:
        Injection point for tests and instrumentation; any callable with
        :func:`repro.api.solve_many`'s signature.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` drawn before every
        solver batch (``solver_delay`` / ``solver_crash``).  ``None`` (the
        default) costs one attribute check per batch.
    obs:
        Optional :class:`repro.obs.Observability` handle.  When set, each
        executed batch records ``service.batch`` spans (one per traced
        request, carrying the trace id the cluster worker extracted from
        the wire) plus ``kernel.*`` spans from the solver's profiling
        phases, and a ``repro_service_batch_seconds`` latency histogram.
        ``None`` (the default) follows the same zero-cost contract as
        ``fault_injector``: one ``is None`` check per batch, nothing on
        the submit path.
    """

    def __init__(self, *, store: Optional[ArtifactStore] = None,
                 cache: Optional[TieredCache] = None,
                 max_batch: int = 64, max_wait_ms: float = 2.0,
                 max_queue: int = 10_000,
                 max_workers: Optional[int] = 0,
                 solver=None,
                 fault_injector: "Optional[FaultInjector]" = None,
                 obs: "Optional[Observability]" = None) -> None:
        if int(max_batch) < 1:
            raise ModelError(f"max_batch must be >= 1, got {max_batch!r}")
        if float(max_wait_ms) < 0.0:
            raise ModelError(
                f"max_wait_ms must be >= 0, got {max_wait_ms!r}")
        if int(max_queue) < 0:
            raise ModelError(f"max_queue must be >= 0, got {max_queue!r}")
        self.cache = TieredCache(store=store) if cache is None else cache
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.max_workers = max_workers
        if solver is None:
            # Give the default solver a private session-layer cache so the
            # service's batches neither duplicate hot reports into the
            # process-global result cache nor pollute repro.api.cache_stats()
            # for unrelated callers in the same process.  Injected solvers
            # receive the plain (instances, strategy, config, max_workers)
            # signature and manage caching themselves.
            session_cache = LRUCache(max_entries=max(64, 4 * self.max_batch))

            def _default_solver(instances, strategy=None, *, config=None,
                                max_workers=None):
                return solve_many(instances, strategy, config=config,
                                  max_workers=max_workers,
                                  cache=session_cache)

            self._solver = _default_solver
        else:
            self._solver = solver
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=max_queue)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: Dict[Tuple[str, str, str], List[Future]] = {}
        self._counters: Dict[str, int] = {
            "requests": 0, "tier1_hits": 0, "tier2_hits": 0, "coalesced": 0,
            "enqueued": 0, "rejected": 0, "probing": 0, "batches": 0,
            "batched_requests": 0, "batch_failures": 0,
            "cache_put_failures": 0, "pool_restarts": 0,
            "worker_restarts": 0, "timeouts": 0, "shutdown_timeouts": 0,
            "queue_peak": 0, "pending": 0}
        self._faults = fault_injector
        self._obs = obs
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SolveService":
        """Start the dispatcher thread (idempotent); returns ``self``."""
        with self._lock:
            if self._stop.is_set():
                raise ServiceClosedError("service has been shut down")
            self._spawn_dispatcher_locked(restart=False)
        return self

    def _spawn_dispatcher_locked(self, *, restart: bool) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        if restart and self._started:
            self._counters["worker_restarts"] += 1
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher",
            daemon=True)
        self._thread.start()
        self._started = True

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive() \
            and not self._stop.is_set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request has resolved.

        Returns ``False`` when ``timeout`` (seconds) elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._counters["pending"] > 0:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
        return True

    def shutdown(self, *, wait: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service.

        With ``wait=True`` (the default) the queue is drained first; with
        ``wait=False`` still-pending requests fail with
        :class:`~repro.exceptions.ServiceClosedError`.
        """
        if wait:
            self.drain(timeout=timeout)
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
            if thread.is_alive():
                # A hung solver batch is holding the dispatcher hostage.
                # The thread is a daemon, so the process can still exit —
                # but the condition must be visible, not silent.
                with self._lock:
                    self._counters["shutdown_timeouts"] += 1
                logger.warning(
                    "dispatcher thread still alive after shutdown join "
                    "timeout (5.0s); a solver batch is likely hung")
        # Fail whatever is still queued or in flight (no-op after a drain).
        # Keyed queued requests also appear in _inflight; dedup by identity.
        abandoned: Dict[int, Future] = {}
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            abandoned[id(request.future)] = request.future
        with self._lock:
            for waiters in self._inflight.values():
                for future in waiters:
                    abandoned[id(future)] = future
            self._inflight.clear()
        closed = ServiceClosedError(
            "service shut down before the request was solved")
        for future in abandoned.values():
            _settle(future, exception=closed)
        self._release_pending(len(abandoned))

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, instance, strategy: Optional[str] = None, *,
               config: Optional[SolveConfig] = None,
               digest: Optional[str] = None,
               deadline: Optional[float] = None,
               trace_id: Optional[str] = None) -> "Future[SolveReport]":
        """Request one solve; returns a future for its
        :class:`~repro.api.report.SolveReport`.

        Cache hits resolve before this method returns.  Misses are queued
        (or coalesced onto an identical in-flight request); a full queue
        raises :class:`~repro.exceptions.ServiceOverloadedError`.

        ``digest`` lets a trusted caller pass the instance digest it has
        already computed (the cluster worker reuses the one the gateway
        shipped for routing) and skip the canonical-serialization hash
        here; it must equal ``instance_digest(instance)`` or cache entries
        will land under the wrong key.

        ``deadline`` is an **absolute** :func:`time.monotonic` instant: a
        submission arriving past it raises
        :class:`~repro.exceptions.ServiceTimeoutError` immediately, and a
        queued request whose deadline expires before the dispatcher
        reaches it is failed fast with the same error instead of occupying
        a solver batch.  Cache hits ignore the deadline (the answer is
        already in hand).  A request that coalesces onto an in-flight key
        shares the *claiming* request's fate — its own deadline is not
        re-checked once attached.

        ``trace_id`` (optional) tags the request for distributed tracing:
        when the service carries an :class:`~repro.obs.Observability`
        handle, the executing batch records a ``service.batch`` span
        under this id.  Ignored (at zero cost) otherwise.
        """
        config = SolveConfig() if config is None else config
        name = resolve_strategy_name(strategy)
        get_strategy(name)  # fail fast on unknown strategies
        if deadline is not None and time.monotonic() > deadline:
            with self._lock:
                if self._stop.is_set():
                    raise ServiceClosedError("service has been shut down")
                self._counters["requests"] += 1
                self._counters["rejected"] += 1
                self._counters["timeouts"] += 1
            raise ServiceTimeoutError(
                "deadline expired before the request was accepted",
                elapsed=time.monotonic() - deadline)
        if not config.cache:
            digest = None
        elif digest is None:
            try:
                digest = instance_digest(instance)
            except ModelError:
                digest = None
        key = None if digest is None \
            else self.cache.memory_key(digest, name, config)
        future: "Future[SolveReport]" = Future()

        # Phase 1, under the lock: pure in-memory work only — tier-1 probe,
        # coalescing onto an in-flight key, or claiming the key.  Disk I/O
        # (the tier-2 probe) must not serialize every submitter.
        hit_report: Optional[SolveReport] = None
        with self._lock:
            if self._stop.is_set():
                raise ServiceClosedError("service has been shut down")
            self._spawn_dispatcher_locked(restart=True)
            self._counters["requests"] += 1
            if key is not None:
                hit_report = self.cache.get_memory(digest, name, config)
                if hit_report is not None:
                    self._counters["tier1_hits"] += 1
                elif key in self._inflight:
                    self._inflight[key].append(future)
                    self._counters["coalesced"] += 1
                    self._counters["pending"] += 1
                    return future
                else:
                    # Claim the key before releasing the lock: concurrent
                    # identical submits coalesce onto this future, so no
                    # key is ever solved twice.  The request sits in the
                    # "probing" bucket until the tier-2 probe decides its
                    # fate (tier-2 hit, enqueued, or rejected).
                    self._inflight[key] = [future]
                    self._counters["probing"] += 1
                    self._counters["pending"] += 1
            else:
                try:
                    self._enqueue_locked(
                        _Request(None, None, instance, name, config, future,
                                 deadline, trace_id))
                except ServiceOverloadedError:
                    self._counters["rejected"] += 1
                    raise
                self._counters["pending"] += 1
                return future
        if hit_report is not None:
            _settle(future, result=hit_report)
            return future

        # Phase 2, outside the lock: tier-2 probe, then enqueue on a miss.
        try:
            stored = self.cache.get_store(digest, name, config)
        except BaseException as exc:
            self._abandon_claim(key, future, exc)
            raise
        if stored is not None:
            with self._lock:
                self._counters["probing"] -= 1
                self._counters["tier2_hits"] += 1
                waiters = self._inflight.pop(key, [])
            for waiter in waiters:
                _settle(waiter, result=stored)
            self._release_pending(len(waiters))
            return future
        request = _Request(key, digest, instance, name, config, future,
                           deadline, trace_id)
        overload: Optional[ServiceOverloadedError] = None
        with self._lock:
            self._counters["probing"] -= 1
            try:
                self._enqueue_locked(request)
            except ServiceOverloadedError as exc:
                overload = exc
                self._counters["rejected"] += 1
                rejected_waiters = self._inflight.pop(key, [])
        if overload is not None:
            for waiter in rejected_waiters:
                if waiter is not future:
                    _settle(waiter, exception=overload)
            self._release_pending(len(rejected_waiters))
            raise overload
        return future

    def _enqueue_locked(self, request: _Request) -> None:
        """Queue one request (lock held); raises on a full queue.

        Success counts the ``enqueued`` bucket; the caller owns the failure
        bucket (``rejected``) and the ``pending`` accounting.
        """
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            depth = self._queue.qsize()
            raise ServiceOverloadedError(
                f"request queue full ({depth} pending, bound "
                f"{self.max_queue}); retry later or raise max_queue",
                queue_depth=depth) from None
        self._counters["enqueued"] += 1
        self._counters["queue_peak"] = max(
            self._counters["queue_peak"], self._queue.qsize())

    def _release_pending(self, count: int) -> None:
        """Drop ``count`` settled requests from ``pending`` and wake drain.

        Always called *after* the corresponding futures were settled, so
        when :meth:`drain` observes ``pending == 0`` every accepted future
        is already resolved.
        """
        if count <= 0:
            return
        with self._lock:
            self._counters["pending"] = max(
                0, self._counters["pending"] - count)
            self._idle.notify_all()

    def _abandon_claim(self, key, future: Future,
                       exc: BaseException) -> None:
        """Fail a claimed key's waiters after an unexpected probe error.

        The claiming request moves to the ``rejected`` bucket (it never
        reached the queue); coalesced waiters were already counted and are
        failed with the same exception.
        """
        with self._lock:
            self._counters["probing"] -= 1
            self._counters["rejected"] += 1
            waiters = self._inflight.pop(key, [])
        for waiter in waiters:
            if waiter is not future:
                _settle(waiter, exception=exc)
        self._release_pending(len(waiters))

    def solve(self, instance, strategy: Optional[str] = None, *,
              config: Optional[SolveConfig] = None,
              timeout: Optional[float] = None,
              deadline: Optional[float] = None) -> SolveReport:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(instance, strategy, config=config,
                           deadline=deadline).result(timeout=timeout)

    def submit_many(self, instances: Sequence[object],
                    strategy: Optional[str] = None, *,
                    config: Optional[SolveConfig] = None,
                    ) -> List["Future[SolveReport]"]:
        """Submit a burst of requests; returns their futures in order."""
        return [self.submit(instance, strategy, config=config)
                for instance in instances]

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                try:
                    first = self._queue.get(timeout=0.05)
                except queue.Empty:
                    continue
                batch = [first]
                deadline = time.monotonic() + self.max_wait_ms / 1000.0
                while len(batch) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(self._queue.get(timeout=remaining))
                    except queue.Empty:
                        break
                self._execute_batch(batch)
            except Exception:
                # A dispatcher-level crash must not kill the service; the
                # next submit (or loop iteration) keeps serving.  Batch
                # execution failures are handled per group below — this is
                # strictly a belt for unexpected internal errors.
                with self._lock:
                    self._counters["worker_restarts"] += 1

    def _execute_batch(self, batch: List[_Request]) -> None:
        """Group a micro-batch by ``(strategy, config)`` and execute it.

        No exception may drop a request on the floor: whatever fails —
        grouping, a solver group, internal bookkeeping — the affected
        futures are failed and their ``pending`` counts released, so
        :meth:`drain` and :meth:`shutdown` never hang on a lost request.

        Requests whose end-to-end deadline has already expired are failed
        fast with :class:`~repro.exceptions.ServiceTimeoutError` before
        any solver work — an expired caller gains nothing from the result,
        and dropping the request frees the batch slot for live ones.
        """
        try:
            now = time.monotonic()
            expired = [request for request in batch
                       if request.deadline is not None
                       and now > request.deadline]
            if expired:
                self._fail_expired(expired, now)
                batch = [request for request in batch
                         if request not in expired]
                if not batch:
                    return
            groups: "Dict[Tuple[str, str], List[_Request]]" = {}
            for request in batch:
                groups.setdefault(
                    (request.strategy, request.config.to_json()), []
                ).append(request)
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            self._fail_requests(batch, exc)
            return
        for requests in groups.values():
            try:
                self._execute_group(requests)
            except BaseException as exc:  # noqa: BLE001 - same containment
                self._fail_requests(requests, exc)

    def _fail_expired(self, requests: List[_Request], now: float) -> None:
        """Fail queued requests whose deadline passed (plus their waiters).

        Counted in ``timeouts`` — not ``batch_failures``, since no solver
        work was attempted or lost.  Coalesced waiters share the claiming
        request's deadline fate (documented in :meth:`submit`).
        """
        with self._lock:
            self._counters["timeouts"] += len(requests)
            settled: List[Tuple[Future, BaseException]] = []
            for request in requests:
                waiters = [request.future] if request.key is None else \
                    self._inflight.pop(request.key, [request.future])
                exc = ServiceTimeoutError(
                    "deadline expired while the request was queued",
                    elapsed=now - request.deadline)
                settled.extend((future, exc) for future in waiters)
        for future, exc in settled:
            _settle(future, exception=exc)
        self._release_pending(len(settled))

    def _fail_requests(self, requests: List[_Request],
                       exc: BaseException) -> None:
        """Fail a set of requests (and their coalesced waiters)."""
        with self._lock:
            self._counters["batch_failures"] += 1
            settled: List[Future] = []
            for request in requests:
                waiters = [request.future] if request.key is None else \
                    self._inflight.pop(request.key, [request.future])
                settled.extend(waiters)
        for future in settled:
            _settle(future, exception=exc)
        self._release_pending(len(settled))

    def _execute_group(self, requests: List[_Request]) -> None:
        strategy = requests[0].strategy
        config = requests[0].config
        instances = [request.instance for request in requests]
        obs = self._obs
        batch_start = obs.tracer.clock() if obs is not None else 0.0
        recorder: Optional[Any] = None

        def _invoke_solver():
            try:
                return self._solver(instances, strategy, config=config,
                                    max_workers=self.max_workers)
            except BrokenProcessPool:
                # The pool died mid-batch (OOM-killed worker, hard crash).
                # solve_many builds a fresh pool per call, so the *next*
                # batch is unaffected; this one is retried in-process.
                with self._lock:
                    self._counters["pool_restarts"] += 1
                return self._solver(instances, strategy, config=config,
                                    max_workers=0)

        try:
            if self._faults is not None:
                # Chaos hook: may sleep (solver_delay) or raise
                # FaultInjectedError (solver_crash) — the containment
                # below turns either into per-request failed futures.
                self._faults.raise_solver_faults()
            if obs is None:
                reports = _invoke_solver()
            else:
                # Run the batch under a profiling recorder so in-process
                # kernels (water_fill, Frank-Wolfe) report phases that
                # become kernel.* spans below.  Process-pool batches
                # execute kernels elsewhere; their phases simply stay
                # empty here.
                from repro.obs.profiling import profiled
                with profiled() as recorder:
                    reports = _invoke_solver()
            if len(reports) != len(requests):
                # A misbehaving injected solver must become a visible batch
                # failure, not a silent hang of the unzipped tail.
                raise RuntimeError(
                    f"solver returned {len(reports)} reports for "
                    f"{len(requests)} instances")
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            if obs is not None:
                self._record_batch_spans(requests, recorder, batch_start,
                                         error=type(exc).__name__)
            self._fail_requests(requests, exc)
            return
        if obs is not None:
            self._record_batch_spans(requests, recorder, batch_start)
        # Write-through BEFORE popping _inflight: the puts are disk I/O
        # (the tiers are internally thread-safe), and the put-then-pop
        # order guarantees a submitter always either sees the cached report
        # or coalesces onto the still-registered key.  A failed put (disk
        # full, permissions) must not hang the batch's futures — the solve
        # succeeded; only persistence is degraded.
        put_failures = 0
        for request, report in zip(requests, reports):
            if request.key is not None:
                try:
                    self.cache.put(request.digest, strategy, config, report)
                except Exception:  # noqa: BLE001 - degrade, keep serving
                    put_failures += 1
        with self._lock:
            self._counters["batches"] += 1
            self._counters["batched_requests"] += len(requests)
            self._counters["cache_put_failures"] += put_failures
            resolved: List[Tuple[Future, SolveReport]] = []
            for request, report in zip(requests, reports):
                waiters = [request.future] if request.key is None else \
                    self._inflight.pop(request.key, [request.future])
                resolved.extend((future, report) for future in waiters)
        for future, report in resolved:
            _settle(future, result=report)
        self._release_pending(len(resolved))

    def _record_batch_spans(self, requests: List[_Request], recorder,
                            start: float,
                            error: Optional[str] = None) -> None:
        """Emit the batch's spans and latency sample (obs enabled only).

        One ``service.batch`` span per *traced* request (so every trace
        that flowed through the wire sees where its batch ran), plus one
        ``kernel.<phase>`` span per profiled kernel phase, anchored to
        the first traced request's id.
        """
        tracer = self._obs.tracer
        duration = tracer.clock() - start
        self._obs.latency_histogram(
            "repro_service_batch_seconds",
            "Wall time of executed solver batches").observe(duration)
        traced = [request for request in requests
                  if request.trace_id is not None]
        for request in traced:
            annotations: Dict[str, Any] = {
                "strategy": request.strategy, "batch_size": len(requests)}
            if error is not None:
                annotations["error"] = error
            tracer.record_complete("service.batch",
                                   trace_id=request.trace_id, start=start,
                                   duration=duration, **annotations)
        if traced and recorder is not None:
            anchor = traced[0].trace_id
            for name, entry in recorder.phases.items():
                tracer.record_complete(
                    f"kernel.{name}", trace_id=anchor, start=start,
                    duration=entry["seconds"], calls=entry["calls"])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """An atomic :class:`ServiceStats` snapshot."""
        with self._lock:
            counters = dict(self._counters)
        return ServiceStats(cache=self.cache.stats(), **counters)
