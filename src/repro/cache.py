"""Thread-safe LRU cache with exact hit/miss/eviction accounting.

:class:`LRUCache` is the one in-memory cache implementation of the package.
The process-global result cache in :mod:`repro.api.session` and the tier-1
layer of the serving stack (:class:`repro.serve.TieredCache`) are both
instances of it, so every consumer inherits the same guarantees:

* **Thread safety** — every operation (including the counter updates it
  implies) runs under one internal lock, so concurrent callers can never
  observe torn statistics: after any interleaving of ``get``/``put``/
  ``note``, ``hits + misses`` equals exactly the number of recorded lookups.
* **Bounded memory** — at most ``max_entries`` values are retained; the
  least recently used entry is evicted first and counted.
* **Honest counters** — a *hit* is a ``get`` that returned a value (or an
  externally coalesced serve folded in via :meth:`note`); a *miss* is a
  ``get`` that found nothing.  ``put`` never counts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """A lock-guarded, bounded, least-recently-used mapping.

    Parameters
    ----------
    max_entries:
        Upper bound on retained entries (must be >= 1).  Inserting beyond it
        evicts the least recently used entry and increments the ``evictions``
        counter.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if int(max_entries) < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (a *hit*) or ``default`` (a *miss*).

        A hit refreshes the entry's recency.  The lookup and its counter
        update are atomic.
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching recency or the counters."""
        with self._lock:
            return self._data.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self._evictions += 1

    def note(self, *, hits: int = 0, misses: int = 0) -> None:
        """Fold externally served lookups into the counters.

        Used by callers that satisfy a request *about* this cache without a
        ``get`` — e.g. :func:`repro.api.solve_many` serving an in-batch
        duplicate from the first occurrence's fresh report.  Counting it here
        keeps ``hits + misses == lookups`` exact under concurrency.
        """
        with self._lock:
            self._hits += int(hits)
            self._misses += int(misses)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[Hashable]:
        """A snapshot of the cached keys, LRU first."""
        with self._lock:
            return iter(list(self._data.keys()))

    # ------------------------------------------------------------------ #
    # Maintenance and counters
    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Drop every entry and zero the counters; returns entries dropped."""
        with self._lock:
            evicted = len(self._data)
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            return evicted

    def reset_stats(self) -> None:
        """Zero the counters while keeping every entry (benchmark use:
        measure a fresh pass over a warm cache without rebuilding it)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> Dict[str, int]:
        """Atomic snapshot: ``hits``, ``misses``, ``evictions``, ``size``."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "evictions": self._evictions, "size": len(self._data),
                    "max_entries": self.max_entries}

    def __repr__(self) -> str:  # pragma: no cover - debugging cosmetics
        s = self.stats()
        return (f"LRUCache(size={s['size']}/{s['max_entries']}, "
                f"hits={s['hits']}, misses={s['misses']}, "
                f"evictions={s['evictions']})")
