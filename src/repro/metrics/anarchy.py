"""Price of anarchy / coordination ratio.

The coordination ratio (Koutsoupias & Papadimitriou) of an instance is
``C(N) / C(O)``, the factor by which selfish routing degrades the system cost
(Expression (1) of the paper).  It equals 4/3 at worst for linear latencies
(Roughgarden & Tardos) and is unbounded for general latencies — the very
motivation for Stackelberg control.
"""

from __future__ import annotations

from typing import Union

from repro.exceptions import ModelError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.network import network_nash, network_optimum
from repro.equilibrium.parallel import parallel_nash, parallel_optimum

__all__ = ["price_of_anarchy", "coordination_ratio"]


def price_of_anarchy(instance: Union[ParallelLinkInstance, NetworkInstance],
                     *, solver: str = "auto") -> float:
    """The ratio ``C(N) / C(O)`` of the instance.

    Returns 1.0 when the optimum cost is zero (which only happens for zero
    demand).
    """
    if isinstance(instance, ParallelLinkInstance):
        nash_cost = parallel_nash(instance).cost
        optimum_cost = parallel_optimum(instance).cost
    elif isinstance(instance, NetworkInstance):
        nash_cost = network_nash(instance, solver=solver).cost
        optimum_cost = network_optimum(instance, solver=solver).cost
    else:
        raise ModelError(
            f"price_of_anarchy expects a ParallelLinkInstance or NetworkInstance, "
            f"got {type(instance).__name__}")
    if optimum_cost <= 0.0:
        return 1.0
    return nash_cost / optimum_cost


def coordination_ratio(instance: Union[ParallelLinkInstance, NetworkInstance],
                       *, solver: str = "auto") -> float:
    """Alias of :func:`price_of_anarchy` (the paper uses both terms)."""
    return price_of_anarchy(instance, solver=solver)
