"""Performance metrics: price of anarchy, a-posteriori anarchy cost, bounds."""

from repro.metrics.anarchy import price_of_anarchy, coordination_ratio
from repro.metrics.stackelberg import (
    a_posteriori_ratio,
    general_latency_bound,
    linear_latency_bound,
    linear_price_of_anarchy_bound,
)
from repro.metrics.bounds import polynomial_price_of_anarchy_bound

__all__ = [
    "price_of_anarchy",
    "coordination_ratio",
    "a_posteriori_ratio",
    "general_latency_bound",
    "linear_latency_bound",
    "linear_price_of_anarchy_bound",
    "polynomial_price_of_anarchy_bound",
]
