"""Worst-case price-of-anarchy bounds per latency class (Pigou bounds).

Roughgarden's "the price of anarchy is independent of the network topology"
shows that the worst-case coordination ratio of a latency class is attained on
Pigou-style two-link instances.  For polynomials of degree at most ``d`` with
non-negative coefficients the tight bound is

    rho(d) = (1 - d * (d+1)^(-(d+1)/d))^(-1),

which evaluates to 4/3 for ``d = 1`` and grows like ``d / ln d``.  The
bound-verification benchmarks use this to sanity check the Nash/optimum
solvers on polynomial instances, and :func:`repro.instances.pigou_nonlinear`
attains it exactly.
"""

from __future__ import annotations

from repro.exceptions import ModelError

__all__ = ["polynomial_price_of_anarchy_bound"]


def polynomial_price_of_anarchy_bound(degree: float) -> float:
    """The tight price-of-anarchy bound for polynomial latencies of degree ``d``.

    ``degree`` must be at least 1; ``degree == 1`` returns 4/3.
    """
    if degree < 1.0:
        raise ModelError(f"the degree must be >= 1, got {degree!r}")
    d = float(degree)
    return 1.0 / (1.0 - d * (d + 1.0) ** (-(d + 1.0) / d))
