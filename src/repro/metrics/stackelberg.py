"""A-posteriori anarchy cost and the theoretical Stackelberg bounds.

Expression (2) of the paper defines the *a-posteriori anarchy cost*
``eps(M, r, alpha)``: the factor ``C(S+T) / C(O)`` achieved by a Leader
strategy controlling an ``alpha`` portion.  Roughgarden's bounds
([41, Thm 6.4.4/6.4.5]) state that a suitable strategy (LLF) guarantees

* ``C(S+T) <= (1/alpha) C(O)`` for arbitrary latencies, and
* ``C(S+T) <= (4 / (3 + alpha)) C(O)`` for linear latencies,

while Corollary 2.2 of the paper shows the ratio is exactly 1 whenever
``alpha >= beta_M``.
"""

from __future__ import annotations

from typing import Union

from repro.exceptions import ModelError, StrategyError
from repro.network.instance import NetworkInstance
from repro.network.parallel import ParallelLinkInstance
from repro.equilibrium.network import network_optimum
from repro.equilibrium.parallel import parallel_optimum
from repro.core.strategy import NetworkStackelbergStrategy, ParallelStackelbergStrategy

__all__ = [
    "a_posteriori_ratio",
    "general_latency_bound",
    "linear_latency_bound",
    "linear_price_of_anarchy_bound",
]


def a_posteriori_ratio(instance: Union[ParallelLinkInstance, NetworkInstance],
                       strategy: Union[ParallelStackelbergStrategy,
                                       NetworkStackelbergStrategy],
                       *, solver: str = "auto") -> float:
    """The factor ``C(S+T) / C(O)`` induced by ``strategy`` on ``instance``."""
    if isinstance(instance, ParallelLinkInstance):
        if not isinstance(strategy, ParallelStackelbergStrategy):
            raise StrategyError("parallel-link instances need a parallel strategy")
        outcome = strategy.induce(instance)
        optimum_cost = parallel_optimum(instance).cost
    elif isinstance(instance, NetworkInstance):
        if not isinstance(strategy, NetworkStackelbergStrategy):
            raise StrategyError("network instances need a network strategy")
        outcome = strategy.induce(instance, solver=solver)
        optimum_cost = network_optimum(instance, solver=solver).cost
    else:
        raise ModelError(
            f"a_posteriori_ratio expects a ParallelLinkInstance or NetworkInstance, "
            f"got {type(instance).__name__}")
    if optimum_cost <= 0.0:
        return 1.0
    return outcome.cost / optimum_cost


def general_latency_bound(alpha: float) -> float:
    """Roughgarden's ``1/alpha`` guarantee for arbitrary latencies.

    Returns ``inf`` for ``alpha == 0`` (no control, no guarantee).
    """
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    if alpha == 0.0:
        return float("inf")
    return 1.0 / alpha


def linear_latency_bound(alpha: float) -> float:
    """Roughgarden's ``4 / (3 + alpha)`` guarantee for linear latencies."""
    if not 0.0 <= alpha <= 1.0:
        raise StrategyError(f"alpha must lie in [0, 1], got {alpha!r}")
    return 4.0 / (3.0 + alpha)


def linear_price_of_anarchy_bound() -> float:
    """The Roughgarden–Tardos 4/3 price-of-anarchy bound for linear latencies."""
    return 4.0 / 3.0
