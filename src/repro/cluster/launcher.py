"""Cluster lifecycle: spawn workers, wire the gateway, drain, shut down.

:func:`start_cluster` is the one-call entry point::

    from repro.cluster import start_cluster

    with start_cluster(n_workers=2, store_dir="cluster-store") as cluster:
        report = cluster.solve(instance, "optop")
        stats = cluster.stats()          # aggregated, exact partition

It spawns ``n_workers`` worker *processes* (``python -m
repro.cluster.worker``) on ephemeral localhost ports — each announces
``REPRO_WORKER_READY port=...`` on stdout, which the launcher parses, so
there is no port-race window — all sharing one artifact-store directory,
then builds a :class:`~repro.cluster.gateway.ClusterGateway` over them
inside a dedicated event-loop thread.  The returned
:class:`ClusterHandle` is the synchronous facade: ``submit`` /``solve``/
``solve_many``/``stats``/``drain``/``shutdown`` all bridge into the
gateway loop via ``run_coroutine_threadsafe``.

Fault injection for tests rides along: :meth:`ClusterHandle.kill_worker`
SIGKILLs one shard mid-stream; the gateway re-routes its keys to the
survivors on the next connection failure.
"""

from __future__ import annotations

import asyncio
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import SolveConfig
from repro.api.report import SolveReport
from repro.cluster.gateway import ClusterGateway
from repro.exceptions import ClusterError
from repro.serve.service import ServiceStats

__all__ = ["ClusterHandle", "EventLoopThread", "WorkerProcess",
           "start_cluster"]

_READY_LINE = re.compile(r"REPRO_WORKER_READY port=(\d+) pid=(\d+)")


class EventLoopThread:
    """An asyncio loop running in a daemon thread, driven synchronously."""

    def __init__(self, name: str = "repro-cluster-loop") -> None:
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name,
                                        daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._ready.set)
        self.loop.run_forever()

    def start(self) -> "EventLoopThread":
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ClusterError("gateway event loop failed to start")
        return self

    def submit(self, coro) -> Future:
        """Schedule a coroutine; returns its ``concurrent.futures.Future``."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro, timeout: Optional[float] = None):
        """Run a coroutine to completion and return its result."""
        return self.submit(coro).result(timeout=timeout)

    def stop(self) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10.0)
        if not self.loop.is_closed():
            self.loop.close()


class WorkerProcess:
    """One spawned shard: the subprocess and its announced endpoint."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 store_dir: Optional[str] = None, max_batch: int = 64,
                 max_wait_ms: float = 2.0, max_queue: int = 10_000,
                 pool_workers: int = 0,
                 startup_timeout: float = 120.0) -> None:
        command = [sys.executable, "-m", "repro.cluster.worker_main",
                   "--host", host, "--port", str(port),
                   "--max-batch", str(max_batch),
                   "--max-wait-ms", str(max_wait_ms),
                   "--max-queue", str(max_queue),
                   "--workers", str(pool_workers)]
        if store_dir is not None:
            command += ["--store", str(store_dir)]
        env = dict(os.environ)
        # The worker must import repro regardless of how the parent found
        # it (installed, or straight off src/ via PYTHONPATH).
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.host = host
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, text=True, env=env)
        self.port = self._await_ready(startup_timeout)

    def _await_ready(self, timeout: float) -> int:
        """Parse the READY line off stdout (in a thread, with a deadline)."""
        result: Dict[str, int] = {}
        ready = threading.Event()

        def pump() -> None:
            stream = self.process.stdout
            for line in iter(stream.readline, ""):
                match = _READY_LINE.search(line)
                if match and not ready.is_set():
                    result["port"] = int(match.group(1))
                    ready.set()
                # keep draining so the worker never blocks on a full pipe
            ready.set()

        threading.Thread(target=pump, daemon=True,
                         name="repro-worker-stdout").start()
        if not ready.wait(timeout=timeout) or "port" not in result:
            self.process.kill()
            raise ClusterError(
                f"worker failed to announce readiness within {timeout}s "
                f"(exit code {self.process.poll()})")
        return result["port"]

    @property
    def endpoint(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the shard (fault injection; no drain, no goodbye)."""
        self.process.kill()
        self.process.wait(timeout=10.0)

    def terminate(self, timeout: float = 10.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)


class ClusterHandle:
    """Synchronous facade over a running cluster (gateway + workers)."""

    def __init__(self, *, workers: List[WorkerProcess],
                 gateway: ClusterGateway, loop: EventLoopThread,
                 store_dir: str,
                 owned_tmp: Optional[tempfile.TemporaryDirectory] = None,
                 http_port: Optional[int] = None) -> None:
        self.workers = workers
        self.gateway = gateway
        self.loop = loop
        self.store_dir = store_dir
        self.http_port = http_port
        self._owned_tmp = owned_tmp
        self._closed = False

    # ------------------------------------------------------------------ #
    # Solve path
    # ------------------------------------------------------------------ #
    def submit(self, instance, strategy: Optional[str] = None, *,
               config: Optional[SolveConfig] = None,
               ) -> "Future[SolveReport]":
        """Submit one solve; returns a ``concurrent.futures.Future``."""
        return self.loop.submit(
            self.gateway.submit(instance, strategy, config=config))

    def solve(self, instance, strategy: Optional[str] = None, *,
              config: Optional[SolveConfig] = None,
              timeout: Optional[float] = 300.0) -> SolveReport:
        """Blocking one-shot solve through the cluster."""
        return self.submit(instance, strategy, config=config).result(
            timeout=timeout)

    def solve_many(self, instances: Sequence[object],
                   strategy: Optional[str] = None, *,
                   config: Optional[SolveConfig] = None,
                   timeout: Optional[float] = 300.0) -> List[SolveReport]:
        """Submit a burst and gather the reports in submission order."""
        futures = [self.submit(instance, strategy, config=config)
                   for instance in instances]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # Observability & lifecycle
    # ------------------------------------------------------------------ #
    def stats(self, *, refresh: bool = True) -> Dict[str, object]:
        """Aggregated cluster stats (see :meth:`ClusterGateway.stats`)."""
        return self.loop.run(self.gateway.stats(refresh=refresh),
                             timeout=60.0)

    def merged_stats(self, *, refresh: bool = True) -> ServiceStats:
        """The cross-shard :class:`~repro.serve.ServiceStats` aggregate."""
        return ServiceStats.from_dict(
            dict(self.stats(refresh=refresh)["merged"]))

    def health(self) -> Dict[str, object]:
        return self.loop.run(self.gateway.health(), timeout=60.0)

    def drain(self, *, timeout: float = 60.0) -> bool:
        """Block until every shard has resolved its accepted requests."""
        return self.loop.run(self.gateway.drain(timeout=timeout),
                             timeout=timeout + 30.0)

    def kill_worker(self, index: int) -> str:
        """SIGKILL shard ``index``; returns its node id (fault injection)."""
        worker = self.workers[index]
        node_id = f"{worker.host}:{worker.port}"
        worker.kill()
        return node_id

    def shutdown(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Drain (optionally), stop every worker, stop the gateway loop."""
        if self._closed:
            return
        self._closed = True
        try:
            if drain and any(worker.alive for worker in self.workers):
                try:
                    self.loop.run(self.gateway.drain(timeout=timeout),
                                  timeout=timeout + 30.0)
                except Exception:  # noqa: BLE001 - shutdown must proceed
                    pass
            try:
                self.loop.run(self.gateway.shutdown_workers(), timeout=30.0)
            except Exception:  # noqa: BLE001 - fall back to SIGTERM below
                pass
            try:
                self.loop.run(self.gateway.stop_http(), timeout=10.0)
            except Exception:  # noqa: BLE001
                pass
            self.gateway.close()
        finally:
            for worker in self.workers:
                worker.terminate()
            self.loop.stop()
            if self._owned_tmp is not None:
                self._owned_tmp.cleanup()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)


def start_cluster(n_workers: int = 2, *, store_dir: Optional[str] = None,
                  host: str = "127.0.0.1", max_inflight: int = 8,
                  max_retries: int = 6, max_batch: int = 64,
                  max_wait_ms: float = 2.0, max_queue: int = 10_000,
                  pool_workers: int = 0, http: bool = False,
                  http_port: int = 0,
                  startup_timeout: float = 120.0) -> ClusterHandle:
    """Spawn ``n_workers`` shard processes and a gateway over them.

    All shards share one artifact-store directory (a private temporary one
    when ``store_dir`` is omitted, cleaned up on shutdown), so any key the
    cluster has ever solved is served from disk by whichever shard owns it
    now.  With ``http=True`` the gateway additionally listens on
    ``http_port`` (0 = ephemeral; see ``handle.http_port``).
    """
    if int(n_workers) < 1:
        raise ClusterError(f"n_workers must be >= 1, got {n_workers!r}")
    owned_tmp = None
    if store_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        store_dir = owned_tmp.name
    workers: List[WorkerProcess] = []
    loop: Optional[EventLoopThread] = None
    try:
        for _ in range(int(n_workers)):
            workers.append(WorkerProcess(
                host=host, store_dir=store_dir, max_batch=max_batch,
                max_wait_ms=max_wait_ms, max_queue=max_queue,
                pool_workers=pool_workers,
                startup_timeout=startup_timeout))
        loop = EventLoopThread().start()
        gateway = ClusterGateway(
            [worker.endpoint for worker in workers],
            max_inflight=max_inflight, max_retries=max_retries)
        deadline = time.monotonic() + startup_timeout
        while True:
            health = loop.run(gateway.health(), timeout=30.0)
            if health["status"] == "ok" and all(
                    entry["health"] is not None
                    for entry in health["workers"].values()):
                break
            if time.monotonic() > deadline:
                raise ClusterError("cluster failed its startup health check")
            time.sleep(0.05)
        bound_port = None
        if http:
            bound_port = loop.run(
                gateway.start_http(host=host, port=http_port), timeout=30.0)
        return ClusterHandle(workers=workers, gateway=gateway, loop=loop,
                             store_dir=store_dir, owned_tmp=owned_tmp,
                             http_port=bound_port)
    except BaseException:
        for worker in workers:
            worker.terminate()
        if loop is not None:
            loop.stop()
        if owned_tmp is not None:
            owned_tmp.cleanup()
        raise
